"""Packing byte payloads into page words (for PV packet transfer)."""

from __future__ import annotations

from typing import List

from repro.xen.constants import WORDS_PER_PAGE

#: Maximum payload a single shared page carries.
MAX_PAYLOAD_BYTES = WORDS_PER_PAGE * 8


class CodecError(Exception):
    """Payload too large or malformed."""


def encode_bytes(payload: bytes) -> List[int]:
    """Pack bytes into little-endian 64-bit words (zero padded)."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise CodecError(
            f"payload of {len(payload)} bytes exceeds one page "
            f"({MAX_PAYLOAD_BYTES})"
        )
    words = []
    for offset in range(0, len(payload), 8):
        chunk = payload[offset:offset + 8]
        words.append(int.from_bytes(chunk.ljust(8, b"\x00"), "little"))
    return words


def decode_bytes(words: List[int], length: int) -> bytes:
    """Unpack ``length`` bytes from little-endian words."""
    if length > len(words) * 8:
        raise CodecError(f"length {length} exceeds provided words")
    raw = b"".join(word.to_bytes(8, "little") for word in words)
    return raw[:length]


def encode_text(message: str) -> List[int]:
    """Pack a UTF-8 string into page words."""
    return encode_bytes(message.encode("utf-8"))


def decode_text(words: List[int], length: int) -> str:
    """Unpack ``length`` bytes of UTF-8 text from page words."""
    return decode_bytes(words, length).decode("utf-8", errors="replace")
