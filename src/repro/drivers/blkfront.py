"""The block-device frontend (guest side of the split driver).

Connection handshake (as on real Xen, via XenStore):

1. the frontend allocates the ring page and a data page, grants both
   to the backend domain, and allocates an unbound event channel;
2. it publishes ``ring-ref``, ``event-channel`` and ``state = 3``
   (Initialised) under ``/local/domain/<id>/device/vbd/0``;
3. the watching backend connects and flips its own state to 4
   (Connected).

IO is synchronous in the simulator: pushing a request and kicking the
event channel runs the backend's handler inline, so the response is
on the ring when the call returns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.drivers.ring import (
    OP_READ,
    OP_WRITE,
    RingRequest,
    SharedRing,
    STATUS_OK,
)
from repro.xen import constants as C
from repro.xen.constants import WORDS_PER_PAGE
from repro.xen.hypercalls import EventChannelOpArgs, GrantTableOpArgs
from repro.xen.xenstore import domain_prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guest.kernel import GuestKernel


class BlkfrontError(Exception):
    """Setup failure or IO error reported by the backend."""


#: Grant references the frontend uses.
RING_GREF = 0
DATA_GREF = 1

#: XenBus states (subset).
STATE_INITIALISED = "3"
STATE_CONNECTED = "4"


class Blkfront:
    """The guest's block device driver."""

    def __init__(self, kernel: "GuestKernel", backend_domid: int = 0):
        self.kernel = kernel
        self.backend_domid = backend_domid
        self.ring: Optional[SharedRing] = None
        self.ring_pfn: Optional[int] = None
        self.data_pfn: Optional[int] = None
        self.event_port: Optional[int] = None
        self._rsp_cons = 0
        self._next_req_id = 1
        self.connected = False

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    @property
    def xenstore_dir(self) -> str:
        return f"{domain_prefix(self.kernel.domain.id)}/device/vbd/0"

    def connect(self) -> None:
        kernel = self.kernel
        xen = kernel.xen

        self.ring_pfn = kernel.alloc_page()
        self.data_pfn = kernel.alloc_page()
        self.ring = SharedRing(xen.machine, kernel.pfn_to_mfn(self.ring_pfn))

        rc = kernel.grant_table_op(
            GrantTableOpArgs(cmd=C.GNTTABOP_SETUP_TABLE, nr_entries=8)
        )
        if rc != 0:
            raise BlkfrontError(f"grant table setup failed: {rc}")
        xen.grants.grant_access(
            kernel.domain, RING_GREF, self.backend_domid,
            pfn=self.ring_pfn, readonly=False,
        )
        xen.grants.grant_access(
            kernel.domain, DATA_GREF, self.backend_domid,
            pfn=self.data_pfn, readonly=False,
        )

        port = kernel.event_channel_op(
            EventChannelOpArgs(
                cmd=C.EVTCHNOP_ALLOC_UNBOUND, remote_domid=self.backend_domid
            )
        )
        if port < 0:
            raise BlkfrontError(f"event channel allocation failed: {port}")
        self.event_port = port

        store = xen.xenstore
        store.write(kernel.domain, f"{self.xenstore_dir}/ring-ref", str(RING_GREF))
        store.write(kernel.domain, f"{self.xenstore_dir}/event-channel", str(port))
        store.write(
            kernel.domain, f"{self.xenstore_dir}/state", STATE_INITIALISED
        )
        self.connected = True

    @property
    def backend_state(self) -> Optional[str]:
        return self.kernel.xen.xenstore.read(
            f"/local/domain/{self.backend_domid}/backend/vbd/"
            f"{self.kernel.domain.id}/0/state"
        )

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------

    def _kick(self) -> None:
        rc = self.kernel.event_channel_op(
            EventChannelOpArgs(cmd=C.EVTCHNOP_SEND, port=self.event_port)
        )
        if rc != 0:
            raise BlkfrontError(f"event kick failed: {rc}")

    def _submit(self, op: int, sector: int) -> int:
        """Push one request and return the backend's status."""
        if not self.connected:
            raise BlkfrontError("frontend not connected")
        req_id = self._next_req_id
        self._next_req_id += 1
        self.ring.push_request(
            RingRequest(req_id=req_id, op=op, sector=sector, gref=DATA_GREF)
        )
        self._kick()
        responses, self._rsp_cons = self.ring.poll_responses(self._rsp_cons)
        for response in responses:
            if response.req_id == req_id:
                return response.status
        raise BlkfrontError(f"no response for request {req_id}")

    def write_sector(self, sector: int, words: List[int]) -> None:
        if len(words) > WORDS_PER_PAGE:
            raise BlkfrontError("sector payload too large")
        padded = list(words) + [0] * (WORDS_PER_PAGE - len(words))
        data_va = self.kernel.kva(self.data_pfn)
        for i, word in enumerate(padded):
            self.kernel.write_va(data_va + 8 * i, word)
        status = self._submit(OP_WRITE, sector)
        if status != STATUS_OK:
            raise BlkfrontError(f"write of sector {sector} failed ({status})")

    def read_sector(self, sector: int, count: int = WORDS_PER_PAGE) -> List[int]:
        status = self._submit(OP_READ, sector)
        if status != STATUS_OK:
            raise BlkfrontError(f"read of sector {sector} failed ({status})")
        data_va = self.kernel.kva(self.data_pfn)
        return [self.kernel.read_va(data_va + 8 * i) for i in range(count)]
