"""The shared-ring protocol of Xen's split drivers.

One 4 KiB page, shared between frontend and backend through a grant,
carries both directions of the conversation:

======  =====================================================
words   contents
======  =====================================================
0       ``req_prod`` — requests produced (written by frontend)
1       ``rsp_prod`` — responses produced (written by backend)
8..135  32 request slots × 4 words: id, op, sector, grant-ref
200..263  32 response slots × 2 words: id, status
======  =====================================================

Consumer indices are *private* to each side (like the real
``RING_*`` macros keep them in local memory), so a peer can only lie
about what it produced — which is exactly the attack surface the
backend must survive: ``pop_requests`` clamps runaway producer
indices instead of trusting them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.machine import Machine

RING_SIZE = 32

_REQ_PROD_WORD = 0
_RSP_PROD_WORD = 1
_REQ_BASE = 8
_REQ_WORDS = 4
_RSP_BASE = 200
_RSP_WORDS = 2

# request operations
OP_READ = 0
OP_WRITE = 1

# response status
STATUS_OK = 0
STATUS_ERROR = 1


@dataclass(frozen=True)
class RingRequest:
    req_id: int
    op: int
    sector: int
    gref: int


@dataclass(frozen=True)
class RingResponse:
    req_id: int
    status: int


class SharedRing:
    """A view over the shared ring page (either side instantiates one
    over the same machine frame)."""

    def __init__(self, machine: "Machine", mfn: int):
        self.machine = machine
        self.mfn = mfn

    # -- producer indices (shared, hence untrusted) -------------------------

    @property
    def req_prod(self) -> int:
        return self.machine.read_word(self.mfn, _REQ_PROD_WORD)

    @req_prod.setter
    def req_prod(self, value: int) -> None:
        self.machine.write_word(self.mfn, _REQ_PROD_WORD, value)

    @property
    def rsp_prod(self) -> int:
        return self.machine.read_word(self.mfn, _RSP_PROD_WORD)

    @rsp_prod.setter
    def rsp_prod(self, value: int) -> None:
        self.machine.write_word(self.mfn, _RSP_PROD_WORD, value)

    # -- slots ---------------------------------------------------------------

    def write_request(self, index: int, request: RingRequest) -> None:
        base = _REQ_BASE + (index % RING_SIZE) * _REQ_WORDS
        self.machine.write_words(
            self.mfn,
            base,
            [request.req_id, request.op, request.sector, request.gref],
        )

    def read_request(self, index: int) -> RingRequest:
        base = _REQ_BASE + (index % RING_SIZE) * _REQ_WORDS
        req_id, op, sector, gref = self.machine.read_words(self.mfn, base, 4)
        return RingRequest(req_id=req_id, op=op, sector=sector, gref=gref)

    def write_response(self, index: int, response: RingResponse) -> None:
        base = _RSP_BASE + (index % RING_SIZE) * _RSP_WORDS
        self.machine.write_words(
            self.mfn, base, [response.req_id, response.status]
        )

    def read_response(self, index: int) -> RingResponse:
        base = _RSP_BASE + (index % RING_SIZE) * _RSP_WORDS
        req_id, status = self.machine.read_words(self.mfn, base, 2)
        return RingResponse(req_id=req_id, status=status)

    # -- frontend side ----------------------------------------------------------

    def push_request(self, request: RingRequest) -> None:
        prod = self.req_prod
        self.write_request(prod, request)
        self.req_prod = prod + 1

    def poll_responses(self, rsp_cons: int) -> Tuple[List[RingResponse], int]:
        """Responses between the private ``rsp_cons`` and ``rsp_prod``;
        returns them plus the new consumer index."""
        responses = []
        prod = self.rsp_prod
        while rsp_cons < prod and len(responses) <= RING_SIZE:
            responses.append(self.read_response(rsp_cons))
            rsp_cons += 1
        return responses, rsp_cons

    # -- backend side --------------------------------------------------------------

    def pop_requests(self, req_cons: int) -> Tuple[List[RingRequest], int, bool]:
        """Requests between the private ``req_cons`` and ``req_prod``.

        Returns ``(requests, new_cons, clamped)``.  A malicious
        frontend can write any ``req_prod``; the backend never consumes
        more than one ring's worth per poll (``clamped=True`` flags the
        runaway index — the handled erroneous state)."""
        prod = self.req_prod
        clamped = False
        if prod - req_cons > RING_SIZE:
            prod = req_cons + RING_SIZE
            clamped = True
        requests = []
        while req_cons < prod:
            requests.append(self.read_request(req_cons))
            req_cons += 1
        return requests, req_cons, clamped
