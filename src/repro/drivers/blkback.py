"""The block-device backend (dom0 side of the split driver).

The backend watches XenStore for frontends entering the Initialised
state, maps their ring page through the grant tables, binds the event
channel, and serves requests against a :class:`VirtualDisk`.

It is written to *survive* malicious frontends — the robustness the
paper's intrusion models probe: out-of-range sectors and bad grant
references produce error responses, unknown operations are rejected,
and runaway producer indices are clamped (see
:meth:`repro.drivers.ring.SharedRing.pop_requests`).  Every such event
is counted, so tests and campaigns can check that the erroneous state
was *handled*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.drivers.disk import DiskError, VirtualDisk
from repro.drivers.ring import (
    OP_READ,
    OP_WRITE,
    RingResponse,
    SharedRing,
    STATUS_ERROR,
    STATUS_OK,
)
from repro.errors import HypercallError
from repro.xen import constants as C
from repro.xen.constants import WORDS_PER_PAGE
from repro.xen.hypercalls import EventChannelOpArgs
from repro.xen.xenstore import domain_prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guest.kernel import GuestKernel


@dataclass
class FrontendConnection:
    """Backend-side state for one connected frontend."""

    frontend_id: int
    ring: SharedRing
    event_port: int  # backend's local port
    req_cons: int = 0
    rsp_prod: int = 0
    requests_served: int = 0
    errors_returned: int = 0
    clamps: int = 0


class Blkback:
    """The dom0 block backend daemon."""

    def __init__(self, kernel: "GuestKernel", disk: Optional[VirtualDisk] = None):
        if not kernel.domain.is_privileged:
            raise ValueError("the block backend runs in the control domain")
        self.kernel = kernel
        self.disk = disk if disk is not None else VirtualDisk()
        self.connections: Dict[int, FrontendConnection] = {}
        self.log: List[str] = []
        self._started = False

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Watch XenStore for frontends announcing themselves."""
        if self._started:
            return
        self._started = True
        self.kernel.xen.xenstore.watch(
            self.kernel.domain, "/local/domain", self._on_store_write
        )

    def _on_store_write(self, path: str, value: str) -> None:
        # Waiting for: /local/domain/<id>/device/vbd/0/state = "3"
        parts = path.split("/")
        if len(parts) != 8 or parts[-1] != "state" or value != "3":
            return
        if parts[4] != "device" or parts[5] != "vbd":
            return
        frontend_id = int(parts[3])
        if frontend_id == self.kernel.domain.id:
            return
        if frontend_id in self.connections:
            return
        self._connect(frontend_id)

    def _connect(self, frontend_id: int) -> None:
        xen = self.kernel.xen
        store = xen.xenstore
        front_dir = f"{domain_prefix(frontend_id)}/device/vbd/0"
        ring_ref = store.read(f"{front_dir}/ring-ref")
        remote_port = store.read(f"{front_dir}/event-channel")
        if ring_ref is None or remote_port is None:
            self.log.append(f"d{frontend_id}: incomplete handshake, ignoring")
            return

        try:
            ring_mfn = xen.grants.map_grant_ref(
                self.kernel.domain, frontend_id, int(ring_ref)
            )
        except HypercallError as exc:
            self.log.append(f"d{frontend_id}: ring grant refused ({exc})")
            return

        local_port = self.kernel.event_channel_op(
            EventChannelOpArgs(
                cmd=C.EVTCHNOP_BIND_INTERDOMAIN,
                remote_domid=frontend_id,
                remote_port=int(remote_port),
            )
        )
        if local_port < 0:
            self.log.append(f"d{frontend_id}: event bind failed ({local_port})")
            return

        connection = FrontendConnection(
            frontend_id=frontend_id,
            ring=SharedRing(xen.machine, ring_mfn),
            event_port=local_port,
        )
        self.connections[frontend_id] = connection
        self.kernel.bind_handler(
            local_port, lambda port, fid=frontend_id: self._on_event(fid)
        )
        store.write(
            self.kernel.domain,
            f"{domain_prefix(self.kernel.domain.id)}/backend/vbd/"
            f"{frontend_id}/0/state",
            "4",
        )
        self.log.append(f"d{frontend_id}: connected (ring mfn {ring_mfn:#x})")

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------

    def _on_event(self, frontend_id: int) -> None:
        connection = self.connections.get(frontend_id)
        if connection is None:
            return
        self._process(connection)

    def _process(self, connection: FrontendConnection) -> None:
        requests, connection.req_cons, clamped = connection.ring.pop_requests(
            connection.req_cons
        )
        if clamped:
            connection.clamps += 1
            self.log.append(
                f"d{connection.frontend_id}: runaway req_prod clamped "
                "(malformed ring state handled)"
            )
        for request in requests:
            status = self._serve(connection, request)
            connection.ring.write_response(
                connection.rsp_prod,
                RingResponse(req_id=request.req_id, status=status),
            )
            connection.rsp_prod += 1
            connection.ring.rsp_prod = connection.rsp_prod
            if status == STATUS_OK:
                connection.requests_served += 1
            else:
                connection.errors_returned += 1
        if requests:
            self._notify(connection)

    def _serve(self, connection: FrontendConnection, request) -> int:
        xen = self.kernel.xen
        if request.op not in (OP_READ, OP_WRITE):
            self.log.append(
                f"d{connection.frontend_id}: unknown op {request.op} rejected"
            )
            return STATUS_ERROR
        if not self.disk.in_range(request.sector):
            self.log.append(
                f"d{connection.frontend_id}: sector {request.sector} "
                "out of range"
            )
            return STATUS_ERROR
        try:
            data_mfn = xen.grants.map_grant_ref(
                self.kernel.domain, connection.frontend_id, request.gref
            )
        except HypercallError as exc:
            self.log.append(
                f"d{connection.frontend_id}: data grant {request.gref} "
                f"refused ({exc})"
            )
            return STATUS_ERROR
        try:
            if request.op == OP_READ:
                words = self.disk.read_sector(request.sector)
                xen.machine.write_words(data_mfn, 0, words)
            else:
                words = xen.machine.read_words(data_mfn, 0, WORDS_PER_PAGE)
                self.disk.write_sector(request.sector, words)
            return STATUS_OK
        except DiskError as exc:
            self.log.append(f"d{connection.frontend_id}: disk error ({exc})")
            return STATUS_ERROR
        finally:
            xen.grants.unmap_grant_ref(self.kernel.domain, data_mfn)

    def _notify(self, connection: FrontendConnection) -> None:
        self.kernel.event_channel_op(
            EventChannelOpArgs(cmd=C.EVTCHNOP_SEND, port=connection.event_port)
        )
