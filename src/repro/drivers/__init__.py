"""Paravirtual split drivers (frontend/backend over grants + events).

Xen IO flows through split drivers: a *frontend* in the guest shares a
ring page with a *backend* in dom0 through the grant tables, and the
two notify each other over an event channel — with XenStore carrying
the handshake.  The paper names this surface repeatedly (device
drivers and IO as threat vectors, §IX-C/D; ring/page references as
erroneous-state targets), so the substrate includes two working
devices on top of the shared-ring protocol: a block device
(:class:`~repro.drivers.blkfront.Blkfront` /
:class:`~repro.drivers.blkback.Blkback` against a
:class:`~repro.drivers.disk.VirtualDisk`) and a network device
(:class:`~repro.drivers.netfront.Netfront` /
:class:`~repro.drivers.netback.Netback`, with dom0 switching packets
between guest vifs).
"""

from repro.drivers.blkback import Blkback
from repro.drivers.blkfront import Blkfront
from repro.drivers.disk import VirtualDisk
from repro.drivers.netback import Netback
from repro.drivers.netfront import Netfront
from repro.drivers.ring import RING_SIZE, SharedRing

__all__ = [
    "Blkback",
    "Blkfront",
    "Netback",
    "Netfront",
    "VirtualDisk",
    "SharedRing",
    "RING_SIZE",
]
