"""The virtual disk behind the block backend."""

from __future__ import annotations

from typing import Dict, List

from repro.xen.constants import WORDS_PER_PAGE


class DiskError(Exception):
    """Out-of-range sector or malformed transfer."""


class VirtualDisk:
    """A sector-addressed store (one sector = one page of words)."""

    def __init__(self, num_sectors: int = 64):
        if num_sectors <= 0:
            raise DiskError("disk needs at least one sector")
        self.num_sectors = num_sectors
        self._sectors: Dict[int, List[int]] = {}
        self.reads = 0
        self.writes = 0

    def _check(self, sector: int) -> None:
        if not 0 <= sector < self.num_sectors:
            raise DiskError(
                f"sector {sector} out of range (0..{self.num_sectors - 1})"
            )

    def read_sector(self, sector: int) -> List[int]:
        self._check(sector)
        self.reads += 1
        return list(self._sectors.get(sector, [0] * WORDS_PER_PAGE))

    def write_sector(self, sector: int, words: List[int]) -> None:
        self._check(sector)
        if len(words) != WORDS_PER_PAGE:
            raise DiskError(
                f"sector write needs {WORDS_PER_PAGE} words, got {len(words)}"
            )
        self.writes += 1
        self._sectors[sector] = list(words)

    def in_range(self, sector: int) -> bool:
        return 0 <= sector < self.num_sectors
