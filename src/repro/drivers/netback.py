"""The network backend: dom0's virtual switch between guest vifs.

Watches XenStore for ``device/vif/0`` frontends, maps each one's ring
and RX page, and switches packets between them: a transmit request
names a destination domain; the backend copies the payload from the
sender's granted TX page into the receiver's granted RX page and kicks
the receiver's event channel.

Robustness mirrors the block backend: unknown destinations, oversized
lengths, busy RX buffers and bad grants produce error responses (and
drop counters), never backend failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.drivers.codec import MAX_PAYLOAD_BYTES
from repro.drivers.netfront import OP_SEND
from repro.drivers.ring import RingResponse, SharedRing, STATUS_ERROR, STATUS_OK
from repro.errors import HypercallError
from repro.xen import constants as C
from repro.xen.hypercalls import EventChannelOpArgs
from repro.xen.xenstore import domain_prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guest.kernel import GuestKernel

_RX_SRC_WORD = 0
_RX_LEN_WORD = 1
_RX_DATA_WORD = 8


@dataclass
class VifConnection:
    """Backend-side state for one connected virtual interface."""

    frontend_id: int
    ring: SharedRing
    rx_mfn: int
    event_port: int  # backend's local port
    req_cons: int = 0
    rsp_prod: int = 0
    packets_switched: int = 0
    errors_returned: int = 0
    drops: int = 0


class Netback:
    """The dom0 network backend / virtual switch."""

    def __init__(self, kernel: "GuestKernel"):
        if not kernel.domain.is_privileged:
            raise ValueError("the network backend runs in the control domain")
        self.kernel = kernel
        self.vifs: Dict[int, VifConnection] = {}
        self.log: List[str] = []
        self._started = False

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.kernel.xen.xenstore.watch(
            self.kernel.domain, "/local/domain", self._on_store_write
        )

    def _on_store_write(self, path: str, value: str) -> None:
        parts = path.split("/")
        if len(parts) != 8 or parts[-1] != "state" or value != "3":
            return
        if parts[4] != "device" or parts[5] != "vif":
            return
        frontend_id = int(parts[3])
        if frontend_id == self.kernel.domain.id or frontend_id in self.vifs:
            return
        self._connect(frontend_id)

    def _connect(self, frontend_id: int) -> None:
        xen = self.kernel.xen
        store = xen.xenstore
        front_dir = f"{domain_prefix(frontend_id)}/device/vif/0"
        ring_ref = store.read(f"{front_dir}/ring-ref")
        rx_ref = store.read(f"{front_dir}/rx-ref")
        remote_port = store.read(f"{front_dir}/event-channel")
        if None in (ring_ref, rx_ref, remote_port):
            self.log.append(f"vif d{frontend_id}: incomplete handshake")
            return
        try:
            ring_mfn = xen.grants.map_grant_ref(
                self.kernel.domain, frontend_id, int(ring_ref)
            )
            rx_mfn = xen.grants.map_grant_ref(
                self.kernel.domain, frontend_id, int(rx_ref)
            )
        except HypercallError as exc:
            self.log.append(f"vif d{frontend_id}: grant refused ({exc})")
            return
        local_port = self.kernel.event_channel_op(
            EventChannelOpArgs(
                cmd=C.EVTCHNOP_BIND_INTERDOMAIN,
                remote_domid=frontend_id,
                remote_port=int(remote_port),
            )
        )
        if local_port < 0:
            self.log.append(f"vif d{frontend_id}: event bind failed")
            return
        vif = VifConnection(
            frontend_id=frontend_id,
            ring=SharedRing(xen.machine, ring_mfn),
            rx_mfn=rx_mfn,
            event_port=local_port,
        )
        self.vifs[frontend_id] = vif
        self.kernel.bind_handler(
            local_port, lambda port, fid=frontend_id: self._on_event(fid)
        )
        store.write(
            self.kernel.domain,
            f"{domain_prefix(self.kernel.domain.id)}/backend/vif/"
            f"{frontend_id}/0/state",
            "4",
        )
        self.log.append(f"vif d{frontend_id}: connected")

    # ------------------------------------------------------------------
    # Switching
    # ------------------------------------------------------------------

    def _on_event(self, frontend_id: int) -> None:
        vif = self.vifs.get(frontend_id)
        if vif is None:
            return
        requests, vif.req_cons, clamped = vif.ring.pop_requests(vif.req_cons)
        if clamped:
            self.log.append(f"vif d{frontend_id}: runaway req_prod clamped")
        for request in requests:
            status = self._switch(vif, request)
            vif.ring.write_response(
                vif.rsp_prod, RingResponse(req_id=request.req_id, status=status)
            )
            vif.rsp_prod += 1
            vif.ring.rsp_prod = vif.rsp_prod
            if status == STATUS_OK:
                vif.packets_switched += 1
            else:
                vif.errors_returned += 1

    def _switch(self, sender: VifConnection, request) -> int:
        xen = self.kernel.xen
        if request.op != OP_SEND:
            self.log.append(
                f"vif d{sender.frontend_id}: unknown op {request.op}"
            )
            return STATUS_ERROR
        dest = self.vifs.get(request.sector)  # sector carries dest domid
        if dest is None:
            self.log.append(
                f"vif d{sender.frontend_id}: no such destination "
                f"d{request.sector}"
            )
            return STATUS_ERROR
        try:
            tx_mfn = xen.grants.map_grant_ref(
                self.kernel.domain, sender.frontend_id, request.gref
            )
        except HypercallError as exc:
            self.log.append(
                f"vif d{sender.frontend_id}: TX grant refused ({exc})"
            )
            return STATUS_ERROR
        try:
            length = xen.machine.read_word(tx_mfn, 0)
            if length > MAX_PAYLOAD_BYTES - 16:
                self.log.append(
                    f"vif d{sender.frontend_id}: oversized packet "
                    f"({length} bytes) dropped"
                )
                sender.drops += 1
                return STATUS_ERROR
            if xen.machine.read_word(dest.rx_mfn, _RX_LEN_WORD) != 0:
                # Receiver hasn't drained its buffer: drop.
                dest.drops += 1
                self.log.append(
                    f"vif d{dest.frontend_id}: RX buffer busy, packet dropped"
                )
                return STATUS_ERROR
            n_words = (length + 7) // 8
            payload = xen.machine.read_words(tx_mfn, 1, n_words)
            xen.machine.write_word(
                dest.rx_mfn, _RX_SRC_WORD, sender.frontend_id
            )
            xen.machine.write_words(dest.rx_mfn, _RX_DATA_WORD, payload)
            xen.machine.write_word(dest.rx_mfn, _RX_LEN_WORD, length)
            self._notify(dest)
            return STATUS_OK
        finally:
            xen.grants.unmap_grant_ref(self.kernel.domain, tx_mfn)

    def _notify(self, vif: VifConnection) -> None:
        self.kernel.event_channel_op(
            EventChannelOpArgs(cmd=C.EVTCHNOP_SEND, port=vif.event_port)
        )
