"""The network frontend (guest side of the PV network driver).

Mirrors the block frontend's handshake (ring grant + event channel +
XenStore announcement under ``device/vif/0``) and adds a receive
buffer: the frontend grants one RX page that the backend fills with
incoming packet payloads, notifying over the same event channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.drivers.codec import MAX_PAYLOAD_BYTES, decode_text, encode_text
from repro.drivers.ring import RingRequest, SharedRing
from repro.xen import constants as C
from repro.xen.hypercalls import EventChannelOpArgs, GrantTableOpArgs
from repro.xen.xenstore import domain_prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guest.kernel import GuestKernel


class NetfrontError(Exception):
    """Setup failure or transmit error."""


#: Ring request op for packet transmit.
OP_SEND = 10

#: Grant references used by the network device (separate table slots
#: from the block device's 0/1 so both can coexist).
RING_GREF = 2
TX_GREF = 3
RX_GREF = 4

#: RX page layout: word 0 = source domid, word 1 = byte length,
#: words 8.. = payload.
_RX_SRC_WORD = 0
_RX_LEN_WORD = 1
_RX_DATA_WORD = 8


@dataclass
class ReceivedPacket:
    source_domid: int
    message: str


class Netfront:
    """The guest's network interface."""

    def __init__(self, kernel: "GuestKernel", backend_domid: int = 0):
        self.kernel = kernel
        self.backend_domid = backend_domid
        self.ring: Optional[SharedRing] = None
        self.ring_pfn: Optional[int] = None
        self.tx_pfn: Optional[int] = None
        self.rx_pfn: Optional[int] = None
        self.event_port: Optional[int] = None
        self._rsp_cons = 0
        self._next_req_id = 1
        self.connected = False
        self.inbox: List[ReceivedPacket] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    @property
    def xenstore_dir(self) -> str:
        return f"{domain_prefix(self.kernel.domain.id)}/device/vif/0"

    def connect(self) -> None:
        kernel = self.kernel
        xen = kernel.xen

        self.ring_pfn = kernel.alloc_page()
        self.tx_pfn = kernel.alloc_page()
        self.rx_pfn = kernel.alloc_page()
        self.ring = SharedRing(xen.machine, kernel.pfn_to_mfn(self.ring_pfn))

        rc = kernel.grant_table_op(
            GrantTableOpArgs(cmd=C.GNTTABOP_SETUP_TABLE, nr_entries=8)
        )
        if rc != 0:
            raise NetfrontError(f"grant table setup failed: {rc}")
        for gref, pfn in (
            (RING_GREF, self.ring_pfn),
            (TX_GREF, self.tx_pfn),
            (RX_GREF, self.rx_pfn),
        ):
            xen.grants.grant_access(
                kernel.domain, gref, self.backend_domid, pfn=pfn, readonly=False
            )

        port = kernel.event_channel_op(
            EventChannelOpArgs(
                cmd=C.EVTCHNOP_ALLOC_UNBOUND, remote_domid=self.backend_domid
            )
        )
        if port < 0:
            raise NetfrontError(f"event channel allocation failed: {port}")
        self.event_port = port
        kernel.bind_handler(port, self._on_event)

        store = xen.xenstore
        store.write(kernel.domain, f"{self.xenstore_dir}/ring-ref", str(RING_GREF))
        store.write(kernel.domain, f"{self.xenstore_dir}/rx-ref", str(RX_GREF))
        store.write(kernel.domain, f"{self.xenstore_dir}/event-channel", str(port))
        store.write(kernel.domain, f"{self.xenstore_dir}/state", "3")
        self.connected = True

    # ------------------------------------------------------------------
    # Transmit
    # ------------------------------------------------------------------

    def send(self, dest_domid: int, message: str) -> int:
        """Transmit one packet; returns the backend's status."""
        if not self.connected:
            raise NetfrontError("netfront not connected")
        payload = message.encode("utf-8")
        if len(payload) > MAX_PAYLOAD_BYTES - 16:
            raise NetfrontError("packet too large")

        words = encode_text(message)
        tx_va = self.kernel.kva(self.tx_pfn)
        self.kernel.write_va(tx_va, len(payload))  # word 0: byte length
        for i, word in enumerate(words):
            self.kernel.write_va(tx_va + 8 * (1 + i), word)

        req_id = self._next_req_id
        self._next_req_id += 1
        # The block ring's request layout is reused: sector carries the
        # destination domain, gref the TX buffer.
        self.ring.push_request(
            RingRequest(req_id=req_id, op=OP_SEND, sector=dest_domid, gref=TX_GREF)
        )
        rc = self.kernel.event_channel_op(
            EventChannelOpArgs(cmd=C.EVTCHNOP_SEND, port=self.event_port)
        )
        if rc != 0:
            raise NetfrontError(f"event kick failed: {rc}")
        responses, self._rsp_cons = self.ring.poll_responses(self._rsp_cons)
        for response in responses:
            if response.req_id == req_id:
                return response.status
        raise NetfrontError(f"no response for packet {req_id}")

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def _on_event(self, port: int) -> None:
        """Backend notification: a packet landed in our RX page."""
        rx_va = self.kernel.kva(self.rx_pfn)
        length = self.kernel.read_va(rx_va + 8 * _RX_LEN_WORD)
        if length == 0:
            return  # TX completion notification, nothing to receive
        source = self.kernel.read_va(rx_va + 8 * _RX_SRC_WORD)
        n_words = (length + 7) // 8
        words = [
            self.kernel.read_va(rx_va + 8 * (_RX_DATA_WORD + i))
            for i in range(n_words)
        ]
        self.inbox.append(
            ReceivedPacket(source_domid=source, message=decode_text(words, length))
        )
        # Hand the buffer back: zero length marks it free.
        self.kernel.write_va(rx_va + 8 * _RX_LEN_WORD, 0)
