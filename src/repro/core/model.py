"""Intrusion models and the extended-AVI chain (paper §III, §IV-B/C).

An **Intrusion Model** (IM) "abstracts how an erroneous state is
achieved when using an abusive functionality through a given
interface".  Instantiating one fixes the *triggering source* (who
attacks), the *target component* (what part of the virtualization
layer is abused), and the *interaction interface* (how), on top of the
abusive functionality itself.

:class:`AviChain` renders Fig. 1: the classic dependability chain of
threats specialised by the extended AVI model —
``attack + vulnerability → intrusion → erroneous state → security
violation``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.taxonomy import AbusiveFunctionality, table_ii_label


class TriggeringSource(enum.Enum):
    """Who drives the abusive functionality (threat-model dimension)."""

    UNPRIVILEGED_GUEST = "unprivileged guest virtual machine"
    PRIVILEGED_GUEST_USER = "privileged user in a guest"
    CONTROL_DOMAIN = "control domain (dom0)"
    MANAGEMENT_INTERFACE = "management interface"
    DEVICE_DRIVER = "device driver"


class TargetComponent(enum.Enum):
    """Which subsystem of the virtualization layer is targeted."""

    MEMORY_MANAGEMENT = "memory management component"
    INTERRUPT_HANDLING = "interrupt/event handling"
    GRANT_TABLES = "grant tables"
    DEVICE_EMULATION = "device emulation"
    SCHEDULER = "scheduler"


class InteractionInterface(enum.Enum):
    """Through which interface the adversary interacts."""

    HYPERCALL = "hypercall"
    IO_PORT = "emulated I/O port"
    SHARED_MEMORY = "shared memory"
    MANAGEMENT_API = "management API"


@dataclass(frozen=True)
class IntrusionModel:
    """One instantiated intrusion model (paper §IV-C).

    ``related_advisories`` records the known vulnerabilities the model
    generalises; an IM remains meaningful for *unknown* vulnerabilities
    that would lead to the same erroneous states.
    """

    name: str
    abusive_functionality: AbusiveFunctionality
    triggering_source: TriggeringSource
    target_component: TargetComponent
    interface: InteractionInterface
    description: str = ""
    related_advisories: Tuple[str, ...] = ()

    @property
    def functionality_label(self) -> str:
        return table_ii_label(self.abusive_functionality)

    def describe(self) -> str:
        return (
            f"IM[{self.name}]: a {self.triggering_source.value} uses a "
            f"{self.interface.value} against the {self.target_component.value} "
            f"to obtain '{self.functionality_label}'"
        )


#: The full instantiation shared by the paper's four use cases (§VI-A):
#: "an unprivileged guest virtual machine that uses an hypercall to
#: target the memory management component in the virtualization layer".
def memory_management_im(
    name: str,
    functionality: AbusiveFunctionality,
    advisories: Sequence[str],
    description: str = "",
) -> IntrusionModel:
    """Instantiate the paper's shared memory-management IM (§VI-A)."""
    return IntrusionModel(
        name=name,
        abusive_functionality=functionality,
        triggering_source=TriggeringSource.UNPRIVILEGED_GUEST,
        target_component=TargetComponent.MEMORY_MANAGEMENT,
        interface=InteractionInterface.HYPERCALL,
        description=description,
        related_advisories=tuple(advisories),
    )


# ---------------------------------------------------------------------------
# Fig. 1: the chain of dependability threats with the extended AVI model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChainStage:
    name: str
    dependability_term: str
    description: str


class AviChain:
    """The extended-AVI specialisation of fault → error → failure.

    The stages and their mapping onto the classic chain reproduce
    Fig. 1; :meth:`propagate` walks a concrete incident through them.
    """

    STAGES: Tuple[ChainStage, ...] = (
        ChainStage(
            name="attack",
            dependability_term="external malicious fault",
            description="intentional act taken by the adversary, usually an exploit",
        ),
        ChainStage(
            name="vulnerability",
            dependability_term="internal fault",
            description="fault introduced during design, development or operation",
        ),
        ChainStage(
            name="intrusion",
            dependability_term="fault activation",
            description="the exploit activates the vulnerability",
        ),
        ChainStage(
            name="erroneous state",
            dependability_term="error",
            description="intrusion-induced perturbation of the system state",
        ),
        ChainStage(
            name="security violation",
            dependability_term="failure",
            description="a failure that affects a security attribute",
        ),
    )

    @classmethod
    def stage(cls, name: str) -> ChainStage:
        for stage in cls.STAGES:
            if stage.name == name:
                return stage
        raise KeyError(name)

    @classmethod
    def propagate(cls, handled_at: Optional[str] = None) -> List[str]:
        """Walk the chain; stop early if the system handles the error.

        ``handled_at`` names the stage at which a defence intercepts
        the propagation (e.g. ``"erroneous state"`` when the system
        tolerates the error, as Xen 4.13 does in two use cases).
        """
        trace = []
        for stage in cls.STAGES:
            trace.append(stage.name)
            if handled_at is not None and stage.name == handled_at:
                trace.append("<handled — no security violation>")
                break
        return trace

    @classmethod
    def render(cls) -> str:
        arrow = " -> "
        top = arrow.join(stage.name for stage in cls.STAGES)
        bottom = arrow.join(stage.dependability_term for stage in cls.STAGES)
        return f"{top}\n({bottom})"
