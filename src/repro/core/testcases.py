"""The intrusion-injection test-case registry (paper §X).

"We also plan to implement different injectors and an open-source
list of tests and experiments covering various Intrusion Models,
fostering community involvement and broader applicability."  This
module is that list: every injection scenario the repository ships,
registered under a stable name with its intrusion model and the
security attribute it probes, runnable individually or as a suite.

>>> from repro.core.testcases import REGISTRY, run_test_case
>>> outcome = run_test_case("xsa-182-test", XEN_4_13)
>>> outcome.erroneous_state, outcome.violation
(True, False)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.campaign import Campaign, Mode
from repro.core.injections.extensions import (
    FATAL_EXCEPTION_IM,
    HANG_IM,
    INTERRUPT_STORM_IM,
    READ_UNAUTHORIZED_IM,
    inject_fatal_exception,
    inject_hang_state,
    inject_interrupt_storm,
    inject_read_unauthorized,
)
from repro.core.model import IntrusionModel
from repro.core.testbed import TestBed, build_testbed
from repro.exploits import XSA148Priv, XSA182Test, XSA212Crash, XSA212Priv
from repro.xen.versions import XenVersion


@dataclass
class TestCaseOutcome:
    """What one registered test case observed on one version."""

    name: str
    version: str
    erroneous_state: bool
    violation: bool
    violation_kind: Optional[str] = None

    @property
    def handled(self) -> bool:
        return self.erroneous_state and not self.violation


@dataclass(frozen=True)
class InjectionTestCase:
    """One entry of the open test-case list."""

    name: str
    intrusion_model: IntrusionModel
    attribute: str  # confidentiality / integrity / availability
    description: str
    runner: Callable[[TestBed], Tuple[bool, bool, Optional[str]]]
    origin: str = "paper"  # "paper" | "extension"

    def run(self, version: XenVersion) -> TestCaseOutcome:
        bed = build_testbed(version)
        erroneous, violation, kind = self.runner(bed)
        return TestCaseOutcome(
            name=self.name,
            version=version.name,
            erroneous_state=erroneous,
            violation=violation,
            violation_kind=kind,
        )


def _use_case_runner(use_case_cls):
    def run(bed: TestBed):
        campaign = Campaign(testbed_factory=lambda _v: bed)
        result = campaign.run(use_case_cls, bed.xen.version, Mode.INJECTION)
        return (
            result.erroneous_state.achieved,
            result.violation.occurred,
            result.violation.kind,
        )

    return run


def _extension_runner(script):
    def run(bed: TestBed):
        erroneous, violation = script(bed)
        return erroneous.achieved, violation.occurred, violation.kind

    return run


def _build_registry() -> Dict[str, InjectionTestCase]:
    cases = [
        InjectionTestCase(
            name="xsa-212-crash",
            intrusion_model=XSA212Crash.intrusion_model(),
            attribute="availability",
            description=XSA212Crash.description,
            runner=_use_case_runner(XSA212Crash),
        ),
        InjectionTestCase(
            name="xsa-212-priv",
            intrusion_model=XSA212Priv.intrusion_model(),
            attribute="integrity",
            description=XSA212Priv.description,
            runner=_use_case_runner(XSA212Priv),
        ),
        InjectionTestCase(
            name="xsa-148-priv",
            intrusion_model=XSA148Priv.intrusion_model(),
            attribute="confidentiality",
            description=XSA148Priv.description,
            runner=_use_case_runner(XSA148Priv),
        ),
        InjectionTestCase(
            name="xsa-182-test",
            intrusion_model=XSA182Test.intrusion_model(),
            attribute="integrity",
            description=XSA182Test.description,
            runner=_use_case_runner(XSA182Test),
        ),
        InjectionTestCase(
            name="interrupt-storm",
            intrusion_model=INTERRUPT_STORM_IM,
            attribute="availability",
            description=INTERRUPT_STORM_IM.description,
            runner=_extension_runner(inject_interrupt_storm),
            origin="extension",
        ),
        InjectionTestCase(
            name="host-hang",
            intrusion_model=HANG_IM,
            attribute="availability",
            description=HANG_IM.description,
            runner=_extension_runner(inject_hang_state),
            origin="extension",
        ),
        InjectionTestCase(
            name="fatal-exception",
            intrusion_model=FATAL_EXCEPTION_IM,
            attribute="availability",
            description=FATAL_EXCEPTION_IM.description,
            runner=_extension_runner(inject_fatal_exception),
            origin="extension",
        ),
        InjectionTestCase(
            name="read-unauthorized",
            intrusion_model=READ_UNAUTHORIZED_IM,
            attribute="confidentiality",
            description=READ_UNAUTHORIZED_IM.description,
            runner=_extension_runner(inject_read_unauthorized),
            origin="extension",
        ),
    ]
    return {case.name: case for case in cases}


#: The shipped test-case list.
REGISTRY: Dict[str, InjectionTestCase] = _build_registry()


def list_test_cases(origin: Optional[str] = None) -> List[InjectionTestCase]:
    """The registered test cases, optionally filtered by origin."""
    cases = list(REGISTRY.values())
    if origin is not None:
        cases = [case for case in cases if case.origin == origin]
    return cases


def run_test_case(name: str, version: XenVersion) -> TestCaseOutcome:
    """Run one registered test case by name against a version."""
    try:
        case = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown test case {name!r}; known: {sorted(REGISTRY)}"
        ) from None
    return case.run(version)


def run_suite(
    version: XenVersion, runner=None, store=None
) -> List[TestCaseOutcome]:
    """Run every registered test case against one configuration.

    With ``runner`` each test case executes as one isolated job
    (parallel, resumable through ``store``); outcomes come back in
    registry order either way.
    """
    if runner is None:
        return [case.run(version) for case in REGISTRY.values()]
    from repro.runner import plan_testcases

    specs = plan_testcases(list(REGISTRY), version.name)
    outcome = runner.run(specs, store=store)
    return [TestCaseOutcome(**payload) for payload in outcome.payloads_for(specs)]
