"""The paper's contribution: intrusion models and intrusion injection."""

from repro.core.campaign import Campaign, Mode, RunResult
from repro.core.injector import ArbitraryAccessAction, IntrusionInjector, install_injector
from repro.core.model import IntrusionModel
from repro.core.taxonomy import AbusiveFunctionality, FunctionalityClass

__all__ = [
    "AbusiveFunctionality",
    "ArbitraryAccessAction",
    "Campaign",
    "FunctionalityClass",
    "IntrusionInjector",
    "IntrusionModel",
    "Mode",
    "RunResult",
    "install_injector",
]
