"""Randomized erroneous-state campaigns (paper §IV-C).

"One possibility is to randomize inputs to an injector, creating an
approach that resembles fuzzing testing but in another level of
interaction, in a post-attack phase."  This module is that approach as
a library: draw random single-word corruptions of chosen hypervisor
components (the *Write Unauthorized Arbitrary Memory* intrusion model
with randomized inputs), inject each into a fresh testbed, exercise
the system, and classify the outcome.

Outcome classes:

``crash``
    the corruption brought the hypervisor down (availability);
``exception``
    contained in a guest-visible fault — the system noticed;
``silent``
    victim-owned state changed with no error anywhere (latent
    integrity violation);
``latent``
    no observable effect during the exercise window;
``refused``
    the injector itself rejected the write (should not happen for
    valid components).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.injector import IntrusionInjector
from repro.core.testbed import TestBed, build_testbed
from repro.errors import GuestFault, HypervisorCrash
from repro.guest.kernel import KernelOops
from repro.xen import layout
from repro.xen.versions import XenVersion

#: A component is a name plus a frame-selector over a testbed.
FrameSelector = Callable[[TestBed], Sequence[int]]


@dataclass(frozen=True)
class ComponentTarget:
    """One corruptible component of the virtualization layer."""

    name: str
    frames: FrameSelector


def default_components() -> List[ComponentTarget]:
    """The five components the §IV-C example campaign corrupts."""
    return [
        ComponentTarget("idt", lambda bed: bed.xen.idt_mfns[:1]),
        ComponentTarget("shared-pud", lambda bed: [bed.xen.xen_pud_mfn]),
        ComponentTarget("m2p", lambda bed: bed.xen.m2p_frames),
        ComponentTarget(
            "victim-pagetables",
            lambda bed: [
                bed.dom0.pfn_to_mfn(bed.dom0.kernel.l4_pfn),
                bed.dom0.pfn_to_mfn(bed.dom0.kernel.l1_pfns[0]),
            ],
        ),
        ComponentTarget(
            "victim-data", lambda bed: [bed.dom0.pfn_to_mfn(4)]
        ),
    ]


@dataclass
class FuzzResult:
    """One random injection and its classified outcome."""

    component: str
    mfn: int
    word: int
    value: int
    outcome: str


@dataclass
class FuzzReport:
    """Aggregated campaign output."""

    version: str
    results: List[FuzzResult] = field(default_factory=list)

    def outcomes_by_component(self) -> Dict[str, Counter]:
        grouped: Dict[str, Counter] = {}
        for result in self.results:
            grouped.setdefault(result.component, Counter())[result.outcome] += 1
        return grouped

    def rate(self, component: str, outcome: str) -> float:
        hits = [r for r in self.results if r.component == component]
        if not hits:
            return 0.0
        return sum(1 for r in hits if r.outcome == outcome) / len(hits)

    def render(self) -> str:
        lines = [
            f"random erroneous-state campaign on Xen {self.version} "
            f"({len(self.results)} injections)",
            f"{'component':<22}{'crash':<8}{'exception':<11}"
            f"{'silent':<8}{'latent':<8}{'refused':<8}",
            "-" * 65,
        ]
        for component, counts in self.outcomes_by_component().items():
            lines.append(
                f"{component:<22}{counts.get('crash', 0):<8}"
                f"{counts.get('exception', 0):<11}"
                f"{counts.get('silent', 0):<8}{counts.get('latent', 0):<8}"
                f"{counts.get('refused', 0):<8}"
            )
        return "\n".join(lines)


class RandomErroneousStateCampaign:
    """Fuzz-style intrusion injection over hypervisor components."""

    def __init__(
        self,
        version: XenVersion,
        seed: int = 2023,
        components: Optional[Sequence[ComponentTarget]] = None,
        testbed_factory: Callable[[XenVersion], TestBed] = build_testbed,
    ):
        self.version = version
        self.rng = random.Random(seed)
        self.components = list(components or default_components())
        self.testbed_factory = testbed_factory

    # ------------------------------------------------------------------

    def run(self, runs_per_component: int = 20) -> FuzzReport:
        report = FuzzReport(version=self.version.name)
        for component in self.components:
            for _ in range(runs_per_component):
                report.results.append(self._one(component))
        return report

    def _one(self, component: ComponentTarget) -> FuzzResult:
        bed = self.testbed_factory(self.version)
        frames = list(component.frames(bed))
        mfn = self.rng.choice(frames)
        word = self.rng.randrange(512)
        value = self.rng.getrandbits(64)
        previous = bed.xen.machine.read_word(mfn, word)
        injector = IntrusionInjector(bed.attacker_domain.kernel)
        rc = injector.write_word(layout.directmap_va(mfn, word), value)
        if rc != 0:
            outcome = "refused"
        else:
            outcome = self._exercise(bed, mfn, word, changed=value != previous)
        return FuzzResult(
            component=component.name, mfn=mfn, word=word, value=value,
            outcome=outcome,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _exercise(bed: TestBed, mfn: int, word: int, changed: bool) -> str:
        attacker = bed.attacker_domain.kernel
        dom0 = bed.dom0.kernel
        victim_frames = {m for m in bed.dom0.p2m if m is not None}
        try:
            for pfn in range(2, 8):
                dom0.read_va(dom0.kva(pfn))
            try:
                attacker.trigger_page_fault()
            except KernelOops:
                pass  # normal delivery: guest oops, Xen survives
            if mfn in bed.xen.idt_mfns:
                bed.xen.software_interrupt(bed.attacker_domain, word // 2)
            attacker.read_va(layout.RO_MPT_START + word * 8)
            bed.tick()
        except HypervisorCrash:
            return "crash"
        except (KernelOops, GuestFault):
            return "exception"
        if bed.xen.crashed:
            return "crash"
        if changed and mfn in victim_frames:
            return "silent"
        return "latent"
