"""Randomized erroneous-state campaigns (paper §IV-C).

"One possibility is to randomize inputs to an injector, creating an
approach that resembles fuzzing testing but in another level of
interaction, in a post-attack phase."  This module is that approach as
a library: draw random single-word corruptions of chosen hypervisor
components (the *Write Unauthorized Arbitrary Memory* intrusion model
with randomized inputs), inject each into a fresh testbed, exercise
the system, and classify the outcome.

Outcome classes:

``crash``
    the corruption brought the hypervisor down (availability);
``exception``
    contained in a guest-visible fault — the system noticed;
``silent``
    victim-owned state changed with no error anywhere (latent
    integrity violation);
``latent``
    no observable effect during the exercise window;
``refused``
    the injector itself rejected the write (should not happen for
    valid components).
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.injector import IntrusionInjector
from repro.core.testbed import TestBed, build_testbed
from repro.errors import GuestFault, HypervisorCrash
from repro.guest.kernel import KernelOops
from repro.xen import layout
from repro.xen.versions import XenVersion

#: A component is a name plus a frame-selector over a testbed.
FrameSelector = Callable[[TestBed], Sequence[int]]


def trial_seed(root_seed: int, component: str, index: int) -> int:
    """Derive the RNG seed of one trial from the campaign root seed.

    Every trial owns a private ``random.Random`` seeded by this value —
    no trial ever observes another trial's draws — so the outcome of
    trial ``(component, index)`` depends only on ``(version, root_seed,
    component, index)``.  That makes campaigns order-independent (and
    therefore parallelizable) and every single trial replayable
    standalone from its recorded seed.
    """
    blob = f"{root_seed}:{component}:{index}".encode()
    digest = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
    return digest >> 1  # 63 bits: fits SQLite's signed INTEGER


@dataclass(frozen=True)
class ComponentTarget:
    """One corruptible component of the virtualization layer."""

    name: str
    frames: FrameSelector


def default_components() -> List[ComponentTarget]:
    """The five components the §IV-C example campaign corrupts."""
    return [
        ComponentTarget("idt", lambda bed: bed.xen.idt_mfns[:1]),
        ComponentTarget("shared-pud", lambda bed: [bed.xen.xen_pud_mfn]),
        ComponentTarget("m2p", lambda bed: bed.xen.m2p_frames),
        ComponentTarget(
            "victim-pagetables",
            lambda bed: [
                bed.victim_domain.pfn_to_mfn(bed.victim_domain.kernel.l4_pfn),
                bed.victim_domain.pfn_to_mfn(bed.victim_domain.kernel.l1_pfns[0]),
            ],
        ),
        ComponentTarget(
            "victim-data", lambda bed: [bed.victim_domain.pfn_to_mfn(4)]
        ),
    ]


@dataclass
class FuzzResult:
    """One random injection and its classified outcome."""

    component: str
    mfn: int
    word: int
    value: int
    outcome: str
    #: The trial's private RNG seed; replay with
    #: :meth:`RandomErroneousStateCampaign.replay`.
    seed: Optional[int] = None
    #: The trial's probe-coverage signature (sorted feature strings,
    #: see :meth:`repro.probes.metrics.MetricsCollector.coverage_signature`);
    #: populated only when coverage collection was requested.
    coverage: Optional[List[str]] = None


@dataclass
class FuzzReport:
    """Aggregated campaign output."""

    version: str
    results: List[FuzzResult] = field(default_factory=list)

    def outcomes_by_component(self) -> Dict[str, Counter]:
        grouped: Dict[str, Counter] = {}
        for result in self.results:
            grouped.setdefault(result.component, Counter())[result.outcome] += 1
        return grouped

    def rate(self, component: str, outcome: str) -> float:
        hits = [r for r in self.results if r.component == component]
        if not hits:
            return 0.0
        return sum(1 for r in hits if r.outcome == outcome) / len(hits)

    def render(self) -> str:
        lines = [
            f"random erroneous-state campaign on Xen {self.version} "
            f"({len(self.results)} injections)",
            f"{'component':<22}{'crash':<8}{'exception':<11}"
            f"{'silent':<8}{'latent':<8}{'refused':<8}",
            "-" * 65,
        ]
        for component, counts in self.outcomes_by_component().items():
            lines.append(
                f"{component:<22}{counts.get('crash', 0):<8}"
                f"{counts.get('exception', 0):<11}"
                f"{counts.get('silent', 0):<8}{counts.get('latent', 0):<8}"
                f"{counts.get('refused', 0):<8}"
            )
        return "\n".join(lines)


class RandomErroneousStateCampaign:
    """Fuzz-style intrusion injection over hypervisor components."""

    def __init__(
        self,
        version: XenVersion,
        seed: int = 2023,
        components: Optional[Sequence[ComponentTarget]] = None,
        testbed_factory: Callable[[XenVersion], TestBed] = build_testbed,
    ):
        self.version = version
        self.seed = seed
        self.components = list(components or default_components())
        self.testbed_factory = testbed_factory

    # ------------------------------------------------------------------

    def run(
        self,
        runs_per_component: int = 20,
        runner=None,
        store=None,
    ) -> FuzzReport:
        """Run the campaign; trials derive private seeds from the root.

        With ``runner`` (a :class:`repro.runner.SerialRunner` or
        :class:`repro.runner.WorkerPool`), trials execute as isolated
        jobs — in parallel, resumable through ``store`` — and, because
        every trial is seeded independently, the assembled report is
        identical to a serial run's.  The parallel path resolves
        component names in the workers via :func:`default_components`,
        so custom :class:`ComponentTarget` closures require the serial
        path.
        """
        if runner is not None:
            return self._run_with_runner(runs_per_component, runner, store)
        report = FuzzReport(version=self.version.name)
        for component in self.components:
            for index in range(runs_per_component):
                seed = trial_seed(self.seed, component.name, index)
                report.results.append(self.run_trial(component, seed))
        return report

    def _run_with_runner(self, runs_per_component, runner, store) -> FuzzReport:
        from repro.runner import plan_fuzz

        known = {c.name for c in default_components()}
        unknown = [c.name for c in self.components if c.name not in known]
        if unknown:
            raise ValueError(
                f"components {unknown} are not default components; "
                "custom frame selectors cannot cross process boundaries — "
                "use the serial path"
            )
        specs = plan_fuzz(
            self.version.name,
            [c.name for c in self.components],
            runs_per_component,
            self.seed,
        )
        outcome = runner.run(specs, store=store)
        report = FuzzReport(version=self.version.name)
        for payload in outcome.payloads_for(specs):
            report.results.append(FuzzResult(**payload))
        return report

    def run_trial(self, component: ComponentTarget, seed: int) -> FuzzResult:
        """One injection with a private, recorded RNG seed."""
        return self.run_trial_on(
            self.testbed_factory(self.version), component, seed
        )

    def run_trial_on(
        self, bed: TestBed, component: ComponentTarget, seed: int
    ) -> FuzzResult:
        """One injection against a caller-provided testbed.

        The fork-server's snapshot-cached execution path: the caller
        owns testbed construction (typically a checkpoint restore
        instead of a fresh boot).  Because the trial RNG is private and
        every draw depends only on the bed's frame layout — identical
        after an exact restore — the result is byte-for-byte the same
        as :meth:`run_trial`'s fresh-boot path, which the fork-server
        parity tests assert.
        """
        rng = random.Random(seed)
        frames = list(component.frames(bed))
        mfn = rng.choice(frames)
        word = rng.randrange(512)
        value = rng.getrandbits(64)
        previous = bed.xen.machine.read_word(mfn, word)
        injector = IntrusionInjector(bed.attacker_domain.kernel)
        rc = injector.write_word(layout.directmap_va(mfn, word), value)
        if rc != 0:
            outcome = "refused"
        else:
            outcome = self._exercise(bed, mfn, word, changed=value != previous)
        return FuzzResult(
            component=component.name, mfn=mfn, word=word, value=value,
            outcome=outcome, seed=seed,
        )

    def component_by_name(self, component_name: str) -> ComponentTarget:
        by_name = {c.name: c for c in self.components}
        try:
            return by_name[component_name]
        except KeyError:
            raise KeyError(
                f"unknown component {component_name!r}; "
                f"known: {sorted(by_name)}"
            ) from None

    def replay(self, component_name: str, seed: int) -> FuzzResult:
        """Re-run one recorded trial standalone from its seed."""
        return self.run_trial(self.component_by_name(component_name), seed)

    # ------------------------------------------------------------------

    @staticmethod
    def _exercise(bed: TestBed, mfn: int, word: int, changed: bool) -> str:
        attacker = bed.attacker_domain.kernel
        victim = bed.victim_domain.kernel
        victim_frames = {m for m in bed.victim_domain.p2m if m is not None}
        try:
            for pfn in range(2, 8):
                victim.read_va(victim.kva(pfn))
            try:
                attacker.trigger_page_fault()
            except KernelOops:
                pass  # normal delivery: guest oops, Xen survives
            if mfn in bed.xen.idt_mfns:
                bed.xen.software_interrupt(bed.attacker_domain, word // 2)
            attacker.read_va(layout.RO_MPT_START + word * 8)
            bed.tick()
        except HypervisorCrash:
            return "crash"
        except (KernelOops, GuestFault):
            return "exception"
        if bed.xen.crashed:
            return "crash"
        if changed and mfn in victim_frames:
            return "silent"
        return "latent"


#: The name the runner subsystem (and the ISSUE tracker) use for this
#: campaign class.
FuzzCampaign = RandomErroneousStateCampaign
