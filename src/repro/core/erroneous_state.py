"""Erroneous-state reports and audit helpers (paper §VI).

After an exploit or an injection runs, the experimenter audits the
system to decide whether the intended erroneous state is present —
the paper does this with page-table walks and by re-reading the
corrupted structures.  The helpers here perform those audits against
the simulator: an *inspection* page walk that records every level
(ignoring access permissions, like a debugger), PTE dumps, and IDT
gate dumps.

Reports carry a ``fingerprint``: the *stable* characteristics of the
state (flags, linkage, structure) with run-specific values (allocated
MFNs) factored out, so that an exploit run and an injection run can be
compared for state equivalence (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.xen.constants import PTE_PRESENT, PTE_PSE, PTE_RW, PTE_USER
from repro.xen.hypervisor import Xen
from repro.xen.idt import decode_gate
from repro.xen.paging import (
    describe_pte,
    l1_index,
    l2_index,
    l3_index,
    l4_index,
    pte_mfn,
    pte_present,
)


@dataclass
class ErroneousStateReport:
    """Did the intended erroneous state materialise, and what does the
    audit show?"""

    achieved: bool
    description: str
    #: Stable, run-independent characteristics (used for equivalence).
    fingerprint: Dict[str, object] = field(default_factory=dict)
    #: Free-form audit evidence lines (addresses, PTE dumps, ...).
    evidence: List[str] = field(default_factory=list)

    def matches(self, other: "ErroneousStateReport") -> bool:
        """State equivalence: both achieved (or not) with identical
        stable fingerprints."""
        return (
            self.achieved == other.achieved
            and self.fingerprint == other.fingerprint
        )


@dataclass
class WalkStep:
    level: int
    table_mfn: int
    index: int
    entry: int

    def render(self) -> str:
        return (
            f"L{self.level}[{self.index:3d}] @mfn {self.table_mfn:#06x}: "
            f"{describe_pte(self.entry)}"
        )


def inspection_walk(xen: Xen, l4_mfn: int, va: int) -> List[WalkStep]:
    """Debugger-style page walk: follow entries regardless of access
    permissions, recording each level; stops at a non-present entry."""
    steps: List[WalkStep] = []
    table_mfn = l4_mfn
    for level, index in (
        (4, l4_index(va)),
        (3, l3_index(va)),
        (2, l2_index(va)),
        (1, l1_index(va)),
    ):
        entry = xen.machine.read_word(table_mfn, index)
        steps.append(WalkStep(level=level, table_mfn=table_mfn, index=index, entry=entry))
        if not pte_present(entry):
            break
        if level == 2 and entry & PTE_PSE:
            break  # superpage leaf
        next_mfn = pte_mfn(entry)
        if next_mfn >= xen.machine.num_frames:
            break
        table_mfn = next_mfn
    return steps


def pte_flag_signature(entry: int) -> str:
    """Stable flag rendering used in fingerprints (P/RW/US/PSE only —
    the bits that define the erroneous states of the four use cases)."""
    if not entry & PTE_PRESENT:
        return "not-present"
    parts = ["P"]
    for mask, label in ((PTE_RW, "RW"), (PTE_USER, "US"), (PTE_PSE, "PSE")):
        if entry & mask:
            parts.append(label)
    return "|".join(parts)


def audit_pte(xen: Xen, table_mfn: int, index: int) -> Tuple[int, str]:
    """Read one PTE and render it for evidence logs."""
    entry = xen.machine.read_word(table_mfn, index)
    return entry, f"mfn {table_mfn:#06x}[{index}] = {describe_pte(entry)}"


def audit_idt_gate(xen: Xen, vector: int, cpu: int = 0) -> Dict[str, object]:
    """Decode an IDT gate for audit purposes."""
    idt = xen.idt(cpu)
    word0, word1 = idt.gate_words(vector)
    handler = decode_gate(word0, word1)
    return {
        "vector": vector,
        "word0": word0,
        "word1": word1,
        "valid": handler is not None,
        "handler": handler,
    }


def render_walk(steps: List[WalkStep]) -> List[str]:
    """Render walk steps as evidence lines."""
    return [step.render() for step in steps]
