"""Cross-system injector interfaces — porting erroneous states (§IX-A).

"To trigger similar erroneous states in different systems, we envision
each system having its own injector, providing abusive functionality
interfaces that handle the design and run-time differences."  This
module implements that vision over the two systems the repository
ships: the Xen PV simulator and the QEMU-like device emulator.

A :class:`SystemInjector` exposes *abusive functionality interfaces* —
one method per supported functionality — so that a portable test case
is written once against the functionality and runs on any system that
implements it:

>>> for adapter in (XenSystemInjector(bed), QemuSystemInjector(process)):
...     outcome = adapter.induce(AbusiveFunctionality.WRITE_UNAUTHORIZED_MEMORY)

The adapters absorb the system differences: on Xen, "write
unauthorized memory" goes through the ``arbitrary_access`` hypercall
into another domain's frame; on the emulator it is a heap write past
the FDC FIFO.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.injector import IntrusionInjector
from repro.core.taxonomy import AbusiveFunctionality as AF
from repro.xen.constants import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed
    from repro.qemu.machine import QemuProcess


@dataclass
class InductionOutcome:
    """What one portable induction did on one system."""

    system: str
    functionality: AF
    erroneous_state: bool
    detail: str = ""


class SystemInjector(abc.ABC):
    """The per-system injector of §IX-A."""

    system_name: str = "abstract"

    @abc.abstractmethod
    def supported(self) -> List[AF]:
        """The abusive functionalities this system's injector offers."""

    def induce(self, functionality: AF, **params) -> InductionOutcome:
        """Run the abusive functionality; raises ``KeyError`` for
        functionalities this system does not support."""
        handler = self._handlers().get(functionality)
        if handler is None:
            raise KeyError(
                f"{self.system_name} injector does not support "
                f"{functionality.label!r}"
            )
        return handler(**params)

    @abc.abstractmethod
    def _handlers(self) -> Dict[AF, object]:
        ...


class XenSystemInjector(SystemInjector):
    """Adapter over the Xen prototype injector."""

    system_name = "xen-pv"

    def __init__(self, bed: "TestBed"):
        self.bed = bed
        self.injector = IntrusionInjector(bed.attacker_domain.kernel)

    def supported(self) -> List[AF]:
        return sorted(self._handlers(), key=lambda f: f.label)

    def _handlers(self):
        return {
            AF.WRITE_UNAUTHORIZED_MEMORY: self._write_unauthorized,
            AF.READ_UNAUTHORIZED_MEMORY: self._read_unauthorized,
            AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY: self._write_arbitrary,
        }

    def _victim_paddr(self, word: int = 0) -> int:
        return self.bed.victim_domain.pfn_to_mfn(4) * PAGE_SIZE + word * 8

    def _write_unauthorized(self, value: int = 0x4141) -> InductionOutcome:
        """Corrupt a fixed victim structure (the victim's data page —
        dom0's in the paper topology)."""
        rc = self.injector.write_word(self._victim_paddr(), value, linear=False)
        return InductionOutcome(
            system=self.system_name,
            functionality=AF.WRITE_UNAUTHORIZED_MEMORY,
            erroneous_state=rc == 0,
            detail=f"wrote {value:#x} into victim memory (rc={rc})",
        )

    def _read_unauthorized(self) -> InductionOutcome:
        value = self.injector.read_word(self._victim_paddr(), linear=False)
        if value is not None:
            self.bed.attacker_domain.kernel.exfiltrate(value)
        return InductionOutcome(
            system=self.system_name,
            functionality=AF.READ_UNAUTHORIZED_MEMORY,
            erroneous_state=value is not None,
            detail=f"read dom0 word -> {value!r}",
        )

    def _write_arbitrary(
        self, paddr: Optional[int] = None, value: int = 0x4242
    ) -> InductionOutcome:
        target = paddr if paddr is not None else self._victim_paddr(8)
        rc = self.injector.write_word(target, value, linear=False)
        return InductionOutcome(
            system=self.system_name,
            functionality=AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY,
            erroneous_state=rc == 0,
            detail=f"wrote {value:#x} at physical {target:#x} (rc={rc})",
        )


class QemuSystemInjector(SystemInjector):
    """Adapter over the device-emulator injector (§III-B)."""

    system_name = "qemu-emulator"

    def __init__(self, process: "QemuProcess"):
        self.process = process

    def supported(self) -> List[AF]:
        return sorted(self._handlers(), key=lambda f: f.label)

    def _handlers(self):
        return {
            AF.WRITE_UNAUTHORIZED_MEMORY: self._write_unauthorized,
            AF.READ_UNAUTHORIZED_MEMORY: self._read_unauthorized,
        }

    def _write_unauthorized(self, value: int = 0x4141) -> InductionOutcome:
        """Corrupt the security-critical heap word past the FIFO."""
        from repro.qemu.machine import QemuInjector

        QemuInjector(self.process).inject_fifo_overflow(
            bytes([value & 0xFF, (value >> 8) & 0xFF])
        )
        return InductionOutcome(
            system=self.system_name,
            functionality=AF.WRITE_UNAUTHORIZED_MEMORY,
            erroneous_state=self.process.dispatch_corrupted,
            detail="overwrote the IO dispatch pointer past the FDC FIFO",
        )

    def _read_unauthorized(self) -> InductionOutcome:
        from repro.qemu.machine import DISPATCH_PTR_OFFSET

        value = self.process._read_u16(DISPATCH_PTR_OFFSET)  # noqa: SLF001
        return InductionOutcome(
            system=self.system_name,
            functionality=AF.READ_UNAUTHORIZED_MEMORY,
            erroneous_state=True,
            detail=f"read emulator heap word -> {value:#x}",
        )


def portable_campaign(
    injectors: List[SystemInjector], functionality: AF
) -> List[InductionOutcome]:
    """Run one abusive functionality against every system that
    supports it — the "portable test cases based on architectural
    conceptual aspects" of the paper's introduction (capability v)."""
    outcomes = []
    for injector in injectors:
        if functionality in injector.supported():
            outcomes.append(injector.induce(functionality))
    return outcomes
