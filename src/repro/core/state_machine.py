"""The weird-machine view of an intrusion (paper Fig. 3, §IV-B).

The left of Fig. 3 shows the *internal* transitions of a system under
attack: a state machine stepping through instruction sets until the
vulnerability-activation transition lands it in an erroneous state.
The right shows the attacker's *external* abstraction: a single
**abusive functionality** transition from the initial state straight
to the erroneous state.  "Both diagrams are equivalent in
functionality, i.e., putting the system into a specific erroneous
state based on a given input."

This module provides both machines and the functional-equivalence
check; the Fig. 3 benchmark instantiates them for the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Transition:
    """One internal transition consumed by an instruction set."""

    source: str
    instruction_set: str
    target: str
    activates_vulnerability: bool = False


class ConcreteSystemMachine:
    """The internal view: states + instruction-set transitions."""

    def __init__(
        self,
        initial_state: str,
        transitions: Sequence[Transition],
        erroneous_states: Sequence[str],
    ):
        self.initial_state = initial_state
        self.transitions = list(transitions)
        self.erroneous_states = set(erroneous_states)
        self._by_key: Dict[Tuple[str, str], Transition] = {
            (t.source, t.instruction_set): t for t in self.transitions
        }

    def step(self, state: str, instruction_set: str) -> Optional[str]:
        transition = self._by_key.get((state, instruction_set))
        return None if transition is None else transition.target

    def run(self, inputs: Sequence[str]) -> Optional[str]:
        """Process the input sequence; ``None`` if the run gets stuck."""
        state = self.initial_state
        for instruction_set in inputs:
            nxt = self.step(state, instruction_set)
            if nxt is None:
                return None
            state = nxt
        return state

    def reaches_erroneous_state(self, inputs: Sequence[str]) -> Optional[str]:
        final = self.run(inputs)
        if final is not None and final in self.erroneous_states:
            return final
        return None

    @property
    def states(self) -> List[str]:
        names = {self.initial_state}
        for t in self.transitions:
            names.add(t.source)
            names.add(t.target)
        return sorted(names)


class AbstractIntrusionMachine:
    """The external (attacker) view: initial state, one abusive
    functionality per input class, straight to the erroneous state."""

    def __init__(self, initial_state: str):
        self.initial_state = initial_state
        self._functionality: Dict[Tuple[str, ...], str] = {}

    def define_abusive_functionality(
        self, inputs: Sequence[str], erroneous_state: str
    ) -> None:
        """Declare: feeding ``inputs`` exercises the abusive
        functionality and lands the system in ``erroneous_state``."""
        self._functionality[tuple(inputs)] = erroneous_state

    def run(self, inputs: Sequence[str]) -> Optional[str]:
        return self._functionality.get(tuple(inputs))

    @property
    def modelled_inputs(self) -> List[Tuple[str, ...]]:
        return sorted(self._functionality)


def functionally_equivalent(
    concrete: ConcreteSystemMachine,
    abstract: AbstractIntrusionMachine,
    input_sequences: Sequence[Sequence[str]],
) -> bool:
    """Fig. 3's equivalence claim, checked over the given inputs.

    For every input sequence, the erroneous state the concrete machine
    lands in must equal the one the abstraction predicts (including
    both predicting "no erroneous state").
    """
    for inputs in input_sequences:
        if concrete.reaches_erroneous_state(inputs) != abstract.run(inputs):
            return False
    return True


def abstract_from_concrete(
    concrete: ConcreteSystemMachine,
    input_sequences: Sequence[Sequence[str]],
) -> AbstractIntrusionMachine:
    """Derive the attacker's abstraction by observing the system —
    the modelling step an analyst performs when defining an IM."""
    abstract = AbstractIntrusionMachine(concrete.initial_state)
    for inputs in input_sequences:
        erroneous = concrete.reaches_erroneous_state(inputs)
        if erroneous is not None:
            abstract.define_abusive_functionality(inputs, erroneous)
    return abstract


def build_figure3_machines() -> Tuple[
    ConcreteSystemMachine, AbstractIntrusionMachine, List[List[str]]
]:
    """The example machines of Fig. 3.

    The concrete machine mirrors the figure: state 1 processes
    instruction set *a* to reach state 2, further instruction sets move
    it along, and the vulnerability-activation transition drops it into
    the erroneous state.  The abstraction maps the whole malicious
    input directly onto that erroneous state.
    """
    concrete = ConcreteSystemMachine(
        initial_state="state-1",
        transitions=[
            Transition("state-1", "instruction-set-a", "state-2"),
            Transition("state-2", "instruction-set-b", "state-3"),
            Transition("state-3", "instruction-set-c", "state-1"),
            Transition(
                "state-3",
                "malicious-input",
                "erroneous-state",
                activates_vulnerability=True,
            ),
        ],
        erroneous_states=["erroneous-state"],
    )
    inputs = [
        ["instruction-set-a", "instruction-set-b", "malicious-input"],
        ["instruction-set-a", "instruction-set-b", "instruction-set-c"],
        ["instruction-set-a"],
    ]
    abstract = abstract_from_concrete(concrete, inputs)
    return concrete, abstract, inputs
