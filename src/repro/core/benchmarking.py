"""A security benchmark for virtualized infrastructures.

The paper's conclusion: "We expect to apply it in assessing the
security attributes of hypervisors and establish a security benchmark
for virtualized infrastructures in the future."  This module is a
first cut of that benchmark: a fixed suite of intrusion models — the
paper's four memory use cases plus the four extension IMs — executed
against a hypervisor configuration, scored by which *security
attribute* each unhandled erroneous state violates.

The score card reports, per attribute (confidentiality, integrity,
availability), how many injected states the system handled, plus an
overall handling rate usable for ranking configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.campaign import Campaign, Mode
from repro.core.injections.extensions import (
    inject_fatal_exception,
    inject_hang_state,
    inject_interrupt_storm,
    inject_read_unauthorized,
)
from repro.core.testbed import TestBed, build_testbed
from repro.exploits import XSA148Priv, XSA182Test, XSA212Crash, XSA212Priv
from repro.xen.versions import XenVersion

#: Security attributes (CIA).
CONFIDENTIALITY = "confidentiality"
INTEGRITY = "integrity"
AVAILABILITY = "availability"


@dataclass(frozen=True)
class BenchmarkItem:
    """One suite entry: an injection plus the attribute it threatens."""

    name: str
    attribute: str
    #: Runs the injection on a testbed; returns (state_injected,
    #: violation_occurred).
    run: Callable[[TestBed], Tuple[bool, bool]]


def _use_case_item(use_case_cls, attribute: str) -> BenchmarkItem:
    def run(bed: TestBed) -> Tuple[bool, bool]:
        # Reuse the campaign machinery on the already-built testbed.
        campaign = Campaign(testbed_factory=lambda _version: bed)
        result = campaign.run(use_case_cls, bed.xen.version, Mode.INJECTION)
        return result.erroneous_state.achieved, result.violation.occurred

    return BenchmarkItem(name=use_case_cls.name, attribute=attribute, run=run)


def _extension_item(name: str, attribute: str, script) -> BenchmarkItem:
    def run(bed: TestBed) -> Tuple[bool, bool]:
        erroneous, violation = script(bed)
        return erroneous.achieved, violation.occurred

    return BenchmarkItem(name=name, attribute=attribute, run=run)


def default_suite() -> List[BenchmarkItem]:
    """The standard eight-IM suite."""
    return [
        _use_case_item(XSA212Crash, AVAILABILITY),
        _use_case_item(XSA212Priv, INTEGRITY),
        _use_case_item(XSA148Priv, CONFIDENTIALITY),
        _use_case_item(XSA182Test, INTEGRITY),
        _extension_item("interrupt-storm", AVAILABILITY, inject_interrupt_storm),
        _extension_item("host-hang", AVAILABILITY, inject_hang_state),
        _extension_item("fatal-exception", AVAILABILITY, inject_fatal_exception),
        _extension_item(
            "read-unauthorized", CONFIDENTIALITY, inject_read_unauthorized
        ),
    ]


@dataclass
class ItemResult:
    name: str
    attribute: str
    injected: bool
    violated: bool

    @property
    def handled(self) -> bool:
        return self.injected and not self.violated


@dataclass
class ScoreCard:
    """Benchmark output for one hypervisor configuration."""

    version: str
    items: List[ItemResult] = field(default_factory=list)

    @property
    def handled(self) -> int:
        return sum(1 for item in self.items if item.handled)

    @property
    def injected(self) -> int:
        return sum(1 for item in self.items if item.injected)

    @property
    def handling_rate(self) -> float:
        return self.handled / self.injected if self.injected else 0.0

    def by_attribute(self) -> Dict[str, Tuple[int, int]]:
        """attribute -> (handled, total injected)."""
        summary: Dict[str, Tuple[int, int]] = {}
        for attribute in (CONFIDENTIALITY, INTEGRITY, AVAILABILITY):
            relevant = [i for i in self.items if i.attribute == attribute]
            summary[attribute] = (
                sum(1 for i in relevant if i.handled),
                sum(1 for i in relevant if i.injected),
            )
        return summary

    def render(self) -> str:
        lines = [
            f"security score card — Xen {self.version}",
            f"{'intrusion model':<20}{'attribute':<17}{'outcome':<12}",
            "-" * 49,
        ]
        for item in self.items:
            if not item.injected:
                outcome = "not injected"
            elif item.handled:
                outcome = "HANDLED"
            else:
                outcome = "violated"
            lines.append(f"{item.name:<20}{item.attribute:<17}{outcome:<12}")
        lines.append("-" * 49)
        for attribute, (handled, total) in self.by_attribute().items():
            lines.append(f"{attribute:<20}handled {handled}/{total}")
        lines.append(
            f"overall handling rate: {self.handling_rate:.0%} "
            f"({self.handled}/{self.injected})"
        )
        return "\n".join(lines)


class SecurityBenchmark:
    """Run the suite against hypervisor configurations and rank them."""

    def __init__(
        self,
        suite: Optional[Sequence[BenchmarkItem]] = None,
        testbed_factory: Callable[[XenVersion], TestBed] = build_testbed,
    ):
        self.suite = list(suite or default_suite())
        self.testbed_factory = testbed_factory

    def score(self, version: XenVersion, runner=None, store=None) -> ScoreCard:
        if runner is not None:
            return self.score_many([version], runner, store=store)[0]
        card = ScoreCard(version=version.name)
        for item in self.suite:
            bed = self.testbed_factory(version)  # fresh host per item
            injected, violated = item.run(bed)
            card.items.append(
                ItemResult(
                    name=item.name,
                    attribute=item.attribute,
                    injected=injected,
                    violated=violated,
                )
            )
        return card

    def score_many(
        self, versions: Sequence[XenVersion], runner, store=None
    ) -> List[ScoreCard]:
        """Score versions through a ``repro.runner``: every (item ×
        version) cell becomes one isolated, parallelizable job.  The
        parallel path resolves suite items by name in the workers via
        :func:`default_suite`, so custom items need the serial path."""
        from repro.runner import plan_benchmark

        if self.testbed_factory is not build_testbed:
            raise ValueError(
                "custom testbed factories cannot cross process boundaries; "
                "use the serial path"
            )
        names = [item.name for item in self.suite]
        known = {item.name for item in default_suite()}
        unknown = [name for name in names if name not in known]
        if unknown:
            raise ValueError(
                f"suite items {unknown} are not default items; custom "
                "closures cannot cross process boundaries — use the "
                "serial path"
            )
        specs = plan_benchmark(names, [v.name for v in versions])
        payloads = runner.run(specs, store=store).payloads_for(specs)
        cards = []
        index = 0
        for version in versions:
            card = ScoreCard(version=version.name)
            for _ in names:
                payload = payloads[index]
                index += 1
                card.items.append(
                    ItemResult(
                        name=payload["name"],
                        attribute=payload["attribute"],
                        injected=payload["injected"],
                        violated=payload["violated"],
                    )
                )
            cards.append(card)
        return cards

    def rank(
        self, versions: Sequence[XenVersion], runner=None, store=None
    ) -> List[ScoreCard]:
        """Score each version; best handling rate first."""
        if runner is not None:
            cards = self.score_many(versions, runner, store=store)
        else:
            cards = [self.score(version) for version in versions]
        return sorted(cards, key=lambda c: c.handling_rate, reverse=True)
