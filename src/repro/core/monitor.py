"""System monitoring and security-violation detection (paper §IV-A).

"As a security violation may happen or not, depending on the capacity
of the system to deal with intrusions, system monitoring is needed to
evaluate how the system behaves in the presence of the erroneous
state."  The paper observes its violations by hand (console crashes,
dropped files, reverse shells, debug prints); this module automates
those observations as composable monitors so campaigns are
reproducible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.xen.constants import ENTRIES_PER_TABLE, PTE_PRESENT, PTE_PSE, PTE_RW
from repro.xen.frames import PageType
from repro.xen.paging import pte_mfn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed


@dataclass
class ViolationReport:
    """Outcome of violation detection for one run."""

    occurred: bool
    kind: Optional[str] = None  # e.g. "hypervisor crash", "privilege escalation"
    evidence: List[str] = field(default_factory=list)
    #: Domain provenance: the canonical name of the domain in which the
    #: violation was *observed* (not where it was injected).  ``None``
    #: for system-wide observables (a hypervisor crash has no single
    #: observation site).  Part of the violation fingerprint: the same
    #: kind seen in the attacker's own domain and seen across a domain
    #: boundary are different observations.
    observed_in: Optional[str] = None

    @classmethod
    def none(cls) -> "ViolationReport":
        return cls(occurred=False)

    def matches(self, other: "ViolationReport") -> bool:
        return (
            self.occurred == other.occurred
            and self.kind == other.kind
            and self.observed_in == other.observed_in
        )


class Monitor(abc.ABC):
    """One observation channel over the testbed."""

    name: str = "monitor"

    @abc.abstractmethod
    def observe(self, bed: "TestBed") -> ViolationReport:
        """Inspect the testbed and report any violation seen."""


class CrashMonitor(Monitor):
    """Watches the Xen console for a panic (availability violation)."""

    name = "hypervisor-crash"

    def observe(self, bed: "TestBed") -> ViolationReport:
        xen = bed.xen
        if not xen.crashed:
            return ViolationReport.none()
        evidence = list(xen.console)[-12:]
        return ViolationReport(
            occurred=True, kind="hypervisor crash", evidence=evidence
        )


class FileDropMonitor(Monitor):
    """Detects the XSA-212-priv observable: a root-owned log file
    appearing in *every* domain's filesystem."""

    name = "file-drop"

    def __init__(self, path: str = "/tmp/injector_log"):
        self.path = path

    def observe(self, bed: "TestBed") -> ViolationReport:
        evidence = []
        domains = [d for d in bed.all_domains() if d.kernel is not None]
        for domain in domains:
            if not domain.kernel.fs.exists(self.path):
                return ViolationReport.none()
            content = domain.kernel.fs.read(self.path, uid=0)
            if "uid=0(root)" not in content:
                return ViolationReport.none()
            evidence.append(f"d{domain.id} ({domain.hostname}): {content}")
        if not domains:
            return ViolationReport.none()
        return ViolationReport(
            occurred=True,
            kind="privilege escalation (all domains)",
            evidence=evidence,
        )


class ReverseShellMonitor(Monitor):
    """Detects the XSA-148-priv observable: the attacker's listener
    received a connection whose shell runs commands as root."""

    name = "reverse-shell"

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    def observe(self, bed: "TestBed") -> ViolationReport:
        listener = bed.network.listener(self.host, self.port)
        if listener is None or not listener.connected:
            return ViolationReport.none()
        connection = listener.latest()
        whoami = connection.run("whoami && hostname")
        if not whoami.startswith("root"):
            return ViolationReport(
                occurred=True,
                kind="remote access (unprivileged)",
                evidence=[f"shell banner: {whoami}"],
            )
        secret = connection.run("cat /root/root_msg")
        return ViolationReport(
            occurred=True,
            kind="remote privilege escalation",
            evidence=[
                f"connection from {connection.from_host} to "
                f"{self.host}:{self.port}",
                f"whoami && hostname -> {whoami!r}",
                f"cat /root/root_msg -> {secret!r}",
            ],
        )


class PageTableIntegrityMonitor(Monitor):
    """Scans domain page tables for states that should never exist:
    guest-writable PSE superpages and writable L4 self-mappings."""

    name = "pagetable-integrity"

    def observe(self, bed: "TestBed") -> ViolationReport:
        xen = bed.xen
        evidence = []
        for domain in bed.all_domains():
            for mfn in domain.p2m:
                if mfn is None:
                    continue
                info = xen.frames.info(mfn)
                if info.type is PageType.L2:
                    evidence.extend(self._scan_l2(xen, domain, mfn))
                elif info.type is PageType.L4:
                    evidence.extend(self._scan_l4(xen, domain, mfn))
        if evidence:
            return ViolationReport(
                occurred=True, kind="page-table corruption", evidence=evidence
            )
        return ViolationReport.none()

    @staticmethod
    def _scan_l2(xen, domain, mfn) -> List[str]:
        hits = []
        for index in range(ENTRIES_PER_TABLE):
            entry = xen.machine.read_word(mfn, index)
            if entry & PTE_PRESENT and entry & PTE_PSE and entry & PTE_RW:
                hits.append(
                    f"d{domain.id} L2 mfn {mfn:#06x}[{index}]: "
                    f"writable PSE superpage -> mfn {pte_mfn(entry):#06x}"
                )
        return hits

    @staticmethod
    def _scan_l4(xen, domain, mfn) -> List[str]:
        hits = []
        for index in range(ENTRIES_PER_TABLE):
            entry = xen.machine.read_word(mfn, index)
            if (
                entry & PTE_PRESENT
                and entry & PTE_RW
                and pte_mfn(entry) == mfn
            ):
                hits.append(
                    f"d{domain.id} L4 mfn {mfn:#06x}[{index}]: "
                    "writable self-mapping"
                )
        return hits


class IdtIntegrityMonitor(Monitor):
    """Verifies every IDT gate still decodes as valid."""

    name = "idt-integrity"

    def observe(self, bed: "TestBed") -> ViolationReport:
        xen = bed.xen
        evidence = []
        for cpu in range(xen.num_pcpus):
            idt = xen.idt(cpu)
            for vector in range(256):
                if not idt.is_valid(vector):
                    evidence.append(f"cpu{cpu} vector {vector}: corrupt gate")
        if evidence:
            return ViolationReport(
                occurred=True, kind="IDT corruption", evidence=evidence
            )
        return ViolationReport.none()


class HangMonitor(Monitor):
    """Detects host hang states via scheduler starvation accounting
    (the "Induce a Hang State" abusive functionality)."""

    name = "hang"

    def __init__(self, starvation_threshold: int = 5):
        self.starvation_threshold = starvation_threshold

    def observe(self, bed: "TestBed") -> ViolationReport:
        scheduler = bed.xen.scheduler
        if not scheduler.is_hung(self.starvation_threshold):
            return ViolationReport.none()
        evidence = [
            f"cpu{p.cpu_id}: spinning={p.spinning}, "
            f"starved for {p.starved_ticks} ticks"
            for p in scheduler.hung_pcpus
        ]
        return ViolationReport(
            occurred=True, kind="availability violation (host hang)",
            evidence=evidence,
        )


class InterruptStormMonitor(Monitor):
    """Detects interrupt floods against a victim domain (the
    "Uncontrolled Arbitrary Interrupts Requests" functionality)."""

    name = "interrupt-storm"

    def __init__(self, victim_id: int, threshold: int = 64):
        self.victim_id = victim_id
        self.threshold = threshold

    def observe(self, bed: "TestBed") -> ViolationReport:
        victim = bed.xen.domains.get(self.victim_id)
        if victim is None or victim.kernel is None:
            return ViolationReport.none()
        received = len(victim.kernel.events_received)
        if received < self.threshold:
            return ViolationReport.none()
        return ViolationReport(
            occurred=True,
            kind="availability degradation (interrupt storm)",
            evidence=[
                f"d{victim.id} received {received} notifications "
                f"(threshold {self.threshold})"
            ],
            observed_in=victim.name,
        )


class ConfidentialityMonitor(Monitor):
    """Detects exfiltration of the victim's in-memory secret canary
    (seeded into dom0 in the paper topology)."""

    name = "confidentiality"

    def observe(self, bed: "TestBed") -> ViolationReport:
        from repro.core.testbed import SECRET_CANARY

        victim = bed.victim_domain
        for domain in bed.all_domains():
            if domain.kernel is None or domain.name == victim.name:
                continue
            if SECRET_CANARY in domain.kernel.loot:
                return ViolationReport(
                    occurred=True,
                    kind="confidentiality violation (secret exfiltrated)",
                    evidence=[
                        f"d{domain.id} ({domain.name}) exfiltrated the "
                        f"{victim.name} canary {SECRET_CANARY:#x}"
                    ],
                    observed_in=domain.name,
                )
        return ViolationReport.none()


class ForeignMappingMonitor(Monitor):
    """Victim-side detection of the *Keep Page Access* violation: a
    live page-table entry in some other domain maps a victim-owned
    frame that the victim never granted out.  The observation site is
    the victim — the cross-domain counterpart of the attacker-side
    confidentiality monitor."""

    name = "foreign-mapping"

    def observe(self, bed: "TestBed") -> ViolationReport:
        from repro.xen.granttable import GTF_PERMIT_ACCESS

        xen = bed.xen
        victim = bed.victim_domain
        granted = set()
        table = xen.grants.tables.get(victim.id)
        if table is not None:
            for entry in table.entries:
                if entry.flags & GTF_PERMIT_ACCESS:
                    granted.add(victim.pfn_to_mfn(entry.pfn))
        victim_frames = {
            mfn for mfn in victim.p2m if mfn is not None
        } - granted
        evidence = []
        for domain in bed.all_domains():
            if domain.id == victim.id or domain.kernel is None:
                continue
            for mfn in domain.p2m:
                if mfn is None:
                    continue
                if xen.frames.info(mfn).type is not PageType.L1:
                    continue
                for index in range(ENTRIES_PER_TABLE):
                    entry = xen.machine.read_word(mfn, index)
                    if entry & PTE_PRESENT and pte_mfn(entry) in victim_frames:
                        evidence.append(
                            f"d{domain.id} ({domain.name}) L1 mfn "
                            f"{mfn:#06x}[{index}] maps {victim.name} frame "
                            f"{pte_mfn(entry):#06x} without a grant"
                        )
        if not evidence:
            return ViolationReport.none()
        return ViolationReport(
            occurred=True,
            kind="isolation violation (ungranted foreign mapping)",
            evidence=evidence,
            observed_in=victim.name,
        )


class StrayEventMonitor(Monitor):
    """Detects event notifications delivered to a domain on ports it
    never bound — the footprint of a misrouted interdomain channel.
    Observed in the domain that received the stray upcalls (the
    topology's observer by default)."""

    name = "stray-event"

    def __init__(self, threshold: int = 1):
        self.threshold = threshold

    def observe(self, bed: "TestBed") -> ViolationReport:
        from repro.errors import HypercallError

        observer = bed.observer_domain
        if observer.kernel is None:
            return ViolationReport.none()
        stray = []
        for port in observer.kernel.events_received:
            try:
                bed.xen.events.channel(observer.id, port)
            except HypercallError:
                stray.append(port)
        if len(stray) < self.threshold:
            return ViolationReport.none()
        return ViolationReport(
            occurred=True,
            kind="cross-domain signal misdelivery",
            evidence=[
                f"d{observer.id} ({observer.name}) received {len(stray)} "
                f"notifications on unbound ports {sorted(set(stray))}"
            ],
            observed_in=observer.name,
        )


class RingTamperMonitor(Monitor):
    """Peer-side detection of shared-ring tampering: the block backend
    survived a malformed producer index (clamps) or returned error
    responses, while the frontend's IO was corrupted.  Observed in the
    backend's domain — the peer across the ring, not the attacker and
    not the frontend."""

    name = "ring-tamper"

    def __init__(self, backend, frontend_id: int, io_failure: Optional[str] = None):
        self.backend = backend
        self.frontend_id = frontend_id
        self.io_failure = io_failure

    def observe(self, bed: "TestBed") -> ViolationReport:
        connection = self.backend.connections.get(self.frontend_id)
        if connection is None:
            return ViolationReport.none()
        tampered = connection.clamps > 0 or connection.errors_returned > 0
        if not tampered and self.io_failure is None:
            return ViolationReport.none()
        backend_domain = self.backend.kernel.domain
        evidence = [
            f"d{backend_domain.id} ({backend_domain.name}) backend: "
            f"{connection.clamps} clamps, "
            f"{connection.errors_returned} error responses for "
            f"d{self.frontend_id}"
        ]
        evidence.extend(
            line for line in self.backend.log if "clamped" in line
        )
        if self.io_failure is not None:
            evidence.append(f"frontend IO failed: {self.io_failure}")
        return ViolationReport(
            occurred=True,
            kind="integrity violation (shared ring tampered)",
            evidence=evidence,
            observed_in=backend_domain.name,
        )


def recovery_violation(
    recovery, base: Optional[ViolationReport] = None
) -> ViolationReport:
    """Qualify a crash with its recovery outcome class.

    A run that crashed and then microrebooted (``--recover``) is not
    the same observation as a plain ``hypervisor crash``: the paper's
    question is whether the system *handles* the erroneous state, and
    a recovered crash is a distinct answer.  The returned report keeps
    ``occurred=True`` — availability was still violated, however
    briefly — but the kind carries the outcome class
    (``crash-then-recovered`` / ``crash-then-degraded`` /
    ``crash-unrecoverable``) and the evidence trail of the microreboot.
    Any violation the monitors saw *after* recovery (``base``) is
    folded into the evidence rather than lost.
    """
    evidence: List[str] = []
    if recovery.crash_banner:
        evidence.append(f"crash banner: {recovery.crash_banner}")
    evidence.extend(recovery.evidence)
    if base is not None and base.occurred:
        evidence.append(f"post-recovery violation: {base.kind}")
        evidence.extend(base.evidence)
    return ViolationReport(
        occurred=True,
        kind=f"hypervisor crash ({recovery.outcome_class})",
        evidence=evidence,
    )


class CompositeMonitor(Monitor):
    """Run several monitors; report the first violation found (in
    registration order, so put the most specific monitor first)."""

    name = "composite"

    def __init__(self, monitors: List[Monitor]):
        self.monitors = monitors

    def observe(self, bed: "TestBed") -> ViolationReport:
        for monitor in self.monitors:
            report = monitor.observe(bed)
            if report.occurred:
                return report
        return ViolationReport.none()

    def observe_all(self, bed: "TestBed") -> Dict[str, ViolationReport]:
        return {monitor.name: monitor.observe(bed) for monitor in self.monitors}
