"""The abusive-functionality taxonomy (paper §IV-D, Table I).

An *abusive functionality* is "the essential characteristic that can be
generalized from a collection of exploits": the advantage an adversary
gains from activating a vulnerability, abstracted away from the
specific bug.  The paper's preliminary study over 100 memory-related
Xen CVEs yields four classes and sixteen functionalities, reproduced
here verbatim.
"""

from __future__ import annotations

import enum
from typing import Dict, List


class FunctionalityClass(enum.Enum):
    """Primary-goal grouping of abusive functionalities (Table I)."""

    MEMORY_ACCESS = "Memory Access"
    MEMORY_MANAGEMENT = "Memory Management"
    EXCEPTIONAL_CONDITIONS = "Exceptional Conditions"
    NON_MEMORY = "Non-Memory Related"


class AbusiveFunctionality(enum.Enum):
    """The sixteen abusive functionalities of Table I.

    Each member carries its printable label and its class.
    """

    READ_UNAUTHORIZED_MEMORY = (
        "Read Unauthorized Memory",
        FunctionalityClass.MEMORY_ACCESS,
    )
    WRITE_UNAUTHORIZED_MEMORY = (
        "Write Unauthorized Memory",
        FunctionalityClass.MEMORY_ACCESS,
    )
    WRITE_UNAUTHORIZED_ARBITRARY_MEMORY = (
        "Write Unauthorized Arbitrary Memory",
        FunctionalityClass.MEMORY_ACCESS,
    )
    RW_UNAUTHORIZED_MEMORY = (
        "R/W Unauthorized Memory",
        FunctionalityClass.MEMORY_ACCESS,
    )
    FAIL_A_MEMORY_ACCESS = (
        "Fail a Memory Access",
        FunctionalityClass.MEMORY_ACCESS,
    )
    CORRUPT_VIRTUAL_MEMORY_MAPPING = (
        "Corrupt Virtual Memory Mapping",
        FunctionalityClass.MEMORY_MANAGEMENT,
    )
    CORRUPT_A_PAGE_REFERENCE = (
        "Corrupt a Page Reference",
        FunctionalityClass.MEMORY_MANAGEMENT,
    )
    DECREASE_PAGE_MAPPING_AVAILABILITY = (
        "Decrease Page Mapping Availability",
        FunctionalityClass.MEMORY_MANAGEMENT,
    )
    GUEST_WRITABLE_PAGE_TABLE_ENTRY = (
        "Guest-Writable Page Table Entry",
        FunctionalityClass.MEMORY_MANAGEMENT,
    )
    FAIL_A_MEMORY_MAPPING = (
        "Fail a memory mapping",
        FunctionalityClass.MEMORY_MANAGEMENT,
    )
    UNCONTROLLED_MEMORY_ALLOCATION = (
        "Uncontrolled Memory Allocation",
        FunctionalityClass.MEMORY_MANAGEMENT,
    )
    KEEP_PAGE_ACCESS = (
        "Keep Page Access",
        FunctionalityClass.MEMORY_MANAGEMENT,
    )
    INDUCE_A_FATAL_EXCEPTION = (
        "Induce a Fatal Exception",
        FunctionalityClass.EXCEPTIONAL_CONDITIONS,
    )
    INDUCE_A_MEMORY_EXCEPTION = (
        "Induce a Memory Exception",
        FunctionalityClass.EXCEPTIONAL_CONDITIONS,
    )
    INDUCE_A_HANG_STATE = (
        "Induce a Hang State",
        FunctionalityClass.NON_MEMORY,
    )
    UNCONTROLLED_ARBITRARY_INTERRUPT_REQUESTS = (
        "Uncontrolled Arbitrary Interrupts Requests",
        FunctionalityClass.NON_MEMORY,
    )

    def __init__(self, label: str, functionality_class: FunctionalityClass):
        self.label = label
        self.functionality_class = functionality_class

    @classmethod
    def by_class(cls) -> Dict[FunctionalityClass, List["AbusiveFunctionality"]]:
        """Table I's row grouping, in declaration (= paper) order."""
        grouped: Dict[FunctionalityClass, List[AbusiveFunctionality]] = {
            klass: [] for klass in FunctionalityClass
        }
        for functionality in cls:
            grouped[functionality.functionality_class].append(functionality)
        return grouped


#: Shorthand used throughout the use-case definitions.  The paper's
#: Table II labels the XSA-212 functionality "Write Arbitrary Memory"
#: and the XSA-148/182 functionality "Write Page Table Entries"; these
#: map onto the Table I taxonomy as follows.
TABLE_II_LABELS = {
    AbusiveFunctionality.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY: "Write Arbitrary Memory",
    AbusiveFunctionality.GUEST_WRITABLE_PAGE_TABLE_ENTRY: "Write Page Table Entries",
}


def table_ii_label(functionality: AbusiveFunctionality) -> str:
    """Render a functionality the way Table II abbreviates it."""
    return TABLE_II_LABELS.get(functionality, functionality.label)
