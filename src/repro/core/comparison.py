"""Exploit-vs-injection comparison (paper Fig. 4).

The experimental validation strategy compares, on the same version,
the security violation and the erroneous state observed when attacking
the real vulnerability against those observed when injecting with the
prototype: "If the violations and erroneous states observed are the
same, it means that we could emulate effects caused by real
intrusions."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.campaign import RunResult


@dataclass
class EquivalenceVerdict:
    """Outcome of comparing one exploit run with one injection run."""

    use_case: str
    version: str
    same_erroneous_state: bool
    same_violation: bool
    notes: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return self.same_erroneous_state and self.same_violation

    def render(self) -> str:
        status = "EQUIVALENT" if self.equivalent else "DIFFERENT"
        return (
            f"{self.use_case} on Xen {self.version}: {status} "
            f"(erroneous state: {'same' if self.same_erroneous_state else 'differs'}, "
            f"violation: {'same' if self.same_violation else 'differs'})"
        )


def compare_runs(exploit: RunResult, injection: RunResult) -> EquivalenceVerdict:
    """Compare an exploit run against its injection twin."""
    if exploit.use_case != injection.use_case:
        raise ValueError("comparing different use cases")
    if exploit.version != injection.version:
        raise ValueError("comparing different versions")

    same_state = exploit.erroneous_state.matches(injection.erroneous_state)
    same_violation = exploit.violation.matches(injection.violation)

    notes = []
    if not same_state:
        notes.append(
            "fingerprints differ: "
            f"exploit={exploit.erroneous_state.fingerprint} "
            f"injection={injection.erroneous_state.fingerprint}"
        )
    if not same_violation:
        notes.append(
            f"violations differ: exploit={exploit.violation.kind} "
            f"injection={injection.violation.kind}"
        )
    return EquivalenceVerdict(
        use_case=exploit.use_case,
        version=exploit.version,
        same_erroneous_state=same_state,
        same_violation=same_violation,
        notes=notes,
    )
