"""Scenario topology: who attacks, who is attacked, who watches.

The paper's testbed fixes one shape — the adversary drives the last
unprivileged guest (``guest03``) and the interesting state lives in
dom0.  That shape used to be hardwired in every layer; this module
turns it into an explicit value object so campaigns can vary it:
cross-domain scenarios inject erroneous state in one domU and observe
the security violation in *another* ("Breaking Isolation"), and the
harness-VM layout itself becomes a campaign parameter (NecoFuzz).

A :class:`ScenarioTopology` is canonical-JSON-serializable and
content-hashed, which makes it part of job identity: two campaigns
over different topologies are different experiments with different
job IDs, while the default (paper) topology hashes to the empty spec
value so every pre-topology job ID, store fingerprint and trace byte
is preserved.

The only sanctioned way to reach positional guests is through the
role accessors here and on ``TestBed`` — staticcheck rule R9 flags
new direct ``guests[<index>]`` subscripts elsewhere.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

#: Upper bound on unprivileged guests per testbed — keeps accidental
#: plan typos ("guests": 5000) from booting absurd machines.
MAX_GUESTS = 8

#: Nesting tags reserved for the L0/L1 roadmap item.  ``None`` means
#: a flat (single-level) testbed; ``"l1"`` will mark topologies whose
#: hypervisor itself runs as a guest of an outer simulator.
NESTING_TAGS = ("l1",)

_FIELDS = ("num_guests", "attacker", "victim", "observer", "nesting")


class TopologyError(ValueError):
    """An invalid or unknown scenario-topology description."""


def guest_name(index: int) -> str:
    """Canonical name of the ``index``-th guest (guest02, guest03, ...)."""
    return f"guest{index + 2:02d}"


@dataclass(frozen=True)
class ScenarioTopology:
    """One testbed shape: domain count plus the three scenario roles.

    Domains are identified by their canonical boot names (``dom0``,
    ``guest02`` ... ``guest{N+1:02d}``); privileges follow from the
    name — dom0 is the control domain, guests are unprivileged.  The
    attacker must be a guest (the paper's threat model) and must
    differ from the victim, whose memory holds the secret canary and
    whose hypervisor-shared state the erroneous state targets.  The
    observer names the domain where monitors look for cross-domain
    observables by default.
    """

    num_guests: int = 2
    attacker: str = "guest03"
    victim: str = "dom0"
    observer: str = "dom0"
    nesting: Optional[str] = None

    def __post_init__(self):
        if not isinstance(self.num_guests, int) or isinstance(self.num_guests, bool):
            raise TopologyError("num_guests must be an integer")
        if not 1 <= self.num_guests <= MAX_GUESTS:
            raise TopologyError(
                f"num_guests must be between 1 and {MAX_GUESTS}, "
                f"got {self.num_guests}"
            )
        names = self.domain_names
        for role in ("attacker", "victim", "observer"):
            value = getattr(self, role)
            if not isinstance(value, str):
                raise TopologyError(f"{role} must be a domain name string")
            if value not in names:
                raise TopologyError(
                    f"{role} {value!r} is not one of this topology's "
                    f"domains {list(names)}"
                )
        if self.attacker == "dom0":
            raise TopologyError("the attacker must be an unprivileged guest")
        if self.attacker == self.victim:
            raise TopologyError("attacker and victim must be distinct domains")
        if self.nesting is not None and self.nesting not in NESTING_TAGS:
            raise TopologyError(
                f"unknown nesting tag {self.nesting!r}; known: {NESTING_TAGS}"
            )

    # ------------------------------------------------------------------
    # Derived shape
    # ------------------------------------------------------------------

    @property
    def domain_names(self) -> Tuple[str, ...]:
        return ("dom0", *(guest_name(i) for i in range(self.num_guests)))

    @property
    def privileges(self) -> Dict[str, bool]:
        """Domain name → privileged? (dom0 is the only control domain)."""
        return {name: name == "dom0" for name in self.domain_names}

    def roles_of(self, name: str) -> Tuple[str, ...]:
        """The scenario roles a domain plays (possibly several)."""
        return tuple(
            role
            for role in ("attacker", "victim", "observer")
            if getattr(self, role) == name
        )

    @classmethod
    def paper_default(cls, num_guests: int = 2) -> "ScenarioTopology":
        """The paper's shape at a given guest count: the adversary in
        the last-booted guest, the victim state in dom0."""
        if not isinstance(num_guests, int) or num_guests < 1:
            raise TopologyError("num_guests must be a positive integer")
        return cls(
            num_guests=num_guests,
            attacker=guest_name(num_guests - 1),
            victim="dom0",
            observer="dom0",
        )

    # ------------------------------------------------------------------
    # Canonical serialization & identity
    # ------------------------------------------------------------------

    def canonical_dict(self) -> Dict[str, object]:
        return {
            "num_guests": self.num_guests,
            "attacker": self.attacker,
            "victim": self.victim,
            "observer": self.observer,
            "nesting": self.nesting,
        }

    def canonical_json(self) -> str:
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    @property
    def topology_hash(self) -> str:
        """Short content hash — the identity that folds into job IDs,
        trace filenames and benchmark labels."""
        return hashlib.sha1(self.canonical_json().encode()).hexdigest()[:12]

    @property
    def is_default(self) -> bool:
        return self == DEFAULT_TOPOLOGY

    def describe(self) -> str:
        tag = f", nesting={self.nesting}" if self.nesting else ""
        return (
            f"{self.num_guests} guests, attacker={self.attacker}, "
            f"victim={self.victim}, observer={self.observer}{tag}"
        )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioTopology":
        """Build from a plan/JSON mapping, rejecting unknown fields.

        The strictness is deliberate: a typoed ``"attakcer"`` silently
        falling back to the default topology would run the wrong
        experiment, so unknown keys raise :class:`TopologyError`
        (which the service maps to a typed HTTP 400).
        """
        if not isinstance(data, Mapping):
            raise TopologyError("topology must be a JSON object")
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise TopologyError(
                f"unknown topology field(s) {unknown}; known: {list(_FIELDS)}"
            )
        merged = dict(DEFAULT_TOPOLOGY.canonical_dict())
        merged.update(data)
        return cls(**merged)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "ScenarioTopology":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TopologyError(f"topology is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # JobSpec encoding
    # ------------------------------------------------------------------

    def spec_value(self) -> str:
        """The ``JobSpec.topology`` field encoding.

        The default topology encodes as the empty string, which the
        job-ID hash drops entirely — that is the compatibility rule
        keeping every pre-topology job ID and resumable store valid.
        """
        return "" if self.is_default else self.canonical_json()

    @classmethod
    def from_spec_value(cls, value: str) -> "ScenarioTopology":
        if not value:
            return DEFAULT_TOPOLOGY
        return cls.from_json(value)


#: The paper's testbed shape (§VI-C): dom0 plus two unprivileged
#: guests, the adversary driving ``guest03``, victim state in dom0.
DEFAULT_TOPOLOGY = ScenarioTopology()

#: The stock cross-domain shape used by ``repro campaign
#: --cross-domain`` and the cross-domain benchmark: three guests,
#: the attacker in the last one, erroneous state injected into
#: ``guest02``'s hypervisor-shared structures, and the violation
#: observed from ``guest03`` — inject-in-A, observe-in-B.
CROSS_DOMAIN_TOPOLOGY = ScenarioTopology(
    num_guests=3, attacker="guest04", victim="guest02", observer="guest03"
)
