"""The experimental testbed (paper §VI-C's environment).

One testbed = one freshly booted machine: the hypervisor at a chosen
version, the control domain (hostname ``xen3``, holding the
confidential ``/root/root_msg``), two unprivileged guests (the
attacker drives ``guest03``), the simulated network with the
attacker's external host ``xen2``, and — unless disabled — the
intrusion injector built into the hypercall table.

"The build and experimental environment are kept the same during all
process to restrict the differences in the run-time evaluation" — the
only parameter that varies across campaign runs is the Xen version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.injector import install_injector
from repro.core.topology import DEFAULT_TOPOLOGY, ScenarioTopology
from repro.guest.kernel import GuestKernel
from repro.net import Network
from repro.xen.domain import Domain
from repro.xen.hypervisor import Xen
from repro.xen.machine import Machine
from repro.xen.versions import XenVersion

#: The attacker's external machine and listening port (paper §VI-C.3:
#: ``nc -l -vvv -p 1234`` on host ``xen2``).
ATTACKER_HOST = "xen2"
ATTACKER_PORT = 1234

#: The secret the reverse-shell transcript reads from dom0.
ROOT_MSG_PATH = "/root/root_msg"
ROOT_MSG_CONTENT = "Confidential content in root folder!"

#: An in-memory secret seeded into dom0 (kernel page 6, word 0).  The
#: confidentiality monitor flags any guest that exfiltrates it.
SECRET_CANARY = 0x5EC2_E7CA_0A21_B175
SECRET_PFN = 6
SECRET_WORD = 0


@dataclass
class TestBed:
    """Everything one experiment run touches."""

    # Not a pytest test class, despite the name (pytest looks at Test*).
    __test__ = False

    xen: Xen
    dom0: Domain
    guests: List[Domain]
    network: Network
    attacker_host: str = ATTACKER_HOST
    attacker_port: int = ATTACKER_PORT
    #: The scenario shape this testbed was booted for.  Role accessors
    #: (:attr:`attacker_domain`, :attr:`victim_domain`,
    #: :attr:`observer_domain`) resolve through it — never index
    #: ``guests`` positionally (staticcheck R9).
    topology: ScenarioTopology = field(default=DEFAULT_TOPOLOGY)

    def domain_by_name(self, name: str) -> Domain:
        """Resolve a topology domain name against the booted domains."""
        for domain in self.all_domains():
            if domain.name == name:
                return domain
        raise KeyError(
            f"no domain named {name!r} in this testbed "
            f"(topology: {self.topology.describe()})"
        )

    @property
    def attacker_domain(self) -> Domain:
        """The guest the adversary controls.

        Deprecation shim for the pre-topology accessor: delegates to
        ``topology.attacker`` (``guest03`` in the paper default)
        instead of the historical hardwired last-guest index.
        """
        return self.domain_by_name(self.topology.attacker)

    @property
    def victim_domain(self) -> Domain:
        """The domain whose state the erroneous state targets and
        whose memory holds the secret canary (dom0 in the default)."""
        return self.domain_by_name(self.topology.victim)

    @property
    def observer_domain(self) -> Domain:
        """Where cross-domain monitors look by default."""
        return self.domain_by_name(self.topology.observer)

    @property
    def victim_guest(self) -> Domain:
        """The unprivileged guest that takes guest-directed abuse
        (interrupt storms).  The victim itself when it is a guest,
        otherwise the first guest that is not the attacker — which is
        ``guests[0]`` in the paper default, preserving the historical
        target of the storm extension."""
        victim = self.victim_domain
        if not victim.is_privileged:
            return victim
        for guest in self.guests:
            if guest.name != self.topology.attacker:
                return guest
        return victim

    @property
    def probes(self):
        """This testbed's :class:`~repro.probes.bus.ProbeBus` — the
        single interception surface observers subscribe to."""
        return self.xen.probes

    def all_domains(self) -> List[Domain]:
        return [self.dom0, *self.guests]

    def tick(self, rounds: int = 1) -> None:
        """Let the system run: the scheduler advances and every live
        domain schedules its user processes (vDSO calls happen here).
        No-op after a crash."""
        if self.xen.crashed:
            return
        for _ in range(rounds):
            self.xen.scheduler.tick()
            for domain in self.all_domains():
                if domain.kernel is not None and not domain.dead:
                    domain.kernel.run_user_work()


def build_testbed(
    version: XenVersion,
    enable_injector: bool = True,
    num_guests: int = 2,
    pages_per_domain: int = 48,
    machine_frames: int = 2048,
    topology: Optional[ScenarioTopology] = None,
) -> TestBed:
    """Boot a fresh, fully populated testbed.

    With no explicit ``topology`` the paper shape at ``num_guests`` is
    assumed (adversary in the last guest, victim state in dom0) —
    byte-identical to the pre-topology boot.  An explicit topology
    overrides ``num_guests`` and decides which domain receives the
    secret canary: the victim's kernel page 6 (dom0 keeps its copy
    either way, since it remains the control domain holding
    ``/root/root_msg``).
    """
    if topology is None:
        topology = (
            DEFAULT_TOPOLOGY
            if num_guests == 2
            else ScenarioTopology.paper_default(num_guests)
        )
    else:
        num_guests = topology.num_guests

    machine = Machine(machine_frames)
    xen = Xen(version, machine)
    if enable_injector:
        install_injector(xen)

    dom0 = xen.create_domain(
        "dom0", num_pages=pages_per_domain, is_privileged=True, hostname="xen3"
    )
    GuestKernel(xen, dom0).boot()
    dom0.kernel.fs.write(ROOT_MSG_PATH, ROOT_MSG_CONTENT, uid=0)
    machine.write_word(dom0.pfn_to_mfn(SECRET_PFN), SECRET_WORD, SECRET_CANARY)

    guests: List[Domain] = []
    for i in range(num_guests):
        name = f"guest{i + 2:02d}"  # guest02, guest03, ...
        guest = xen.create_domain(
            name, num_pages=pages_per_domain, is_privileged=False, hostname=name
        )
        GuestKernel(xen, guest).boot()
        guests.append(guest)

    bed = TestBed(
        xen=xen, dom0=dom0, guests=guests, network=Network(), topology=topology
    )
    if topology.victim != "dom0":
        victim = bed.victim_domain
        machine.write_word(
            victim.pfn_to_mfn(SECRET_PFN), SECRET_WORD, SECRET_CANARY
        )
    return bed
