"""The experimental testbed (paper §VI-C's environment).

One testbed = one freshly booted machine: the hypervisor at a chosen
version, the control domain (hostname ``xen3``, holding the
confidential ``/root/root_msg``), two unprivileged guests (the
attacker drives ``guest03``), the simulated network with the
attacker's external host ``xen2``, and — unless disabled — the
intrusion injector built into the hypercall table.

"The build and experimental environment are kept the same during all
process to restrict the differences in the run-time evaluation" — the
only parameter that varies across campaign runs is the Xen version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.injector import install_injector
from repro.guest.kernel import GuestKernel
from repro.net import Network
from repro.xen.domain import Domain
from repro.xen.hypervisor import Xen
from repro.xen.machine import Machine
from repro.xen.versions import XenVersion

#: The attacker's external machine and listening port (paper §VI-C.3:
#: ``nc -l -vvv -p 1234`` on host ``xen2``).
ATTACKER_HOST = "xen2"
ATTACKER_PORT = 1234

#: The secret the reverse-shell transcript reads from dom0.
ROOT_MSG_PATH = "/root/root_msg"
ROOT_MSG_CONTENT = "Confidential content in root folder!"

#: An in-memory secret seeded into dom0 (kernel page 6, word 0).  The
#: confidentiality monitor flags any guest that exfiltrates it.
SECRET_CANARY = 0x5EC2_E7CA_0A21_B175
SECRET_PFN = 6
SECRET_WORD = 0


@dataclass
class TestBed:
    """Everything one experiment run touches."""

    # Not a pytest test class, despite the name (pytest looks at Test*).
    __test__ = False

    xen: Xen
    dom0: Domain
    guests: List[Domain]
    network: Network
    attacker_host: str = ATTACKER_HOST
    attacker_port: int = ATTACKER_PORT

    @property
    def attacker_domain(self) -> Domain:
        """The guest the adversary controls (``guest03``)."""
        return self.guests[-1]

    @property
    def probes(self):
        """This testbed's :class:`~repro.probes.bus.ProbeBus` — the
        single interception surface observers subscribe to."""
        return self.xen.probes

    def all_domains(self) -> List[Domain]:
        return [self.dom0, *self.guests]

    def tick(self, rounds: int = 1) -> None:
        """Let the system run: the scheduler advances and every live
        domain schedules its user processes (vDSO calls happen here).
        No-op after a crash."""
        if self.xen.crashed:
            return
        for _ in range(rounds):
            self.xen.scheduler.tick()
            for domain in self.all_domains():
                if domain.kernel is not None and not domain.dead:
                    domain.kernel.run_user_work()


def build_testbed(
    version: XenVersion,
    enable_injector: bool = True,
    num_guests: int = 2,
    pages_per_domain: int = 48,
    machine_frames: int = 2048,
) -> TestBed:
    """Boot a fresh, fully populated testbed."""
    machine = Machine(machine_frames)
    xen = Xen(version, machine)
    if enable_injector:
        install_injector(xen)

    dom0 = xen.create_domain(
        "dom0", num_pages=pages_per_domain, is_privileged=True, hostname="xen3"
    )
    GuestKernel(xen, dom0).boot()
    dom0.kernel.fs.write(ROOT_MSG_PATH, ROOT_MSG_CONTENT, uid=0)
    machine.write_word(dom0.pfn_to_mfn(SECRET_PFN), SECRET_WORD, SECRET_CANARY)

    guests: List[Domain] = []
    for i in range(num_guests):
        name = f"guest{i + 2:02d}"  # guest02, guest03, ...
        guest = xen.create_domain(
            name, num_pages=pages_per_domain, is_privileged=False, hostname=name
        )
        GuestKernel(xen, guest).boot()
        guests.append(guest)

    network = Network()
    return TestBed(xen=xen, dom0=dom0, guests=guests, network=network)
