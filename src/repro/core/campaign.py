"""The experiment campaign runner (paper Fig. 4 and §VI–§VIII).

A campaign runs use cases against freshly booted testbeds:

* ``Mode.EXPLOIT`` replays the third-party PoC's attack strategy;
* ``Mode.INJECTION`` injects the same erroneous state through the
  ``arbitrary_access`` injector and replays the post-state steps.

Each run yields a :class:`RunResult` with the erroneous-state audit,
the security-violation report, and the captured logs.  Helper methods
produce the full matrices behind the paper's research questions:
RQ1 (exploit vs injection on the vulnerable version), RQ2 (erroneous
states on fixed versions), RQ3 (violations across versions,
Table III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from typing import TYPE_CHECKING

from repro.core.erroneous_state import ErroneousStateReport
from repro.core.monitor import ViolationReport, recovery_violation
from repro.core.testbed import TestBed, build_testbed
from repro.core.topology import DEFAULT_TOPOLOGY, ScenarioTopology
from repro.errors import HypervisorCrash
from repro.exploits.base import ExploitFailed, UseCase
from repro.guest.kernel import KernelOops
from repro.xen.versions import XenVersion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.recovery import RecoveryReport


class Mode(enum.Enum):
    """How the erroneous state is induced."""

    EXPLOIT = "exploit"
    INJECTION = "injection"


@dataclass
class RunResult:
    """Everything observed in one (use case × version × mode) run."""

    use_case: str
    version: str
    mode: Mode
    erroneous_state: ErroneousStateReport
    violation: ViolationReport
    crashed: bool
    #: How the run ended early, if it did ("kernel exception: ...",
    #: "exploit failed: ...").  ``None`` when the script ran to its end
    #: or the run ended in a hypervisor crash (which is an outcome, not
    #: a failure).
    failure: Optional[str] = None
    console: List[str] = field(default_factory=list)
    guest_log: List[str] = field(default_factory=list)
    #: Microreboot report when the run crashed under ``--recover``;
    #: ``None`` for runs without recovery (including non-crashing
    #: ``--recover`` runs, which never trigger the watchdog).
    recovery: Optional["RecoveryReport"] = None
    #: Trace artefact summary (``{"file", "ops", "final_digest"}``)
    #: when the run was recorded and the trace was kept; ``None``
    #: otherwise.  The file name is a bare basename — artefacts live
    #: in the campaign's ``trace_dir``.
    trace: Optional[dict] = None
    #: Per-trial metrics (``{"counters": {...}, "timings": {...}}``)
    #: when the run was collected with ``collect_metrics`` /
    #: ``--metrics``; ``None`` otherwise.  Only the deterministic
    #: ``counters`` half survives serialization (see
    #: ``repro.analysis.report.result_to_dict``).
    metrics: Optional[dict] = None
    #: Canonical JSON of the scenario topology when the run used a
    #: non-default one; ``None`` for the paper topology (keeping
    #: default payload bytes identical to pre-topology stores).
    topology: Optional[str] = None

    @property
    def summary(self) -> str:
        err = "err-state:YES" if self.erroneous_state.achieved else "err-state:no"
        if self.violation.occurred:
            vio = f"violation:YES ({self.violation.kind})"
        else:
            vio = "violation:no (handled)"
        line = f"[{self.use_case} on Xen {self.version} / {self.mode.value}] {err}, {vio}"
        if self.recovery is not None:
            line += f", recovery:{self.recovery.outcome}"
        return line


class Campaign:
    """Runs use cases against versions and collects the matrices."""

    def __init__(
        self,
        testbed_factory: Callable[[XenVersion], TestBed] = build_testbed,
        settle_rounds: int = 2,
        recover: bool = False,
        max_reboots: int = 1,
        trace_dir: Optional[str] = None,
        trace_keep: str = "failures",
        collect_metrics: bool = False,
        topology: Optional[ScenarioTopology] = None,
    ):
        self.testbed_factory = testbed_factory
        #: The scenario topology every run boots (attacker / victim /
        #: observer roles).  Defaults to the paper shape; part of job
        #: identity on the parallel path.
        self.topology = topology if topology is not None else DEFAULT_TOPOLOGY
        self.settle_rounds = settle_rounds
        #: Run the attack phase under the microreboot crash watchdog
        #: (:mod:`repro.resilience`): a hypervisor crash becomes a
        #: *crash-then-recovered* / *crash-unrecoverable* outcome
        #: instead of ending the trial.
        self.recover = recover
        self.max_reboots = max_reboots
        #: Record every run into ``trace_dir`` (``--trace``).  Traces
        #: are kept for runs that end in a crash, a security violation
        #: or a recovery (``trace_keep="failures"``, the default) or
        #: unconditionally (``trace_keep="always"``); uninteresting
        #: traces are deleted so campaign output stays bounded.
        self.trace_dir = trace_dir
        self._trace_dir_ready = False
        if trace_keep not in ("failures", "always"):
            raise ValueError(
                f"trace_keep must be 'failures' or 'always', got {trace_keep!r}"
            )
        self.trace_keep = trace_keep
        #: Attach a :class:`repro.probes.MetricsCollector` to every run
        #: (``--metrics``) and ship its snapshot on the result.
        self.collect_metrics = collect_metrics

    # ------------------------------------------------------------------
    # Single run
    # ------------------------------------------------------------------

    def run(
        self,
        use_case_cls: Type[UseCase],
        version: XenVersion,
        mode: Mode,
    ) -> RunResult:
        """One experiment: fresh testbed, attack or inject, observe."""
        if self.testbed_factory is build_testbed:
            bed = build_testbed(version, topology=self.topology)
        else:
            # Custom factories own the shape they boot; trust the bed.
            bed = self.testbed_factory(version)
        use_case = use_case_cls()
        use_case.prepare(bed)
        recorder = self._make_recorder(bed, use_case_cls.name, version, mode)
        collector = None
        if self.collect_metrics:
            from repro.probes import MetricsCollector

            collector = MetricsCollector(bed.xen.probes).attach()
            if not bed.topology.is_default:
                # Stamp the scenario shape into the metrics so per-cell
                # counters are attributable to their topology; default
                # runs stay byte-identical to pre-topology snapshots.
                collector.count("topology.domains", bed.topology.num_guests + 1)

        def attack() -> None:
            if mode is Mode.EXPLOIT:
                use_case.run_exploit(bed)
            else:
                use_case.run_injection(bed)

        failure: Optional[str] = None
        recovery: Optional["RecoveryReport"] = None
        pre_crash_state: Optional[ErroneousStateReport] = None
        try:
            try:
                if self.recover:
                    recovery, pre_crash_state = self._guarded_attack(
                        bed, use_case, attack
                    )
                else:
                    attack()
            except HypervisorCrash:  # staticcheck: ignore[R3] the crash is the observable; CrashMonitor reads it from bed.xen.crashed below
                pass
            except KernelOops as oops:
                failure = f"kernel exception: {oops.fault.reason}"
            except ExploitFailed as exc:
                failure = f"{mode.value} failed: {exc}"

            # Let the system run so deferred effects (vDSO calls, event
            # deliveries) materialise, then observe.
            bed.tick(self.settle_rounds)
        finally:
            # Unhook before auditing: the observation phase must see
            # the native testbed, and audits are not part of the trace
            # or the metrics.
            if recorder is not None:
                recorder.detach()
            if collector is not None:
                collector.detach()
        erroneous = use_case.audit_erroneous_state(bed)
        violation = use_case.detect_violation(bed)
        if recovery is not None:
            # The rollback un-corrupts memory, so the post-recovery
            # audit would deny an erroneous state that demonstrably
            # landed; the pre-rollback audit is the true observation.
            if (
                pre_crash_state is not None
                and pre_crash_state.achieved
                and not erroneous.achieved
            ):
                erroneous = pre_crash_state
            violation = recovery_violation(recovery, base=violation)

        attacker_log = (
            list(bed.attacker_domain.kernel.log)
            if bed.attacker_domain.kernel is not None
            else []
        )
        crashed = bed.xen.crashed or recovery is not None
        trace_info: Optional[dict] = None
        if recorder is not None:
            keep = (
                self.trace_keep == "always"
                or crashed
                or violation.occurred
                or recovery is not None
            )
            if keep:
                trace_info = recorder.finalize()
            else:
                recorder.abandon()
        return RunResult(
            use_case=use_case_cls.name,
            version=version.name,
            mode=mode,
            erroneous_state=erroneous,
            violation=violation,
            crashed=crashed,
            failure=failure,
            console=list(bed.xen.console),
            guest_log=attacker_log,
            recovery=recovery,
            trace=trace_info,
            metrics=collector.snapshot() if collector is not None else None,
            topology=(
                None if bed.topology.is_default else bed.topology.canonical_json()
            ),
        )

    def _make_recorder(self, bed, use_case_name: str, version, mode):
        """Build and attach a trace recorder when ``trace_dir`` is set."""
        if self.trace_dir is None:
            return None
        import os

        from repro.trace import TraceRecorder, trace_filename

        if not self._trace_dir_ready:
            os.makedirs(self.trace_dir, exist_ok=True)
            self._trace_dir_ready = True
        path = os.path.join(
            self.trace_dir,
            trace_filename(
                use_case_name,
                version.name,
                mode.value,
                self.recover,
                topology=bed.topology,
            ),
        )
        return TraceRecorder(
            bed,
            path,
            use_case=use_case_name,
            version=version.name,
            mode=mode.value,
            recover=self.recover,
            topology=bed.topology,
        ).attach()

    def _guarded_attack(self, bed, use_case, attack):
        """Run the attack under the microreboot watchdog (``--recover``).

        Returns ``(recovery_report, pre_crash_erroneous_state)`` —
        both ``None`` when the attack did not crash the hypervisor.
        The erroneous state is audited *between* the crash and the
        rollback, while the corrupted memory is still in place.  An
        attached recorder needs no wiring here: the manager's
        checkpoint/recover probes fire on the testbed's bus.
        """
        from repro.resilience.watchdog import CrashWatchdog

        watchdog = CrashWatchdog(bed, max_reboots=self.max_reboots)
        watchdog.checkpoint()
        audited: dict = {}

        def audit_before_rollback() -> None:
            audited["state"] = use_case.audit_erroneous_state(bed)

        verdict = watchdog.guard(attack, on_crash=audit_before_rollback)
        return verdict.recovery, audited.get("state")

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------

    def run_matrix(
        self,
        use_cases: Sequence[Type[UseCase]],
        versions: Sequence[XenVersion],
        modes: Sequence[Mode] = (Mode.EXPLOIT, Mode.INJECTION),
        runner=None,
        store=None,
    ) -> List[RunResult]:
        """The full matrix, serially or through a ``repro.runner``.

        With ``runner`` (a :class:`repro.runner.SerialRunner` or
        :class:`repro.runner.WorkerPool`) each cell executes as an
        isolated job — parallel, fault-isolated, and resumable when a
        :class:`repro.runner.ResultStore` is passed as ``store`` —
        and the returned list is identical in content and order to a
        serial run's.
        """
        if runner is not None:
            return self._run_matrix_with_runner(
                use_cases, versions, modes, runner, store
            )
        results = []
        for use_case_cls in use_cases:
            for version in versions:
                for mode in modes:
                    results.append(self.run(use_case_cls, version, mode))
        return results

    def _run_matrix_with_runner(
        self, use_cases, versions, modes, runner, store
    ) -> List[RunResult]:
        from repro.analysis.report import run_result_from_dict
        from repro.runner import plan_campaign

        if self.testbed_factory is not build_testbed:
            raise ValueError(
                "custom testbed factories cannot cross process boundaries; "
                "use the serial path"
            )
        specs = plan_campaign(
            [u.name for u in use_cases],
            [v.name for v in versions],
            [m.value for m in modes],
            recover=self.recover,
            trace_dir=self.trace_dir,
            metrics=self.collect_metrics,
            topology=self.topology.spec_value(),
        )
        outcome = runner.run(specs, store=store)
        return [run_result_from_dict(p) for p in outcome.payloads_for(specs)]

    def rq1_runs(
        self,
        use_cases: Sequence[Type[UseCase]],
        vulnerable_version: XenVersion,
    ) -> List[Tuple[RunResult, RunResult]]:
        """RQ1: (exploit, injection) pairs on the vulnerable version."""
        pairs = []
        for use_case_cls in use_cases:
            exploit = self.run(use_case_cls, vulnerable_version, Mode.EXPLOIT)
            injection = self.run(use_case_cls, vulnerable_version, Mode.INJECTION)
            pairs.append((exploit, injection))
        return pairs

    def table3_runs(
        self,
        use_cases: Sequence[Type[UseCase]],
        versions: Sequence[XenVersion],
    ) -> Dict[Tuple[str, str], RunResult]:
        """RQ2/RQ3: injection runs on the non-vulnerable versions,
        keyed by ``(use_case, version)`` — Table III's cells."""
        cells = {}
        for use_case_cls in use_cases:
            for version in versions:
                result = self.run(use_case_cls, version, Mode.INJECTION)
                cells[(use_case_cls.name, version.name)] = result
        return cells
