"""Injection scripts as standalone functions, backed by a registry.

The four injection scripts of Table II remain available as the same
standalone functions (``inject_xsa212_crash(bed)`` …), but lookup now
goes through :mod:`repro.core.injections.registry`: every concrete
:class:`~repro.exploits.base.UseCase` registers itself by name, and
synthetic corpus ids (:mod:`repro.vulngen`) resolve on demand, so real
XSAs and generated vulnerabilities enumerate and inject uniformly —
``inject_by_name("XSA-182-test", bed)`` and
``inject_by_name("syn-2023-0007-…", bed)`` run the identical path.

Each function boots nothing itself — it takes a prepared
:class:`~repro.core.testbed.TestBed` and injects one use case's
erroneous state (plus the post-state steps), exactly like
``Campaign.run(..., Mode.INJECTION)`` does internally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.erroneous_state import ErroneousStateReport
from repro.core.injections.registry import (
    is_registered,
    register_use_case,
    registered_names,
    resolve,
)
from repro.core.monitor import ViolationReport
from repro.errors import HypervisorCrash
from repro.guest.kernel import KernelOops

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed


def _inject(
    use_case_cls, bed: "TestBed"
) -> Tuple[ErroneousStateReport, ViolationReport]:
    # Exploit imports stay function-local throughout this module: the
    # use-case base class registers subclasses here at class-creation
    # time, so a module-level import of ``repro.exploits`` would cycle.
    from repro.exploits.base import ExploitFailed, UseCase

    use_case: UseCase = use_case_cls()
    use_case.prepare(bed)
    try:
        use_case.run_injection(bed)
    except (HypervisorCrash, KernelOops, ExploitFailed):  # staticcheck: ignore[R3] outcomes are read from testbed state by the monitors, not from the exception
        pass
    bed.tick(2)
    return use_case.audit_erroneous_state(bed), use_case.detect_violation(bed)


def inject_by_name(
    name: str, bed: "TestBed"
) -> Tuple[ErroneousStateReport, ViolationReport]:
    """Inject any registered use case — real XSA or synthetic vuln —
    by its registry name, through the standard injection path."""
    return _inject(resolve(name), bed)


def inject_xsa212_crash(bed: "TestBed"):
    """Overwrite the IDT page-fault gate and trigger a page fault."""
    from repro.exploits import XSA212Crash

    return _inject(XSA212Crash, bed)


def inject_xsa212_priv(bed: "TestBed"):
    """Link a crafted PMD into Xen's shared PUD and run a ring-0 payload."""
    from repro.exploits import XSA212Priv

    return _inject(XSA212Priv, bed)


def inject_xsa148_priv(bed: "TestBed"):
    """Create the writable PSE window and patch dom0's vDSO."""
    from repro.exploits import XSA148Priv

    return _inject(XSA148Priv, bed)


def inject_xsa182_test(bed: "TestBed"):
    """Set RW on a self-mapping L4 entry and test-write through it."""
    from repro.exploits import XSA182Test

    return _inject(XSA182Test, bed)


__all__ = [
    "inject_by_name",
    "inject_xsa148_priv",
    "inject_xsa182_test",
    "inject_xsa212_crash",
    "inject_xsa212_priv",
    "is_registered",
    "register_use_case",
    "registered_names",
    "resolve",
]
