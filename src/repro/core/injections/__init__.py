"""The four injection scripts of Table II, as standalone functions.

Each function boots nothing itself — it takes a prepared
:class:`~repro.core.testbed.TestBed` and injects one use case's
erroneous state (plus the post-state steps), exactly like
``Campaign.run(..., Mode.INJECTION)`` does internally.  They exist so
scripts and examples can say ``inject_xsa212_crash(bed)`` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.erroneous_state import ErroneousStateReport
from repro.core.monitor import ViolationReport
from repro.errors import HypervisorCrash
from repro.exploits import XSA148Priv, XSA182Test, XSA212Crash, XSA212Priv
from repro.exploits.base import ExploitFailed, UseCase
from repro.guest.kernel import KernelOops

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed


def _inject(
    use_case_cls, bed: "TestBed"
) -> Tuple[ErroneousStateReport, ViolationReport]:
    use_case: UseCase = use_case_cls()
    use_case.prepare(bed)
    try:
        use_case.run_injection(bed)
    except (HypervisorCrash, KernelOops, ExploitFailed):  # staticcheck: ignore[R3] outcomes are read from testbed state by the monitors, not from the exception
        pass
    bed.tick(2)
    return use_case.audit_erroneous_state(bed), use_case.detect_violation(bed)


def inject_xsa212_crash(bed: "TestBed"):
    """Overwrite the IDT page-fault gate and trigger a page fault."""
    return _inject(XSA212Crash, bed)


def inject_xsa212_priv(bed: "TestBed"):
    """Link a crafted PMD into Xen's shared PUD and run a ring-0 payload."""
    return _inject(XSA212Priv, bed)


def inject_xsa148_priv(bed: "TestBed"):
    """Create the writable PSE window and patch dom0's vDSO."""
    return _inject(XSA148Priv, bed)


def inject_xsa182_test(bed: "TestBed"):
    """Set RW on a self-mapping L4 entry and test-write through it."""
    return _inject(XSA182Test, bed)


__all__ = [
    "inject_xsa148_priv",
    "inject_xsa182_test",
    "inject_xsa212_crash",
    "inject_xsa212_priv",
]
