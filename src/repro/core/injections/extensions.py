"""Extension injection scripts beyond the paper's four use cases.

§IX-C: "the approach is threat vector agnostic and can be mapped to
other components, e.g., interruptions, device drivers, IO.  We are
expanding our prototype to cover IMs related with malicious interrupts
and activities originating from the management interface."  These
scripts implement that expansion over the simulator, one per abusive
functionality class that the four memory use cases do not cover:

* :func:`inject_interrupt_storm` — *Uncontrolled Arbitrary Interrupts
  Requests* (Non-Memory class);
* :func:`inject_hang_state` — *Induce a Hang State* (Non-Memory);
* :func:`inject_fatal_exception` — *Induce a Fatal Exception*
  (Exceptional Conditions): corrupt an internal invariant, then let a
  defensive ``BUG_ON`` bring the host down;
* :func:`inject_read_unauthorized` — *Read Unauthorized Memory*
  (Memory Access): exfiltrate another domain's in-memory secret.

Each returns ``(ErroneousStateReport, ViolationReport)``, like the
Table II scripts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.erroneous_state import ErroneousStateReport
from repro.core.injector import IntrusionInjector
from repro.core.model import (
    InteractionInterface,
    IntrusionModel,
    TargetComponent,
    TriggeringSource,
)
from repro.core.monitor import (
    ConfidentialityMonitor,
    CrashMonitor,
    HangMonitor,
    InterruptStormMonitor,
    ViolationReport,
)
from repro.core.taxonomy import AbusiveFunctionality
from repro.errors import HypervisorCrash
from repro.xen import layout
from repro.xen.constants import PAGE_SIZE, WORDS_PER_PAGE
from repro.xen.idt import encode_gate
from repro.xen.payload import Payload, SpinPayload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed

#: Spare interrupt vectors the extension scripts register.
_STORM_VECTOR = 0xD1
_SPIN_VECTOR = 0xD2

INTERRUPT_STORM_IM = IntrusionModel(
    name="interrupt-storm",
    abusive_functionality=(
        AbusiveFunctionality.UNCONTROLLED_ARBITRARY_INTERRUPT_REQUESTS
    ),
    triggering_source=TriggeringSource.UNPRIVILEGED_GUEST,
    target_component=TargetComponent.INTERRUPT_HANDLING,
    interface=InteractionInterface.HYPERCALL,
    description="flood a victim with event notifications it never bound",
)

HANG_IM = IntrusionModel(
    name="host-hang",
    abusive_functionality=AbusiveFunctionality.INDUCE_A_HANG_STATE,
    triggering_source=TriggeringSource.UNPRIVILEGED_GUEST,
    target_component=TargetComponent.SCHEDULER,
    interface=InteractionInterface.HYPERCALL,
    description="park a physical CPU in non-yielding ring-0 code",
)

FATAL_EXCEPTION_IM = IntrusionModel(
    name="fatal-exception",
    abusive_functionality=AbusiveFunctionality.INDUCE_A_FATAL_EXCEPTION,
    triggering_source=TriggeringSource.UNPRIVILEGED_GUEST,
    target_component=TargetComponent.MEMORY_MANAGEMENT,
    interface=InteractionInterface.HYPERCALL,
    description="violate an internal invariant guarded by BUG_ON",
)

READ_UNAUTHORIZED_IM = IntrusionModel(
    name="read-unauthorized",
    abusive_functionality=AbusiveFunctionality.READ_UNAUTHORIZED_MEMORY,
    triggering_source=TriggeringSource.UNPRIVILEGED_GUEST,
    target_component=TargetComponent.MEMORY_MANAGEMENT,
    interface=InteractionInterface.HYPERCALL,
    description="read another tenant's memory across the isolation boundary",
)


def _inject_ring0(bed: "TestBed", vector: int, payload: Payload) -> int:
    """Shared helper: hide a payload, forge a gate for it, fire it."""
    kernel = bed.attacker_domain.kernel
    injector = IntrusionInjector(kernel)
    payload_pfn = kernel.alloc_page()
    payload_mfn = kernel.pfn_to_mfn(payload_pfn)
    payload_va = layout.directmap_va(payload_mfn)
    rc = injector.write_payload(payload_va, payload)
    if rc != 0:
        return rc
    word0, word1 = encode_gate(payload_va)
    gate_va = bed.xen.sidt(0) + vector * 16
    rc = injector.write(gate_va, [word0, word1])
    if rc != 0:
        return rc
    bed.xen.software_interrupt(bed.attacker_domain, vector)
    return 0


# ---------------------------------------------------------------------------
# Uncontrolled Arbitrary Interrupts Requests
# ---------------------------------------------------------------------------

class _StormPayload(Payload):
    """Ring-0 payload that fabricates event deliveries to the victim."""

    def __init__(self, victim_id: int, count: int):
        super().__init__("interrupt-storm")
        self.victim_id = victim_id
        self.count = count

    def execute(self, xen, domain) -> None:
        victim = xen.domains.get(self.victim_id)
        if victim is None or victim.kernel is None:
            return
        for i in range(self.count):
            port = 1 + (i % 4)
            xen.events.pending.setdefault(self.victim_id, []).append(port)
            victim.kernel.on_event(port)
        xen.log(
            f"forged {self.count} event notifications for d{self.victim_id}"
        )


def inject_interrupt_storm(
    bed: "TestBed", count: int = 128
) -> Tuple[ErroneousStateReport, ViolationReport]:
    """Flood the topology's victim guest (``guests[0]`` in the paper
    default) with notifications it never bound a channel for."""
    victim = bed.victim_guest
    rc = _inject_ring0(bed, _STORM_VECTOR, _StormPayload(victim.id, count))
    pending = len(bed.xen.events.pending.get(victim.id, []))
    erroneous = ErroneousStateReport(
        achieved=rc == 0 and pending >= count,
        description="forged pending events on unbound victim ports",
        fingerprint={"victim": "guest", "storm": pending >= count},
        evidence=[f"d{victim.id} pending queue length: {pending}"],
    )
    violation = InterruptStormMonitor(victim.id, threshold=count).observe(bed)
    return erroneous, violation


# ---------------------------------------------------------------------------
# Induce a Hang State
# ---------------------------------------------------------------------------

def inject_hang_state(
    bed: "TestBed", observe_ticks: int = 10
) -> Tuple[ErroneousStateReport, ViolationReport]:
    """Park pCPU 0 in spinning ring-0 code, then watch the scheduler
    starve."""
    rc = _inject_ring0(bed, _SPIN_VECTOR, SpinPayload(cpu=0))
    spinning = bed.xen.scheduler.pcpus[0].spinning
    erroneous = ErroneousStateReport(
        achieved=rc == 0 and spinning,
        description="physical CPU stuck in non-yielding ring-0 code",
        fingerprint={"cpu": 0, "spinning": spinning},
        evidence=[f"cpu0 spinning: {spinning}"],
    )
    bed.tick(observe_ticks)
    violation = HangMonitor().observe(bed)
    return erroneous, violation


# ---------------------------------------------------------------------------
# Induce a Fatal Exception
# ---------------------------------------------------------------------------

def inject_fatal_exception(
    bed: "TestBed",
) -> Tuple[ErroneousStateReport, ViolationReport]:
    """Corrupt the machine-to-phys invariant for one of our own pages,
    then take the code path whose ``BUG_ON`` guards it."""
    kernel = bed.attacker_domain.kernel
    injector = IntrusionInjector(kernel)
    pfn = kernel.alloc_page()
    mfn = kernel.pfn_to_mfn(pfn)

    # The M2P table is a hypervisor structure; find the backing word.
    frame_slot, word = divmod(mfn, WORDS_PER_PAGE)
    m2p_mfn = bed.xen.m2p_frames[frame_slot]
    rc = injector.write_word(layout.directmap_va(m2p_mfn, word), 0xBAD_BAD)
    corrupted = bed.xen.m2p(mfn) == 0xBAD_BAD
    erroneous = ErroneousStateReport(
        achieved=rc == 0 and corrupted,
        description="machine-to-phys entry inconsistent with the P2M",
        fingerprint={"invariant": "m2p==p2m", "violated": corrupted},
        evidence=[f"m2p[{mfn:#x}] = {bed.xen.m2p(mfn):#x}, p2m says {pfn:#x}"],
    )

    # Activate: memory_exchange re-checks the invariant defensively.
    from repro.xen.hypercalls import ExchangeArgs

    try:
        kernel.memory_exchange(
            ExchangeArgs(in_pfns=[pfn], out_extent_start=kernel.kva(pfn))
        )
    except HypervisorCrash:  # staticcheck: ignore[R3] the FATAL crash is the injected outcome; CrashMonitor observes it next
        pass
    violation = CrashMonitor().observe(bed)
    return erroneous, violation


# ---------------------------------------------------------------------------
# Read Unauthorized Memory
# ---------------------------------------------------------------------------

def inject_read_unauthorized(
    bed: "TestBed",
) -> Tuple[ErroneousStateReport, ViolationReport]:
    """Exfiltrate the victim's in-memory secret (dom0's in the paper
    topology) through the injector's physical-read mode (the
    info-leak IM)."""
    from repro.core.testbed import SECRET_PFN, SECRET_WORD

    kernel = bed.attacker_domain.kernel
    injector = IntrusionInjector(kernel)
    victim = bed.victim_domain
    target_mfn = victim.pfn_to_mfn(SECRET_PFN)
    value = injector.read_word(
        target_mfn * PAGE_SIZE + SECRET_WORD * 8, linear=False
    )
    if value is not None:
        kernel.exfiltrate(value)
    erroneous = ErroneousStateReport(
        achieved=value is not None,
        description="guest read access to another domain's memory",
        fingerprint={"cross_domain_read": value is not None},
        evidence=[f"read d{victim.id} mfn {target_mfn:#x} -> "
                  f"{value:#x}" if value is not None else "read failed"],
    )
    violation = ConfidentialityMonitor().observe(bed)
    return erroneous, violation
