"""Registry of injectable use cases: real XSAs and synthetic vulns.

Before this module existed the repository had exactly four injectable
use cases, enumerated by a hand-written tuple in ``repro.exploits``.
The synthetic-vulnerability corpus (:mod:`repro.vulngen`) scales that
number into the hundreds, so lookup becomes a registry: every concrete
:class:`~repro.exploits.base.UseCase` subclass that declares a
``name`` self-registers here (via ``UseCase.__init_subclass__``), and
synthetic corpus ids resolve on demand — a ``syn-<seed>-<index>-…`` id
is a *pure function* of its own text, so any worker process can
rebuild the use case from the name alone, exactly like the real XSAs
resolve through their class names.

:func:`resolve` is the single lookup the runner, the CLI and the trace
replayer use; ``repro.exploits.USE_CASE_BY_NAME`` remains as the
stable view of the paper's four use cases (existing import paths keep
working).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exploits.base import UseCase

#: name -> concrete UseCase subclass, for explicitly registered cases.
_REGISTRY: Dict[str, "Type[UseCase]"] = {}


def register_use_case(cls: "Type[UseCase]") -> "Type[UseCase]":
    """Register a concrete use case under its class-level ``name``.

    Idempotent for the same class; a *different* class claiming an
    already-registered name is an error (two experiments must never
    silently shadow each other in stores keyed by use-case name).
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"use case {cls.__name__} has no class-level `name` to register"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"use-case name {name!r} is already registered by "
            f"{existing.__name__}; refusing to shadow it with {cls.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def registered_names() -> Tuple[str, ...]:
    """Explicitly registered use-case names, sorted for stable output.

    Synthetic corpus ids are not listed here — they are unbounded and
    resolve on demand through :func:`resolve`.
    """
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    """True iff ``name`` was explicitly registered (synthetic ids are
    resolvable but never registered)."""
    return name in _REGISTRY


def resolve(name: str) -> "Type[UseCase]":
    """Look up an injectable use case by name.

    Real use cases come straight from the registry; a synthetic-corpus
    id (``syn-<seed>-<index>-<class>``) is re-derived from its own
    text, so resolution works in any process without shipping the
    corpus around.
    """
    # Make sure the shipped use cases have registered themselves even
    # when the caller imported only this module.
    import repro.exploits  # noqa: F401

    cls = _REGISTRY.get(name)
    if cls is not None:
        return cls
    from repro.vulngen.corpus import is_synthetic_id

    if is_synthetic_id(name):
        from repro.vulngen.corpus import spec_by_id
        from repro.vulngen.synthetic import make_use_case

        return make_use_case(spec_by_id(name))
    raise KeyError(
        f"unknown use case {name!r}; registered: {list(registered_names())} "
        "(synthetic ids look like 'syn-<seed>-<index>-<class>')"
    )
