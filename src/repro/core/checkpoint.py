"""Whole-testbed checkpoints for snapshot-cached trial execution.

The fork-server (:mod:`repro.runner.forkserver`) boots one testbed per
(Xen version) in each persistent worker, captures a
:class:`TestbedCheckpoint`, and starts every subsequent trial by
*restoring* the checkpoint in place instead of rebuilding the machine.
That only works if restore is an exact inverse, so the checkpoint
covers three layers:

* **machine state** — every frame's words, the blob map and the frame
  allocator, via :class:`~repro.xen.snapshot.MachineSnapshot` (an
  exact inverse since the recovery work landed);
* **hypervisor bookkeeping** — the frame-table records and per-domain
  p2m maps, exactly what :class:`~repro.resilience.recovery.RecoveryManager`
  reintegrates after a microreboot, plus crash flags, console and
  audit rings, and the scheduler's accounting state;
* **guest-kernel leaf state** — clocks, pid counters, free-page lists,
  logs and process tables, so a restored bed does not carry one
  trial's guest-side drift into the next.

Deliberately *not* copied: live object graphs (domains, networks,
probe buses).  Deep-copying a whole testbed is known-unsafe — clones
share blob identity with their template, so a trial on the clone can
corrupt the template — which is why the protocol is capture-once /
restore-in-place, never ``copy.deepcopy(bed)``.

Every restore is verified: :meth:`TestbedCheckpoint.restore` recomputes
:func:`~repro.xen.snapshot.machine_digest` and compares it against the
digest recorded at capture time.  A mismatch raises
:class:`CheckpointDiverged` — the caller (the fork-server's snapshot
cache) evicts the entry and falls back to a cold boot.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.xen.snapshot import MachineSnapshot, machine_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed


class CheckpointDiverged(RuntimeError):
    """A restored testbed did not reproduce the checkpoint's digest.

    Either the cached snapshot rotted (corrupted bytes, a torn cache
    entry) or the testbed accumulated state the checkpoint does not
    cover.  Callers must treat the bed as unusable: evict the cache
    entry and boot a fresh testbed.
    """

    def __init__(self, expected: str, actual: str):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"restored machine digest {actual[:16]} != checkpoint "
            f"digest {expected[:16]}; the cached snapshot is unusable"
        )


@dataclass
class _KernelState:
    """Leaf state of one guest kernel (scalars and flat containers)."""

    clock: float
    next_pid: int
    booted: bool
    free_pfns: List[int]
    log: List[str]
    processes: list
    events_received: List[int]


@dataclass
class TestbedCheckpoint:
    """One consistent, restorable view of a whole testbed."""

    __test__ = False  # "Test*" name, but not a pytest test class

    snapshot: MachineSnapshot
    frame_info: Dict[int, object]
    p2m: Dict[int, list]
    dead: Dict[int, bool]
    crashed: bool
    crash_banner: Optional[str]
    console: List[str]
    audit: List[Tuple[int, int, int]]
    sched_ticks: int
    sched_trace: list
    sched_pcpus: list
    sched_accounts: dict
    watches: list
    kernels: Dict[int, _KernelState]
    #: Machine digest at capture time — what a faithful restore must
    #: reproduce, byte for byte.
    digest: str

    @classmethod
    def capture(cls, bed: "TestBed") -> "TestbedCheckpoint":
        xen = bed.xen
        sched = xen.scheduler
        kernels: Dict[int, _KernelState] = {}
        for domain in bed.all_domains():
            kernel = domain.kernel
            kernels[domain.id] = _KernelState(
                clock=kernel._clock,  # noqa: SLF001 — checkpointing is privileged
                next_pid=kernel._next_pid,  # noqa: SLF001
                booted=kernel.booted,
                free_pfns=list(kernel._free_pfns),  # noqa: SLF001
                log=list(kernel.log),
                processes=[copy.copy(p) for p in kernel.processes],
                events_received=list(kernel.events_received),
            )
        return cls(
            snapshot=MachineSnapshot.capture(xen.machine),
            frame_info=copy.deepcopy(xen.frames._info),  # noqa: SLF001
            p2m={d.id: list(d.p2m) for d in bed.all_domains()},
            dead={d.id: d.dead for d in bed.all_domains()},
            crashed=xen.crashed,
            crash_banner=xen.crash_banner,
            console=list(xen.console),
            audit=list(xen.audit),
            sched_ticks=sched._ticks,  # noqa: SLF001
            sched_trace=list(sched.trace),
            sched_pcpus=[copy.copy(p) for p in sched.pcpus],
            sched_accounts={
                key: copy.copy(account)
                for key, account in sched._accounts.items()  # noqa: SLF001
            },
            watches=list(xen.xenstore._watches),  # noqa: SLF001
            kernels=kernels,
            digest=machine_digest(xen.machine),
        )

    def restore(self, bed: "TestBed", verify: bool = True) -> int:
        """Roll ``bed`` back to this checkpoint, in place.

        Returns the number of machine words rewritten.  With ``verify``
        (the default) the restored machine is re-digested and compared
        against the capture-time digest; a mismatch raises
        :class:`CheckpointDiverged` *after* the python-level state has
        been restored — the machine itself is what diverged, so the bed
        must be discarded either way.
        """
        xen = bed.xen
        rewritten = self.snapshot.restore(xen.machine)
        xen.frames._info = copy.deepcopy(self.frame_info)  # noqa: SLF001
        xen.crashed = self.crashed
        xen.crash_banner = self.crash_banner
        xen.console = deque(self.console, maxlen=xen.console.maxlen)
        xen.audit = deque(self.audit, maxlen=xen.audit.maxlen)
        sched = xen.scheduler
        sched._ticks = self.sched_ticks  # noqa: SLF001
        sched.trace = list(self.sched_trace)
        sched.pcpus = [copy.copy(p) for p in self.sched_pcpus]
        sched._accounts = {  # noqa: SLF001
            key: copy.copy(account)
            for key, account in self.sched_accounts.items()
        }
        xen.xenstore._watches = list(self.watches)  # noqa: SLF001
        for domain in bed.all_domains():
            domain.p2m = list(self.p2m[domain.id])
            domain.dead = self.dead[domain.id]
            kernel = domain.kernel
            saved = self.kernels[domain.id]
            kernel._clock = saved.clock  # noqa: SLF001
            kernel._next_pid = saved.next_pid  # noqa: SLF001
            kernel.booted = saved.booted
            kernel._free_pfns = list(saved.free_pfns)  # noqa: SLF001
            kernel.log = list(saved.log)
            kernel.processes = [copy.copy(p) for p in saved.processes]
            kernel.events_received = list(saved.events_received)
        if verify:
            actual = machine_digest(xen.machine)
            if actual != self.digest:
                raise CheckpointDiverged(self.digest, actual)
        return rewritten

    def verify(self, bed: "TestBed") -> bool:
        """Does ``bed``'s machine currently match the capture digest?"""
        return machine_digest(bed.xen.machine) == self.digest
