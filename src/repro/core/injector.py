"""The prototype intrusion injector (paper §V).

The injector is a new hypercall —

.. code-block:: c

    long HYPERVISOR_arbitrary_access(unsigned long addr,
                                     void *buf, size_t n, int action);

— that lets a guest kernel read or write ``n`` bytes of memory at
``addr`` with no restriction checks, in either *linear* or *physical*
address mode.  Linear addresses are resolved in the hypervisor's own
address space (``__copy_from_user`` / ``__copy_to_user`` semantics);
physical addresses are mapped into the hypervisor first, then
accessed.

:func:`install_injector` adds the hypercall to a hypervisor's table —
the "small changes in the hypercalls table" the paper applies to each
of the three Xen versions.  :class:`IntrusionInjector` is the
guest-side wrapper the injection scripts use.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.errors import EFAULT, EINVAL, HypercallError, HypervisorFault
from repro.xen.addrspace import Access
from repro.xen.constants import HYPERCALL_ARBITRARY_ACCESS
from repro.xen.payload import Payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guest.kernel import GuestKernel
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


class ArbitraryAccessAction(enum.Enum):
    """The ``action`` parameter of the injector hypercall."""

    READ_LINEAR = "ARBITRARY_READ_LINEAR"
    WRITE_LINEAR = "ARBITRARY_WRITE_LINEAR"
    READ_PHYSICAL = "ARBITRARY_READ_PHYSICAL"
    WRITE_PHYSICAL = "ARBITRARY_WRITE_PHYSICAL"

    @property
    def is_write(self) -> bool:
        return self in (self.WRITE_LINEAR, self.WRITE_PHYSICAL)

    @property
    def is_linear(self) -> bool:
        return self in (self.READ_LINEAR, self.WRITE_LINEAR)


def install_injector(xen: "Xen") -> None:
    """Register ``arbitrary_access`` in the hypercall table.

    Idempotent; works on every version — the injector's point is that
    the *same* injection interface exists across the systems under
    comparison.
    """
    if xen.hypercalls.is_registered(HYPERCALL_ARBITRARY_ACCESS):
        return

    def arbitrary_access(domain: "Domain", addr: int, buf: list, n: int, action) -> int:
        return _do_arbitrary_access(xen, domain, addr, buf, n, action)

    xen.hypercalls.register(HYPERCALL_ARBITRARY_ACCESS, arbitrary_access)
    xen.log("intrusion injector: arbitrary_access hypercall installed")


def injector_installed(xen: "Xen") -> bool:
    """Is the arbitrary_access hypercall present in this build?"""
    return xen.hypercalls.is_registered(HYPERCALL_ARBITRARY_ACCESS)


def _resolve(xen: "Xen", addr: int, linear: bool, access: Access) -> Tuple[int, int]:
    """Resolve one word address in the requested mode.

    Linear mode uses the hypervisor's address space directly ("already
    mapped in the hypervisor and can be used directly"); physical mode
    maps the frame first ("it must be mapped prior to use").
    """
    if linear:
        try:
            return xen.addrspace.hypervisor_translate(addr, access)
        except HypervisorFault as exc:
            raise HypercallError(EFAULT, f"linear address: {exc.reason}") from None
    if addr % 8:
        raise HypercallError(EINVAL, f"unaligned physical address {addr:#x}")
    mfn, word = xen.machine.split_paddr(addr)
    if mfn >= xen.machine.num_frames:
        raise HypercallError(EFAULT, f"physical address {addr:#x} beyond memory")
    return mfn, word


def _do_arbitrary_access(
    xen: "Xen",
    domain: "Domain",
    addr: int,
    buf: list,
    n: int,
    action: ArbitraryAccessAction,
) -> int:
    """The hypervisor-side implementation (paper §V-B).

    ``buf`` models the guest buffer: for writes it supplies ``n`` words
    (or :class:`Payload` objects — injected "code"); for reads the
    words are appended to it (``__copy_to_user``).
    """
    if n <= 0 or n % 8:
        raise HypercallError(EINVAL, f"byte count {n} not a multiple of 8")
    words = n // 8
    if action.is_write and len(buf) < words:
        raise HypercallError(EINVAL, "write buffer shorter than n")

    for i in range(words):
        mfn, word = _resolve(
            xen,
            addr + 8 * i,
            action.is_linear,
            Access.WRITE if action.is_write else Access.READ,
        )
        if action.is_write:
            value = buf[i]
            if isinstance(value, Payload):
                xen.machine.attach_blob(mfn, word, value)
            else:
                xen.machine.write_word(mfn, word, int(value))
        else:
            buf.append(xen.machine.read_word(mfn, word))
    return 0


class IntrusionInjector:
    """Guest-side wrapper over the injector hypercall.

    Mirrors the paper's interface: reads and writes of ``n`` bytes at
    an address, in linear or physical mode.  Word granularity (8
    bytes) matches the simulator's memory model.
    """

    def __init__(self, kernel: "GuestKernel"):
        self.kernel = kernel

    @property
    def available(self) -> bool:
        return injector_installed(self.kernel.xen)

    def _call(self, addr: int, buf: list, n: int, action: ArbitraryAccessAction) -> int:
        from repro.xen.constants import HYPERCALL_ARBITRARY_ACCESS as NR

        return self.kernel.hypercall(NR, addr, buf, n, action)

    # -- writes --------------------------------------------------------------

    def write(
        self,
        addr: int,
        values: Sequence[Union[int, Payload]],
        action: ArbitraryAccessAction = ArbitraryAccessAction.WRITE_LINEAR,
    ) -> int:
        """``HYPERVISOR_arbitrary_access(addr, &val, 8*len, action)``."""
        if not action.is_write:
            raise ValueError(f"{action} is not a write action")
        return self._call(addr, list(values), 8 * len(values), action)

    def write_word(self, addr: int, value: int, linear: bool = True) -> int:
        action = (
            ArbitraryAccessAction.WRITE_LINEAR
            if linear
            else ArbitraryAccessAction.WRITE_PHYSICAL
        )
        return self.write(addr, [value], action)

    def write_payload(self, addr: int, payload: Payload, linear: bool = True) -> int:
        """Inject "code" at an address (a payload blob)."""
        action = (
            ArbitraryAccessAction.WRITE_LINEAR
            if linear
            else ArbitraryAccessAction.WRITE_PHYSICAL
        )
        return self.write(addr, [payload], action)

    # -- reads ----------------------------------------------------------------

    def read(
        self,
        addr: int,
        n_words: int = 1,
        action: ArbitraryAccessAction = ArbitraryAccessAction.READ_LINEAR,
    ) -> Optional[List[int]]:
        """Read ``n_words`` words; ``None`` if the hypercall failed."""
        if action.is_write:
            raise ValueError(f"{action} is not a read action")
        buf: list = []
        rc = self._call(addr, buf, 8 * n_words, action)
        if rc != 0:
            return None
        return buf

    def read_word(self, addr: int, linear: bool = True) -> Optional[int]:
        action = (
            ArbitraryAccessAction.READ_LINEAR
            if linear
            else ArbitraryAccessAction.READ_PHYSICAL
        )
        result = self.read(addr, 1, action)
        return None if result is None else result[0]
