"""Differential state-equivalence analysis (a stronger Fig. 4 check).

The paper argues exploit and injection are equivalent when they induce
"the same erroneous state".  The use-case audits check the *intended*
state; this module checks the whole machine: snapshot memory before
each run, diff afterwards, strip run-specific noise (console buffers,
allocation ordering), and compare the *shapes* of the two change sets.

Because an exploit and its injection twin allocate different frames,
raw locations differ; the comparison therefore classifies each changed
word by the *role* of the frame it lives in (IDT, shared upper-half
table, M2P, a domain's page table, a domain's data page) and compares
role histograms — two runs that corrupt "one word of the shared PUD
and one gate of the IDT" match even if the surrounding allocations
landed elsewhere.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.xen.snapshot import MachineSnapshot, WordChange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed


def classify_frame(bed: "TestBed", mfn: int) -> str:
    """The architectural role of a machine frame."""
    xen = bed.xen
    if mfn in xen.idt_mfns:
        return "idt"
    if mfn == xen.xen_pud_mfn:
        return "shared-pud"
    if mfn in xen.m2p_frames:
        return "m2p"
    if mfn == xen.xen_code_mfn:
        return "xen-code"
    info = xen.frames.info(mfn)
    if info.type.is_pagetable:
        return f"pagetable-l{info.type.level}"
    owner = info.owner
    if owner is None:
        return "free"
    for domain in bed.all_domains():
        if domain.id == owner:
            return "domain-data" if not domain.is_privileged else "dom0-data"
    return f"domain-{owner}-data"


@dataclass
class StateDelta:
    """The classified memory footprint of one run."""

    changes: List[WordChange]
    roles: Counter = field(default_factory=Counter)

    @classmethod
    def capture(cls, bed: "TestBed", snapshot: MachineSnapshot) -> "StateDelta":
        changes = snapshot.diff(bed.xen.machine)
        roles = Counter(classify_frame(bed, change.mfn) for change in changes)
        return cls(changes=changes, roles=roles)

    def role_signature(self) -> Dict[str, int]:
        """Roles that carry security meaning (data-page churn from
        normal activity is noise; control-structure changes are not)."""
        interesting = {
            "idt",
            "shared-pud",
            "m2p",
            "xen-code",
            "pagetable-l1",
            "pagetable-l2",
            "pagetable-l3",
            "pagetable-l4",
        }
        return {
            role: count
            for role, count in sorted(self.roles.items())
            if role in interesting
        }


@dataclass
class DifferentialVerdict:
    """Outcome of the whole-machine comparison of two runs.

    Three grades:

    * ``equivalent`` — identical control-structure footprints;
    * ``injection-minimal`` — the injection's footprint is a subset of
      the exploit's: both corrupt the same target structures, but the
      exploit additionally perturbs state as a side effect of driving
      the vulnerable code path (e.g. XSA-212's ``memory_exchange``
      legitimately updates the M2P while delivering its rogue write).
      This is the paper's "directly driving the system into the
      erroneous state" made visible: injections are *more surgical*
      than the attacks they emulate;
    * ``different`` — the footprints disagree on some target structure.
    """

    exploit_signature: Dict[str, int]
    injection_signature: Dict[str, int]

    @property
    def equivalent(self) -> bool:
        return self.exploit_signature == self.injection_signature

    @property
    def injection_minimal(self) -> bool:
        """Injection footprint ⊆ exploit footprint (role-wise)."""
        return all(
            self.exploit_signature.get(role, 0) >= count
            for role, count in self.injection_signature.items()
        )

    @property
    def grade(self) -> str:
        if self.equivalent:
            return "equivalent"
        if self.injection_minimal:
            return "injection-minimal"
        return "different"

    def render(self) -> str:
        return (
            f"{self.grade.upper()}: exploit footprint "
            f"{self.exploit_signature} vs injection footprint "
            f"{self.injection_signature}"
        )


def compare_deltas(exploit: StateDelta, injection: StateDelta) -> DifferentialVerdict:
    """Grade an exploit run's footprint against its injection twin's."""
    return DifferentialVerdict(
        exploit_signature=exploit.role_signature(),
        injection_signature=injection.role_signature(),
    )
