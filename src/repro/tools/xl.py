"""A simulated ``xl`` toolstack — the management interface.

Xen administration happens through the ``xl`` command-line tool in
dom0; the paper's threat models include "activities originating from
the management interface" (§IX-C) and instantiations with a privileged
triggering source (§IV-C: "a privileged guest (dom0) abusing ...").
This module provides that interface over the simulator:

* lifecycle — ``create``, ``destroy``, ``pause``, ``unpause``;
* inspection — ``list``, ``dmesg``, ``info``;
* authorisation — every command is issued *by* a domain, and only the
  privileged domain may manage others, so a compromised dom0 (e.g.
  after XSA-148-priv) wields the full blast radius an APT would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.guest.kernel import GuestKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


class XlError(Exception):
    """A toolstack command failed (bad arguments or permission)."""


@dataclass
class DomainInfo:
    """One row of ``xl list``."""

    domid: int
    name: str
    memory_pages: int
    vcpus: int
    state: str  # r (running) / p (paused) / d (dying)

    def render(self) -> str:
        return (
            f"{self.name:<24}{self.domid:>5}{self.memory_pages:>8}"
            f"{self.vcpus:>7}     {self.state}"
        )


class XlToolstack:
    """The management interface, bound to the domain issuing commands."""

    def __init__(self, xen: "Xen", caller: "Domain"):
        self.xen = xen
        self.caller = caller

    def _require_privilege(self, command: str) -> None:
        if not self.caller.is_privileged:
            raise XlError(
                f"xl {command}: permission denied "
                f"(d{self.caller.id} is not the control domain)"
            )

    def _find(self, name_or_id: str) -> "Domain":
        for domain in self.xen.domains.values():
            if domain.name == name_or_id or str(domain.id) == str(name_or_id):
                return domain
        raise XlError(f"xl: unknown domain {name_or_id!r}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def list(self) -> List[DomainInfo]:
        """``xl list`` — every domain on the host (dom0-only, like the
        real tool when talking to the hypervisor)."""
        self._require_privilege("list")
        rows = []
        for domain in sorted(self.xen.domains.values(), key=lambda d: d.id):
            if domain.dead:
                state = "d"
            elif domain.paused:
                state = "p"
            else:
                state = "r"
            rows.append(
                DomainInfo(
                    domid=domain.id,
                    name=domain.name,
                    memory_pages=domain.num_pages,
                    vcpus=len(domain.vcpus),
                    state=state,
                )
            )
        return rows

    def render_list(self) -> str:
        header = f"{'Name':<24}{'ID':>5}{'Mem':>8}{'VCPUs':>7}     State"
        return "\n".join([header] + [row.render() for row in self.list()])

    def dmesg(self, tail: Optional[int] = None) -> str:
        """``xl dmesg`` — the hypervisor console."""
        self._require_privilege("dmesg")
        lines = list(self.xen.console)
        if tail is not None:
            lines = lines[-tail:]
        return "\n".join(lines)

    def console(self, name_or_id: str, tail: Optional[int] = None) -> str:
        """``xl console`` — a domain's kernel log."""
        self._require_privilege("console")
        domain = self._find(name_or_id)
        if domain.kernel is None:
            raise XlError(f"xl console: {name_or_id} has no kernel")
        lines = domain.kernel.log if tail is None else domain.kernel.log[-tail:]
        return "\n".join(lines)

    def vcpu_list(self) -> str:
        """``xl vcpu-list`` — per-vCPU scheduling state."""
        self._require_privilege("vcpu-list")
        lines = [f"{'Name':<20}{'ID':>4}{'VCPU':>6}{'Runs':>8}{'State':>8}"]
        for domain in sorted(self.xen.domains.values(), key=lambda d: d.id):
            for vcpu in domain.vcpus:
                account = self.xen.scheduler.account(domain.id, vcpu.vcpu_id)
                if domain.paused:
                    state = "paused"
                elif account.blocked:
                    state = "blocked"
                else:
                    state = "run"
                lines.append(
                    f"{domain.name:<20}{domain.id:>4}{vcpu.vcpu_id:>6}"
                    f"{account.runs:>8}{state:>8}"
                )
        return "\n".join(lines)

    def info(self) -> str:
        """``xl info`` — host summary."""
        self._require_privilege("info")
        machine = self.xen.machine
        return "\n".join(
            [
                f"xen_version            : {self.xen.version.name}",
                f"nr_cpus                : {self.xen.num_pcpus}",
                f"total_memory           : {machine.bytes_total // 1024} KiB",
                f"free_memory            : "
                f"{machine.frames_free * 4} KiB",
                f"nr_domains             : {len(self.xen.domains)}",
            ]
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(self, name: str, memory_pages: int = 32) -> "Domain":
        """``xl create`` — build and boot a new guest."""
        self._require_privilege("create")
        if any(d.name == name for d in self.xen.domains.values()):
            raise XlError(f"xl create: domain {name!r} already exists")
        domain = self.xen.create_domain(name, num_pages=memory_pages)
        GuestKernel(self.xen, domain).boot()
        return domain

    def destroy(self, name_or_id: str) -> None:
        """``xl destroy`` — tear a guest down immediately."""
        self._require_privilege("destroy")
        domain = self._find(name_or_id)
        if domain.is_privileged:
            raise XlError("xl destroy: refusing to destroy the control domain")
        self.xen.destroy_domain(domain)

    def pause(self, name_or_id: str) -> None:
        self._require_privilege("pause")
        self._find(name_or_id).paused = True

    def unpause(self, name_or_id: str) -> None:
        self._require_privilege("unpause")
        self._find(name_or_id).paused = False

    # ------------------------------------------------------------------
    # Device attachment (split drivers)
    # ------------------------------------------------------------------

    def _host_backends(self) -> dict:
        """Per-host backend daemons, stashed on the hypervisor object
        (one block backend / one network backend per host)."""
        backends = getattr(self.xen, "_xl_backends", None)
        if backends is None:
            backends = {"blk": None, "net": None}
            self.xen._xl_backends = backends
        return backends

    def block_attach(self, name_or_id: str, sectors: int = 32):
        """``xl block-attach`` — give a guest a PV block device.

        Starts the host's block backend on first use, then connects a
        frontend inside the guest.  Returns the frontend handle."""
        self._require_privilege("block-attach")
        from repro.drivers.blkback import Blkback
        from repro.drivers.blkfront import Blkfront
        from repro.drivers.disk import VirtualDisk

        domain = self._find(name_or_id)
        if domain.kernel is None:
            raise XlError(f"xl block-attach: {name_or_id} has no kernel")
        backends = self._host_backends()
        if backends["blk"] is None:
            dom0 = next(
                d for d in self.xen.domains.values() if d.is_privileged
            )
            backend = Blkback(dom0.kernel, VirtualDisk(num_sectors=sectors))
            backend.start()
            backends["blk"] = backend
        frontend = Blkfront(domain.kernel)
        frontend.connect()
        return frontend

    def network_attach(self, name_or_id: str):
        """``xl network-attach`` — give a guest a PV network interface."""
        self._require_privilege("network-attach")
        from repro.drivers.netback import Netback
        from repro.drivers.netfront import Netfront

        domain = self._find(name_or_id)
        if domain.kernel is None:
            raise XlError(f"xl network-attach: {name_or_id} has no kernel")
        backends = self._host_backends()
        if backends["net"] is None:
            dom0 = next(
                d for d in self.xen.domains.values() if d.is_privileged
            )
            backend = Netback(dom0.kernel)
            backend.start()
            backends["net"] = backend
        frontend = Netfront(domain.kernel)
        frontend.connect()
        return frontend

    # ------------------------------------------------------------------
    # Shell entry point (used by the reverse-shell observable)
    # ------------------------------------------------------------------

    def run(self, command_line: str) -> str:
        """Interpret an ``xl ...`` command line; returns its output."""
        parts = command_line.split()
        if not parts:
            raise XlError("xl: missing command")
        command, args = parts[0], parts[1:]
        if command == "list":
            return self.render_list()
        if command == "info":
            return self.info()
        if command == "dmesg":
            return self.dmesg(tail=int(args[0]) if args else None)
        if command == "console":
            if not args:
                raise XlError("xl console: missing domain")
            return self.console(args[0])
        if command == "vcpu-list":
            return self.vcpu_list()
        if command == "create":
            if not args:
                raise XlError("xl create: missing domain name")
            pages = int(args[1]) if len(args) > 1 else 32
            domain = self.create(args[0], memory_pages=pages)
            return f"created domain {domain.name} (d{domain.id})"
        if command == "destroy":
            if not args:
                raise XlError("xl destroy: missing domain")
            self.destroy(args[0])
            return f"destroyed {args[0]}"
        if command == "pause":
            self.pause(args[0])
            return f"paused {args[0]}"
        if command == "unpause":
            self.unpause(args[0])
            return f"unpaused {args[0]}"
        if command == "block-attach":
            if not args:
                raise XlError("xl block-attach: missing domain")
            self.block_attach(args[0])
            return f"block device attached to {args[0]}"
        if command == "network-attach":
            if not args:
                raise XlError("xl network-attach: missing domain")
            self.network_attach(args[0])
            return f"network interface attached to {args[0]}"
        raise XlError(f"xl: unknown command {command!r}")
