"""Management tooling for the simulated host (the ``xl`` toolstack)."""

from repro.tools.xl import XlError, XlToolstack

__all__ = ["XlError", "XlToolstack"]
