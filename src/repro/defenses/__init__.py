"""Deployable defence mechanisms — the targets of §IV-C assessments.

"Assuming a deployed mechanism to prevent unauthorized modification of
page tables, the effectiveness of this mechanism can be tested using
our approach.  For this, we need to model different intrusions that
target unauthorized page-table changes and execute a testing campaign
injecting various erroneous states using an intrusion injector."

This package supplies such mechanisms so that campaign exists end to
end: integrity guards that hash security-critical structures (guest
page tables, the IDT) and — at every hypercall return and trap
delivery — detect divergence from the validated baseline, optionally
restoring it.  ``benchmarks/bench_defense_evaluation.py`` runs the
paper's injections against them.
"""

from repro.defenses.guards import (
    GuardAlert,
    GuardMode,
    IdtGuard,
    IntegrityGuard,
    PageTableGuard,
    deploy,
)

__all__ = [
    "GuardAlert",
    "GuardMode",
    "IdtGuard",
    "IntegrityGuard",
    "PageTableGuard",
    "deploy",
]
