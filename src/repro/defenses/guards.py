"""Integrity guards over security-critical hypervisor structures.

Both guards follow the same pattern (an in-hypervisor analog of the
integrity monitors surveyed in the paper's §IV-A monitoring
references):

* at deployment, record a baseline of the guarded frames;
* follow *legitimate* changes (validated ``mmu_update`` writes refresh
  the page-table baseline);
* at every integrity point (hypercall return, trap delivery), compare
  the frames against the baseline;
* on divergence, raise an alert — and in ``RESTORE`` mode write the
  baseline back, undoing the erroneous state before it can be used.

The guards deliberately trust the hypervisor's own validation: a
write that went through ``mmu_update`` is legitimate *by definition*,
so a validation defect (XSA-148/182 on Xen 4.6) walks right past
them.  What they catch is exactly what intrusion injection produces —
state changed without passing validation — which also models the
out-of-band corruption (DMA attacks, fault injection) such mechanisms
exist for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.xen.constants import WORDS_PER_PAGE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.probes.bus import Attachment
    from repro.xen.hypervisor import Xen


class GuardMode(enum.Enum):
    """Response policy on divergence: alert only, or alert + revert."""

    DETECT = "detect"  # alert only
    RESTORE = "restore"  # alert and write the baseline back


@dataclass(frozen=True)
class GuardAlert:
    """One detected divergence."""

    guard: str
    mfn: int
    word: int
    expected: int
    observed: int
    restored: bool

    def render(self) -> str:
        action = "restored" if self.restored else "alert only"
        return (
            f"[{self.guard}] mfn {self.mfn:#06x}[{self.word}]: "
            f"expected {self.expected:#018x}, observed "
            f"{self.observed:#018x} ({action})"
        )


class IntegrityGuard:
    """Shared baseline/verify machinery."""

    name = "integrity-guard"

    def __init__(self, xen: "Xen", mode: GuardMode = GuardMode.RESTORE):
        self.xen = xen
        self.mode = mode
        self._baseline: Dict[int, List[int]] = {}
        self.alerts: List[GuardAlert] = []
        self.scans = 0
        #: Probe-bus subscription installed by :func:`deploy`.
        self.attachment: Optional["Attachment"] = None

    # -- baseline ------------------------------------------------------------

    def _record(self, mfn: int) -> None:
        self._baseline[mfn] = self.xen.machine.read_words(mfn, 0, WORDS_PER_PAGE)

    def _guarded_frames(self) -> List[int]:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    # -- verification -----------------------------------------------------------

    def verify(self) -> List[GuardAlert]:
        """One integrity scan; returns the new alerts."""
        self.scans += 1
        new_alerts: List[GuardAlert] = []
        guarded = set(self._guarded_frames())
        # Frames that left the guarded set drop out of the baseline.
        for stale in [mfn for mfn in self._baseline if mfn not in guarded]:
            del self._baseline[stale]
        for mfn in guarded:
            baseline = self._baseline.get(mfn)
            if baseline is None:
                self._record(mfn)  # newly guarded frame: adopt as-is
                continue
            current = self.xen.machine.read_words(mfn, 0, WORDS_PER_PAGE)
            if current == baseline:
                continue
            for word, (expected, observed) in enumerate(zip(baseline, current)):
                if expected == observed:
                    continue
                restored = self.mode is GuardMode.RESTORE
                if restored:
                    self.xen.machine.write_word(mfn, word, expected)
                alert = GuardAlert(
                    guard=self.name,
                    mfn=mfn,
                    word=word,
                    expected=expected,
                    observed=observed,
                    restored=restored,
                )
                new_alerts.append(alert)
        self.alerts.extend(new_alerts)
        if new_alerts:
            self.xen.log(
                f"{self.name}: {len(new_alerts)} unauthorized change(s) "
                f"{'reverted' if self.mode is GuardMode.RESTORE else 'detected'}"
            )
        return new_alerts

    @property
    def triggered(self) -> bool:
        return bool(self.alerts)


class PageTableGuard(IntegrityGuard):
    """Guards every validated guest page table (§IV-C's example
    mechanism: "prevent unauthorized modification of page tables")."""

    name = "pagetable-guard"

    def _guarded_frames(self) -> List[int]:
        return [mfn for mfn, _ in self.xen.frames.iter_pagetables()]

    def on_pt_update(self, table_mfn: int, index: int, value: int) -> None:
        """A *validated* update happened: follow it in the baseline."""
        baseline = self._baseline.get(table_mfn)
        if baseline is not None:
            baseline[index] = value


class IdtGuard(IntegrityGuard):
    """Guards the per-CPU interrupt descriptor tables."""

    name = "idt-guard"

    def _guarded_frames(self) -> List[int]:
        return list(self.xen.idt_mfns)


def deploy(xen: "Xen", *guards: IntegrityGuard) -> Tuple[IntegrityGuard, ...]:
    """Install guards into the hypervisor's integrity probe points.

    Each guard subscribes to the testbed's probe bus: ``integrity``
    fires at every hypercall return and trap delivery (replacing the
    old ``integrity_hooks`` list), and page-table guards additionally
    follow validated ``pt_update`` notifications so legitimate writes
    refresh the baseline.  The :class:`~repro.probes.bus.Attachment`
    is stored on each guard as ``attachment`` for withdrawal.
    """
    from repro.probes import points as probe_points

    for guard in guards:
        guard.verify()  # adopt the current (trusted) state as baseline
        pairs = [(probe_points.INTEGRITY, guard.verify)]
        if isinstance(guard, PageTableGuard):
            pairs.append((probe_points.PT_UPDATE, guard.on_pt_update))
        guard.attachment = xen.probes.attach(pairs)
    return guards


def withdraw(*guards: IntegrityGuard) -> None:
    """Detach deployed guards from their probe bus (idempotent)."""
    for guard in guards:
        if guard.attachment is not None:
            guard.attachment.detach()
            guard.attachment = None
