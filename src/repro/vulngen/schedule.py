"""Coverage-guided scheduling of synthetic-vulnerability fuzz trials.

The §IV-C campaign draws trials uniformly.  With a corpus of hundreds
of synthetic vulnerabilities that is wasteful: most entries collapse
onto a handful of behaviours, and the interesting ones — the entries
whose corruption drives the hypervisor down *new* paths — deserve the
budget.  This module adds the classic fuzzing feedback loop on top of
the probe-coverage map:

1. plan a **round** of ``(entry, mutation, seed)`` trials;
2. execute them (serially, or as runner jobs — one fresh testbed per
   trial, like every fuzz trial in this repository);
3. fold each trial's coverage signature into the global
   :class:`~repro.vulngen.coverage.CoverageMap`;
4. credit entries whose trials contributed unseen features with
   **energy**, which weights the next round's draw.

Determinism is the design constraint, not an afterthought.  Every
scheduling decision is a pure function of ``(root seed, round number,
coverage digest after the previous round)``: the round RNG is seeded
from exactly those values, trial seeds hash the plan coordinates, and
results are integrated in slot order regardless of completion order.
Since each trial's outcome (and coverage) is itself a pure function of
its plan, by induction the whole schedule — and therefore the whole
campaign — is identical serially and under ``--jobs N``, byte for
byte.  The tests and the CI job pin this.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core.fuzz import FuzzResult
from repro.vulngen.corpus import Corpus, spec_by_id
from repro.vulngen.coverage import CoverageMap
from repro.vulngen.synthetic import MUTATION_NAMES, run_synthetic_trial

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.versions import XenVersion


@dataclass(frozen=True)
class TrialPlan:
    """One scheduled trial: the complete recipe to run it anywhere."""

    round: int
    slot: int
    entry_id: str
    mutation: str
    seed: int


def _plan_seed(
    root_seed: int, entry_id: str, mutation: str, round_no: int, slot: int
) -> int:
    """A trial's private RNG seed, hashed from its plan coordinates
    (63 bits, like :func:`repro.core.fuzz.trial_seed`)."""
    blob = f"{root_seed}:{entry_id}:{mutation}:{round_no}:{slot}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


def _round_rng(root_seed: int, round_no: int, coverage_digest: str) -> random.Random:
    """The round's planning RNG — seeded from exactly the values a
    schedule is allowed to depend on."""
    blob = f"{root_seed}:round:{round_no}:{coverage_digest}".encode()
    return random.Random(int.from_bytes(hashlib.sha256(blob).digest()[:8], "big"))


class UniformScheduler:
    """The §IV-C baseline: draw entry and mutation uniformly.

    Deliberately ignores coverage (the round RNG is seeded with a
    constant digest), so it is the controlled comparison arm for
    ``bench_vulngen_coverage``.
    """

    name = "uniform"

    def __init__(self, entry_ids: Sequence[str], root_seed: int):
        if not entry_ids:
            raise ValueError("scheduler needs a non-empty corpus")
        self.entry_ids = list(entry_ids)
        self.root_seed = root_seed

    def plan_round(
        self, round_no: int, budget: int, coverage_digest: str
    ) -> List[TrialPlan]:
        rng = _round_rng(self.root_seed, round_no, "uniform")
        plans = []
        for slot in range(budget):
            entry_id = self.entry_ids[rng.randrange(len(self.entry_ids))]
            mutation = MUTATION_NAMES[rng.randrange(len(MUTATION_NAMES))]
            plans.append(
                TrialPlan(
                    round=round_no,
                    slot=slot,
                    entry_id=entry_id,
                    mutation=mutation,
                    seed=_plan_seed(
                        self.root_seed, entry_id, mutation, round_no, slot
                    ),
                )
            )
        return plans

    def observe(self, plan: TrialPlan, result: FuzzResult, new_features: int) -> None:
        """Uniform scheduling learns nothing from feedback."""


class CoverageGuidedScheduler:
    """Novelty-weighted scheduling over the corpus.

    Two-phase selection, AFL-queue style:

    * **exploration floor** — an entry that has never been tried is
      always scheduled before any entry is re-tried (drawn by the
      round RNG from the untried set), so the corpus is swept before
      the budget starts concentrating;
    * **exploitation** — once every entry has run, each entry's
      **energy** is ``1 + (coverage features its past trials were
      first to exhibit)``: entries that keep finding new behaviour get
      proportionally more budget, entries that plateau decay back to
      the uniform floor (the ``1`` keeps every entry reachable — no
      starvation).

    An entry's first trial is always the ``baseline`` mutation (the
    spec as generated); subsequent trials draw mutations from the
    round RNG.
    """

    name = "coverage"

    def __init__(self, entry_ids: Sequence[str], root_seed: int):
        if not entry_ids:
            raise ValueError("scheduler needs a non-empty corpus")
        self.entry_ids = list(entry_ids)
        self.root_seed = root_seed
        self.trials_done: Dict[str, int] = {e: 0 for e in self.entry_ids}
        self.novelty: Dict[str, int] = {e: 0 for e in self.entry_ids}

    # -- planning ------------------------------------------------------

    def energy(self, entry_id: str) -> int:
        return 1 + self.novelty[entry_id]

    def _pick_entry(self, rng: random.Random) -> str:
        weights = [self.energy(e) for e in self.entry_ids]
        total = sum(weights)
        point = rng.randrange(total)
        acc = 0
        for entry_id, weight in zip(self.entry_ids, weights):
            acc += weight
            if point < acc:
                return entry_id
        return self.entry_ids[-1]  # unreachable: point < total == acc

    def plan_round(
        self, round_no: int, budget: int, coverage_digest: str
    ) -> List[TrialPlan]:
        rng = _round_rng(self.root_seed, round_no, coverage_digest)
        planned: Dict[str, int] = {}
        untried = [
            e for e in self.entry_ids if self.trials_done[e] == 0
        ]
        plans = []
        for slot in range(budget):
            if untried:
                entry_id = untried.pop(rng.randrange(len(untried)))
            else:
                entry_id = self._pick_entry(rng)
            prior = self.trials_done[entry_id] + planned.get(entry_id, 0)
            if prior == 0:
                mutation = "baseline"
            else:
                mutation = MUTATION_NAMES[rng.randrange(len(MUTATION_NAMES))]
            planned[entry_id] = planned.get(entry_id, 0) + 1
            plans.append(
                TrialPlan(
                    round=round_no,
                    slot=slot,
                    entry_id=entry_id,
                    mutation=mutation,
                    seed=_plan_seed(
                        self.root_seed, entry_id, mutation, round_no, slot
                    ),
                )
            )
        return plans

    # -- feedback ------------------------------------------------------

    def observe(self, plan: TrialPlan, result: FuzzResult, new_features: int) -> None:
        """Integrate one trial (callers must feed trials in slot order
        within a round — the campaign does)."""
        self.trials_done[plan.entry_id] += 1
        self.novelty[plan.entry_id] += new_features


@dataclass
class RoundStats:
    """Aggregates of one scheduler round."""

    round: int
    trials: int
    new_features: int
    coverage_size: int
    #: Coverage digest *after* this round (next round's planning input).
    digest: str


@dataclass
class CoverageReport:
    """Everything a coverage-guided campaign produced."""

    version: str
    root_seed: int
    scheduler: str
    rounds: List[RoundStats] = field(default_factory=list)
    plans: List[TrialPlan] = field(default_factory=list)
    results: List[FuzzResult] = field(default_factory=list)
    coverage: List[str] = field(default_factory=list)

    def distinct_outcomes(self) -> List[Tuple[str, str]]:
        """Sorted distinct ``(entry, outcome)`` pairs — the campaign's
        behavioural footprint (the bench's primary metric)."""
        return sorted({(r.component, r.outcome) for r in self.results})

    def novelty_curve(self) -> List[int]:
        """Cumulative coverage-map size after each round (monotone
        non-decreasing by construction; CI asserts it)."""
        return [stats.coverage_size for stats in self.rounds]

    def schedule_digest(self) -> str:
        """Content digest of the full schedule — the serial-vs-parallel
        identity the tests compare."""
        blob = json.dumps(
            [asdict(plan) for plan in self.plans], sort_keys=True
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "root_seed": self.root_seed,
            "scheduler": self.scheduler,
            "rounds": [asdict(s) for s in self.rounds],
            "plans": [asdict(p) for p in self.plans],
            "schedule_digest": self.schedule_digest(),
            "distinct_outcomes": [list(pair) for pair in self.distinct_outcomes()],
            "novelty_curve": self.novelty_curve(),
            "coverage_size": len(self.coverage),
            "coverage_digest": self.rounds[-1].digest if self.rounds else "",
        }

    def render(self) -> str:
        lines = [
            f"coverage-guided campaign on Xen {self.version} "
            f"({self.scheduler} scheduler, root seed {self.root_seed}, "
            f"{len(self.results)} trials)",
            f"{'round':<7}{'trials':<8}{'new features':<14}{'coverage':<10}",
            "-" * 45,
        ]
        for stats in self.rounds:
            lines.append(
                f"{stats.round:<7}{stats.trials:<8}"
                f"{stats.new_features:<14}{stats.coverage_size:<10}"
            )
        lines += [
            "-" * 45,
            f"distinct (entry, outcome) pairs: {len(self.distinct_outcomes())}",
            f"schedule digest: {self.schedule_digest()[:16]}",
        ]
        return "\n".join(lines)


class CoverageFuzzCampaign:
    """Round-based fuzz campaign over a synthetic corpus.

    Rounds are barriers: round *k* is planned only from the coverage
    digest after round *k-1*, executed (serially or via a runner), and
    integrated in slot order.  Multi-round campaigns must not share a
    result store across rounds (each round is a different job plan), so
    the runner path always passes ``store=None`` — coverage campaigns
    are cheap to re-run precisely because they are deterministic.
    """

    def __init__(
        self,
        version: "XenVersion",
        corpus: Corpus,
        root_seed: int = 2023,
        guided: bool = True,
    ):
        self.version = version
        self.corpus = corpus
        self.root_seed = root_seed
        scheduler_cls = CoverageGuidedScheduler if guided else UniformScheduler
        self.scheduler = scheduler_cls(corpus.ids, root_seed)

    def run(
        self, rounds: int = 4, trials_per_round: int = 8, runner=None
    ) -> CoverageReport:
        coverage = CoverageMap()
        report = CoverageReport(
            version=self.version.name,
            root_seed=self.root_seed,
            scheduler=self.scheduler.name,
        )
        for round_no in range(rounds):
            plans = self.scheduler.plan_round(
                round_no, trials_per_round, coverage.digest
            )
            results = self._execute(plans, runner)
            new_total = 0
            for plan, result in sorted(
                zip(plans, results), key=lambda pair: pair[0].slot
            ):
                new = coverage.observe(result.coverage or [])
                self.scheduler.observe(plan, result, new)
                new_total += new
            report.plans.extend(plans)
            report.results.extend(results)
            report.rounds.append(
                RoundStats(
                    round=round_no,
                    trials=len(plans),
                    new_features=new_total,
                    coverage_size=len(coverage),
                    digest=coverage.digest,
                )
            )
        report.coverage = coverage.features()
        return report

    def _execute(
        self, plans: List[TrialPlan], runner
    ) -> List[FuzzResult]:
        """Run one round's trials; results align with ``plans``."""
        if runner is None:
            return [
                run_synthetic_trial(
                    spec_by_id(plan.entry_id),
                    self.version,
                    plan.seed,
                    mutation=plan.mutation,
                    collect_coverage=True,
                )
                for plan in plans
            ]
        from repro.runner import plan_coverage_round

        specs = plan_coverage_round(self.version.name, plans)
        outcome = runner.run(specs, store=None)
        return [FuzzResult(**payload) for payload in outcome.payloads_for(specs)]
