"""The synthetic-vulnerability class taxonomy (after SPEC-RG).

The SPEC-RG hypercall-handler report surveys real hypervisor
vulnerabilities and groups the recurring root causes; the classes
below are the ones the simulator can express as *injectable erroneous
states* — the post-intrusion condition each defect class leaves
behind, which is exactly what the paper's injector reproduces:

``MISSING_OWNERSHIP_CHECK``
    a handler mutates a frame another domain owns because the
    ownership gate is absent — the erroneous state is a victim-owned
    word holding an attacker-chosen value (XSA-148's family).
``MISSING_PRIVILEGE_CHECK``
    an unprivileged caller reaches a hypervisor-reserved structure
    (IDT, M2P, shared page tables) — the erroneous state is corrupted
    hypervisor metadata (XSA-212's family).
``REFCOUNT_IMBALANCE``
    a get/put imbalance lets a live page-table frame be retyped — the
    erroneous state is a writable alias of a page-table frame
    (XSA-387/393's family; statically modelled by rule R1).
``BOUNDS_ERROR``
    a length/index computation overflows its target window — the
    erroneous state is a write that crossed a frame boundary into the
    neighbouring frame.
``TOCTOU_WINDOW``
    state re-checked at use time differs from what was validated —
    the erroneous state is a validated entry whose content changed
    after the check.

Each class carries its mapping onto the Table I abusive-functionality
taxonomy (so synthetic intrusion models instantiate like the real
ones) and onto the ``repro.staticcheck`` rule that guards the class
statically (:data:`CLASS_RULE_MAP` — the generated-class ↔ R1/R2
correspondence documented in DESIGN.md §7/§11).
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.core.taxonomy import AbusiveFunctionality


class VulnClass(enum.Enum):
    """One SPEC-RG-style defect class the generator can instantiate."""

    MISSING_OWNERSHIP_CHECK = "missing-ownership-check"
    MISSING_PRIVILEGE_CHECK = "missing-privilege-check"
    REFCOUNT_IMBALANCE = "refcount-imbalance"
    BOUNDS_ERROR = "bounds-error"
    TOCTOU_WINDOW = "toctou-window"


#: Stable generation order (the corpus round-robins over this tuple,
#: so any corpus of >= 5 entries covers every class).
ALL_CLASSES: Tuple[VulnClass, ...] = (
    VulnClass.MISSING_OWNERSHIP_CHECK,
    VulnClass.MISSING_PRIVILEGE_CHECK,
    VulnClass.REFCOUNT_IMBALANCE,
    VulnClass.BOUNDS_ERROR,
    VulnClass.TOCTOU_WINDOW,
)

#: Class -> Table I abusive functionality, for the synthetic
#: intrusion-model instantiation.
CLASS_FUNCTIONALITY: Dict[VulnClass, AbusiveFunctionality] = {
    VulnClass.MISSING_OWNERSHIP_CHECK: AbusiveFunctionality.WRITE_UNAUTHORIZED_MEMORY,
    VulnClass.MISSING_PRIVILEGE_CHECK: (
        AbusiveFunctionality.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY
    ),
    VulnClass.REFCOUNT_IMBALANCE: AbusiveFunctionality.CORRUPT_A_PAGE_REFERENCE,
    VulnClass.BOUNDS_ERROR: AbusiveFunctionality.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY,
    VulnClass.TOCTOU_WINDOW: AbusiveFunctionality.CORRUPT_VIRTUAL_MEMORY_MAPPING,
}

#: Class -> the staticcheck rule(s) that model the defect class on the
#: simulator's own source (DESIGN.md §7/§12): R1 is the
#: refcount-balance analysis, R2 the per-function ownership/privilege
#: gate heuristic, R7 the interprocedural tainted-sink analysis and R8
#: the check/yield/use (TOCTOU) analysis.  The evaluation harness
#: (:mod:`repro.staticcheck.evaluation`) measures exactly this mapping
#: against rendered corpus entries.
CLASS_RULE_MAP: Dict[VulnClass, Tuple[str, ...]] = {
    VulnClass.MISSING_OWNERSHIP_CHECK: ("R2", "R7"),
    VulnClass.MISSING_PRIVILEGE_CHECK: ("R2", "R7"),
    VulnClass.REFCOUNT_IMBALANCE: ("R1", "R7"),
    VulnClass.BOUNDS_ERROR: ("R7",),
    VulnClass.TOCTOU_WINDOW: ("R8",),
}

_BY_SLUG = {cls.value: cls for cls in VulnClass}


def class_by_slug(slug: str) -> VulnClass:
    """Resolve a class from its id slug (``"bounds-error"`` …)."""
    try:
        return _BY_SLUG[slug]
    except KeyError:
        raise KeyError(
            f"unknown vulnerability class {slug!r}; known: {sorted(_BY_SLUG)}"
        ) from None
