"""``repro.vulngen`` — synthetic injectable-vulnerability corpus and
coverage-guided fuzz scheduling.

The paper's methodology needs *many* injectable erroneous states to
characterise intrusion effects, but only four hand-written XSA use
cases ship with the reproduction.  This package scales the scenario
count into the hundreds without inventing fake CVEs:

* :mod:`repro.vulngen.taxonomy` — the SPEC-RG hypercall-handler
  vulnerability classes (missing ownership check, missing privilege
  check, refcount imbalance, bounds/arithmetic error, TOCTOU window),
  mapped to the abusive-functionality taxonomy and to the staticcheck
  rules that model them (R1/R2/R7/R8).

* :mod:`repro.vulngen.render` — renders each corpus entry to a
  vulnerable/hardened pair of hypercall-handler modules, the labelled
  inputs for the ``repro staticcheck-eval`` detection-quality harness.

* :mod:`repro.vulngen.corpus` — a deterministic generator of
  *synthetic vulnerabilities*: each corpus entry is a pure function of
  ``(root_seed, index)``, version-gated through
  :class:`~repro.xen.versions.XenVersion` predicates, and identified
  by an id (``syn-<seed>-<index>-<class>``) that any worker process
  can resolve back into the full spec without shipping state around.

* :mod:`repro.vulngen.synthetic` — turns a spec into a
  :class:`~repro.exploits.base.UseCase` conforming to the same
  contract as the real XSAs, so synthetic vulns inject through the
  standard campaign path and register alongside the paper's four.

* :mod:`repro.vulngen.coverage` — the coverage map: probe-metric
  counters (:class:`repro.probes.MetricsCollector`) bucketed into
  AFL-style features, aggregated into a deterministic digest.

* :mod:`repro.vulngen.schedule` — coverage-guided scheduling for
  fuzz campaigns: novelty-based energy assignment over a corpus of
  (entry, seed, mutation) trials, with every scheduling decision a
  pure function of (root seed, observed coverage digests) so parallel
  campaigns equal serial ones byte for byte.
"""

from repro.vulngen.corpus import (
    Corpus,
    VersionGate,
    VulnSpec,
    generate_corpus,
    is_synthetic_id,
    spec_by_id,
)
from repro.vulngen.coverage import CoverageMap, coverage_features
from repro.vulngen.render import render_pair, render_path, render_source
from repro.vulngen.schedule import (
    CoverageFuzzCampaign,
    CoverageGuidedScheduler,
    CoverageReport,
    TrialPlan,
    UniformScheduler,
)
from repro.vulngen.synthetic import MUTATIONS, make_use_case, run_synthetic_trial
from repro.vulngen.taxonomy import CLASS_RULE_MAP, VulnClass

__all__ = [
    "CLASS_RULE_MAP",
    "Corpus",
    "CoverageFuzzCampaign",
    "CoverageGuidedScheduler",
    "CoverageMap",
    "CoverageReport",
    "MUTATIONS",
    "TrialPlan",
    "UniformScheduler",
    "VersionGate",
    "VulnClass",
    "VulnSpec",
    "coverage_features",
    "generate_corpus",
    "is_synthetic_id",
    "make_use_case",
    "render_pair",
    "render_path",
    "render_source",
    "run_synthetic_trial",
    "spec_by_id",
]
