"""Deterministic generation of the synthetic-vulnerability corpus.

Every corpus entry (:class:`VulnSpec`) is a **pure function of
``(root_seed, index)``**: the generator derives a private
``random.Random`` per entry (no shared RNG state, rule R4), draws the
class-specific parameters from it, and bakes the coordinates into the
entry id — ``syn-<root_seed>-<index>-<class-slug>``.  That makes the
corpus free to regenerate anywhere: a worker process that receives
only the id re-derives the identical spec (:func:`spec_by_id`), the
same way fuzz trials replay from their recorded seed.

Version gating mirrors the real XSAs: each spec carries a
:class:`VersionGate` built from the
:class:`~repro.xen.versions.XenVersion` flag predicates (``has_vuln``
/ ``has_hardening`` — rule R5; never raw name comparisons), anchored
to the real advisory family whose defect class the synthetic entry
instantiates.  The *exploit* path of a synthetic use case refuses on
builds where its gate is closed, while the *injection* path works on
every version — exactly the asymmetry the paper measures for the four
real use cases.

The corpus manifest is canonical JSON with a content digest; the same
root seed yields byte-identical manifests in any process, which CI
asserts.
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

from repro.vulngen.taxonomy import ALL_CLASSES, VulnClass, class_by_slug
from repro.xen.versions import Hardening, Vulnerability, XenVersion

#: Manifest format version (bumped on any derivation change: a corpus
#: is an experiment input, so its derivation is part of its identity).
CORPUS_FORMAT = 1

#: Default generation parameters (the shipped corpus).
DEFAULT_ROOT_SEED = 2023
DEFAULT_SIZE = 125  # 25 entries per class


@dataclass(frozen=True)
class VersionGate:
    """Presence predicate for a synthetic defect, over version flags.

    ``kind == "vuln"`` — present while the anchoring real advisory is
    unfixed (``version.has_vuln(flag)``); ``kind == "no-hardening"`` —
    present until the named hardening ships
    (``not version.has_hardening(flag)``).
    """

    kind: str  # "vuln" | "no-hardening"
    flag: str  # Vulnerability / Hardening enum member name

    def applies(self, version: XenVersion) -> bool:
        """Is the synthetic defect present in this build?"""
        if self.kind == "vuln":
            return version.has_vuln(Vulnerability[self.flag])
        if self.kind == "no-hardening":
            return not version.has_hardening(Hardening[self.flag])
        raise ValueError(f"unknown gate kind {self.kind!r}")

    @property
    def advisory(self) -> str:
        """The real advisory/hardening family anchoring the gate."""
        if self.kind == "vuln":
            return Vulnerability[self.flag].value
        return Hardening[self.flag].value


#: Per-class gate pools: the real advisory families whose defect class
#: the synthetic entries instantiate.  Drawn deterministically per
#: entry.
_GATE_POOL: Dict[VulnClass, Tuple[VersionGate, ...]] = {
    VulnClass.MISSING_OWNERSHIP_CHECK: (
        VersionGate("vuln", "XSA_148"),
        VersionGate("vuln", "XSA_182"),
        VersionGate("vuln", "XSA_387"),
    ),
    VulnClass.MISSING_PRIVILEGE_CHECK: (
        VersionGate("vuln", "XSA_212"),
        VersionGate("vuln", "XSA_148"),
    ),
    VulnClass.REFCOUNT_IMBALANCE: (
        VersionGate("vuln", "XSA_387"),
        VersionGate("vuln", "XSA_393"),
        VersionGate("vuln", "XSA_212"),
    ),
    VulnClass.BOUNDS_ERROR: (
        VersionGate("vuln", "XSA_212"),
        VersionGate("vuln", "XSA_148"),
    ),
    VulnClass.TOCTOU_WINDOW: (
        VersionGate("vuln", "XSA_393"),
        VersionGate("vuln", "XSA_182"),
        VersionGate("no-hardening", "LINEAR_PT_RESTRICTED"),
    ),
}

#: Per-class component pools (targets resolved on a live testbed by
#: :mod:`repro.vulngen.synthetic`).  Names deliberately reuse the fuzz
#: campaign's component vocabulary.
_COMPONENT_POOL: Dict[VulnClass, Tuple[str, ...]] = {
    VulnClass.MISSING_OWNERSHIP_CHECK: ("victim-data", "victim-pagetables"),
    VulnClass.MISSING_PRIVILEGE_CHECK: ("idt", "m2p", "shared-pud"),
    VulnClass.REFCOUNT_IMBALANCE: ("victim-pagetables",),
    VulnClass.BOUNDS_ERROR: ("victim-data", "m2p"),
    VulnClass.TOCTOU_WINDOW: ("victim-pagetables", "idt"),
}


@dataclass(frozen=True)
class VulnSpec:
    """One synthetic injectable vulnerability, fully parameterized."""

    id: str
    index: int
    root_seed: int
    vuln_class: VulnClass
    component: str
    gate: VersionGate
    #: Index into the component's candidate-frame list (mod length).
    frame_pick: int
    #: Base word within the target frame (bounds entries start near
    #: the frame's end so the write crosses into the next frame).
    word: int
    #: The crafted 64-bit value.
    value: int
    #: Words written (> 1 only for bounds entries).
    span: int = 1

    def to_manifest_entry(self) -> dict:
        entry = asdict(self)
        entry["vuln_class"] = self.vuln_class.value
        return entry


def _entry_seed(root_seed: int, index: int) -> int:
    blob = f"{root_seed}:vulngen:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def derive_spec(root_seed: int, index: int) -> VulnSpec:
    """The generator core: ``(root_seed, index) -> VulnSpec``, pure."""
    if index < 0:
        raise ValueError(f"corpus index must be non-negative, got {index}")
    rng = random.Random(_entry_seed(root_seed, index))
    vuln_class = ALL_CLASSES[index % len(ALL_CLASSES)]
    component = _COMPONENT_POOL[vuln_class][
        rng.randrange(len(_COMPONENT_POOL[vuln_class]))
    ]
    gate = _GATE_POOL[vuln_class][rng.randrange(len(_GATE_POOL[vuln_class]))]
    frame_pick = rng.randrange(8)
    if vuln_class is VulnClass.BOUNDS_ERROR:
        span = rng.randrange(2, 5)  # 2..4 words
        word = 512 - rng.randrange(1, span)  # crosses the frame boundary
    else:
        span = 1
        word = rng.randrange(512)
    value = rng.getrandbits(64)
    return VulnSpec(
        id=f"syn-{root_seed}-{index:04d}-{vuln_class.value}",
        index=index,
        root_seed=root_seed,
        vuln_class=vuln_class,
        component=component,
        gate=gate,
        frame_pick=frame_pick,
        word=word,
        value=value,
        span=span,
    )


_ID_PATTERN = re.compile(r"^syn-(\d+)-(\d{4,})-([a-z][a-z-]*)$")


def is_synthetic_id(name: str) -> bool:
    """Does ``name`` look like a synthetic corpus id?"""
    return bool(_ID_PATTERN.match(name))


def spec_by_id(vuln_id: str) -> VulnSpec:
    """Rebuild the full spec from its id alone (worker-side lookup).

    The id carries the derivation coordinates, so this is exact — the
    class slug is verified against the re-derivation to catch
    hand-edited ids.
    """
    match = _ID_PATTERN.match(vuln_id)
    if match is None:
        raise KeyError(
            f"{vuln_id!r} is not a synthetic vulnerability id "
            "(expected 'syn-<seed>-<index>-<class>')"
        )
    root_seed, index, slug = int(match.group(1)), int(match.group(2)), match.group(3)
    class_by_slug(slug)  # reject unknown class slugs with a clear error
    spec = derive_spec(root_seed, index)
    if spec.vuln_class.value != slug:
        raise KeyError(
            f"id {vuln_id!r} names class {slug!r} but (seed={root_seed}, "
            f"index={index}) derives {spec.vuln_class.value!r}"
        )
    return spec


@dataclass
class Corpus:
    """A generated set of synthetic vulnerabilities."""

    root_seed: int
    specs: List[VulnSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def ids(self) -> List[str]:
        return [spec.id for spec in self.specs]

    def by_class(self) -> Dict[str, int]:
        """Entry count per class slug, sorted by slug."""
        counts: Dict[str, int] = {}
        for spec in self.specs:
            counts[spec.vuln_class.value] = counts.get(spec.vuln_class.value, 0) + 1
        return {slug: counts[slug] for slug in sorted(counts)}

    def manifest(self) -> dict:
        """The canonical manifest: entries plus a content digest."""
        entries = [spec.to_manifest_entry() for spec in self.specs]
        blob = json.dumps(entries, sort_keys=True).encode()
        return {
            "format": CORPUS_FORMAT,
            "root_seed": self.root_seed,
            "size": len(self.specs),
            "classes": self.by_class(),
            "digest": hashlib.sha256(blob).hexdigest(),
            "entries": entries,
        }

    def manifest_json(self) -> str:
        """Byte-stable JSON rendering (the CI artifact)."""
        return json.dumps(self.manifest(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        """Human-readable corpus table."""
        lines = [
            f"synthetic vulnerability corpus (root seed {self.root_seed}, "
            f"{len(self.specs)} entries)",
            f"{'id':<42}{'component':<20}{'gate':<22}{'word':<6}{'span':<5}",
            "-" * 95,
        ]
        for spec in self.specs:
            lines.append(
                f"{spec.id:<42}{spec.component:<20}"
                f"{spec.gate.advisory:<22}{spec.word:<6}{spec.span:<5}"
            )
        by_class = ", ".join(f"{k}: {v}" for k, v in self.by_class().items())
        lines += ["-" * 95, f"per class: {by_class}"]
        return "\n".join(lines)


def generate_corpus(
    root_seed: int = DEFAULT_ROOT_SEED, size: int = DEFAULT_SIZE
) -> Corpus:
    """Generate ``size`` synthetic vulnerabilities from ``root_seed``."""
    if size < 1:
        raise ValueError(f"corpus size must be positive, got {size}")
    return Corpus(
        root_seed=root_seed,
        specs=[derive_spec(root_seed, index) for index in range(size)],
    )
