"""The coverage map: probe counters as fuzzing feedback.

The PR 5 probe layer already counts every interesting event a trial
provokes (hypercalls by number and return code, trap deliveries,
page-table validations, refcount transitions, frames dirtied,
crashes).  Those counters *are* a coverage signal: a corrupted word
that sends the hypervisor down a new path changes which counters fire
and how often.  This module turns them into an AFL-style map:

* a **feature** is ``counter:bucket`` where the bucket is the count's
  bit length (log2 bucketing — "happened" vs "happened a lot" are
  distinct features, exact counts are not);
* the **map** is the set of features any trial has ever exhibited;
* a trial is **novel** if it contributes at least one unseen feature.

Everything is a set of sorted strings with a SHA-256 digest, so two
campaigns that observed the same trials hold byte-identical maps —
the property the coverage-guided scheduler builds its determinism on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Set


def coverage_features(counters: Dict[str, int]) -> List[str]:
    """Bucket a counter dict into sorted coverage features.

    The dict-level twin of
    :meth:`repro.probes.metrics.MetricsCollector.coverage_signature`
    (the probe layer cannot import this package, so the bucketing rule
    lives in both places; the tests pin them equal).
    """
    return [
        f"{key}:{counters[key].bit_length()}"
        for key in sorted(counters)
        if counters[key] > 0
    ]


class CoverageMap:
    """The set of coverage features observed so far, with a digest."""

    def __init__(self) -> None:
        self._seen: Set[str] = set()

    def __len__(self) -> int:
        return len(self._seen)

    def observe(self, features: Iterable[str]) -> int:
        """Fold one trial's features in; return how many were new."""
        new = [f for f in features if f not in self._seen]
        self._seen.update(new)
        return len(new)

    def is_novel(self, features: Iterable[str]) -> bool:
        """Would this trial contribute at least one unseen feature?"""
        return any(f not in self._seen for f in features)

    def features(self) -> List[str]:
        """All observed features, sorted (the persistable form)."""
        return sorted(self._seen)

    @property
    def digest(self) -> str:
        """Content digest of the map — the scheduler's only view of
        execution history, which is what makes schedules a pure
        function of (root seed, observed coverage)."""
        blob = "\n".join(self.features()).encode()
        return hashlib.sha256(blob).hexdigest()
