"""Synthetic use cases: corpus specs as first-class ``UseCase``\\ s.

:func:`make_use_case` turns a :class:`~repro.vulngen.corpus.VulnSpec`
into a class satisfying the exact contract the four hand-written XSA
use cases satisfy — no-arg construction, class-level ``name`` /
``advisory`` / ``functionality``, ``run_exploit`` / ``run_injection``
twins, audit and detection — so ``Campaign.run``, ``inject_by_name``
and the runner execute synthetic vulnerabilities through the very same
code path as the real ones.

The twins mirror the paper's asymmetry:

* ``run_exploit`` models abusing the synthetic defect itself, so it
  checks the spec's :class:`~repro.vulngen.corpus.VersionGate` first
  and refuses (``ExploitFailed``) on builds where the anchoring
  advisory is fixed;
* ``run_injection`` recreates the post-intrusion erroneous state with
  the ``arbitrary_access`` injector and therefore works on *every*
  version — that substitutability is the paper's core claim.

Each taxonomy class maps to an injection template (DESIGN.md §11):

=====================  ==============================================
class                  erroneous state injected
=====================  ==============================================
missing-ownership      attacker-chosen word in a victim-owned frame
                       (physical-mode write)
missing-privilege      attacker-chosen word in hypervisor-reserved
                       memory (linear-mode write via the directmap)
refcount-imbalance     a writable L1 alias of a live page-table frame
                       (the retype a get/put imbalance permits)
bounds-error           a span write that crosses the target frame's
                       boundary into its neighbour
toctou-window          a validated word whose content flips after a
                       scheduling tick (decoy write, tick, real write)
=====================  ==============================================

:func:`run_synthetic_trial` is the fuzz-side entry point: one spec +
one mutation + one private seed -> one classified
:class:`~repro.core.fuzz.FuzzResult`, optionally with the trial's
coverage signature attached (the coverage-guided scheduler's raw
material).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import types as _types

from repro.core.erroneous_state import ErroneousStateReport
from repro.core.fuzz import FuzzResult, RandomErroneousStateCampaign, default_components
from repro.core.injector import ArbitraryAccessAction, IntrusionInjector
from repro.core.monitor import (
    CrashMonitor,
    IdtIntegrityMonitor,
    ViolationReport,
)
from repro.core.testbed import build_testbed
from repro.errors import GuestFault, HypervisorCrash
from repro.exploits.base import ExploitFailed, UseCase
from repro.guest.kernel import KernelOops
from repro.vulngen.corpus import VulnSpec
from repro.vulngen.taxonomy import CLASS_FUNCTIONALITY, VulnClass
from repro.xen import layout
from repro.xen.constants import PAGE_SIZE, PTE_PRESENT, PTE_RW
from repro.xen.paging import make_pte

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed
    from repro.xen.versions import XenVersion

_MASK64 = (1 << 64) - 1


def _component_frames(bed: "TestBed", component: str) -> List[int]:
    """Resolve a component name to its candidate frames, reusing the
    fuzz campaign's selector table so the vocabularies stay aligned."""
    for target in default_components():
        if target.name == component:
            return list(target.frames(bed))
    raise KeyError(f"unknown component {component!r}")


class SyntheticUseCase(UseCase, register=False):
    """Base of all generated use cases (never instantiated directly).

    Subclasses produced by :func:`make_use_case` bind ``spec`` at class
    level; everything else — target resolution, the per-class write
    plan, audit, detection — is shared here.  ``register=False``: a
    synthetic id resolves through the corpus (it *is* its own spec),
    so the global registry stays bounded by the hand-written cases.
    """

    spec: VulnSpec

    def __init__(self) -> None:
        self.target_mfn: Optional[int] = None
        #: The final expected erroneous words: ``[(mfn, word, value)]``.
        self.writes: List[Tuple[int, int, int]] = []
        #: Did the injected values differ from what was there before?
        self.changed: bool = False

    # ------------------------------------------------------------------
    # Write plan
    # ------------------------------------------------------------------

    def _plan(self, bed: "TestBed") -> List[Tuple[int, int, int]]:
        """The erroneous words this spec leaves behind (final state)."""
        spec = self.spec
        frames = _component_frames(bed, spec.component)
        mfn = frames[spec.frame_pick % len(frames)]
        self.target_mfn = mfn
        if spec.vuln_class is VulnClass.BOUNDS_ERROR:
            return [
                (
                    mfn + (spec.word + i) // 512,
                    (spec.word + i) % 512,
                    (spec.value + i) & _MASK64,
                )
                for i in range(spec.span)
            ]
        if spec.vuln_class is VulnClass.REFCOUNT_IMBALANCE:
            # The consequence of the imbalance: a writable alias of the
            # live page-table frame, parked in a victim L1 slot.
            victim = bed.victim_domain
            alias_slot_frame = victim.pfn_to_mfn(victim.kernel.l1_pfns[0])
            alias = make_pte(mfn, PTE_PRESENT | PTE_RW)
            return [(alias_slot_frame, spec.word, alias)]
        return [(mfn, spec.word, spec.value)]

    def _record(self, bed: "TestBed", plan: List[Tuple[int, int, int]]) -> None:
        previous = [bed.xen.machine.read_word(m, w) for m, w, _ in plan]
        self.writes = list(plan)
        self.changed = any(p != v for p, (_, _, v) in zip(previous, plan))

    # ------------------------------------------------------------------
    # Exploit / injection twins
    # ------------------------------------------------------------------

    def run_exploit(self, bed: "TestBed") -> None:
        """Abuse the synthetic defect (present only while the gate's
        anchoring advisory is unfixed on this build)."""
        kernel = bed.attacker_domain.kernel
        spec = self.spec
        if not spec.gate.applies(bed.xen.version):
            kernel.printk(
                f"{spec.id}: not vulnerable ({spec.gate.advisory} "
                "family is fixed on this version)"
            )
            raise ExploitFailed(
                f"synthetic defect {spec.id} absent on {bed.xen.version.name}"
            )
        plan = self._plan(bed)
        self._record(bed, plan)
        kernel.printk(
            f"{spec.id}: abusing {spec.vuln_class.value} defect in "
            f"{spec.component} ({spec.gate.advisory} family)"
        )
        if spec.vuln_class is VulnClass.TOCTOU_WINDOW:
            mfn, word, value = plan[0]
            bed.xen.machine.write_word(mfn, word, value ^ _MASK64)
            bed.tick()  # the check/use window
            bed.xen.machine.write_word(mfn, word, value)
            return
        for mfn, word, value in plan:
            bed.xen.machine.write_word(mfn, word, value)

    def run_injection(self, bed: "TestBed") -> None:
        """Recreate the same erroneous state with ``arbitrary_access``
        — works on every version, that is the injector's point."""
        kernel = bed.attacker_domain.kernel
        spec = self.spec
        plan = self._plan(bed)
        self._record(bed, plan)
        injector = IntrusionInjector(kernel)
        kernel.printk(
            f"{spec.id}: injecting {spec.vuln_class.value} erroneous "
            f"state into {spec.component}"
        )
        if spec.vuln_class is VulnClass.MISSING_PRIVILEGE_CHECK:
            mfn, word, value = plan[0]
            rc = injector.write_word(layout.directmap_va(mfn, word), value)
        elif spec.vuln_class is VulnClass.BOUNDS_ERROR:
            base_mfn, base_word, _ = plan[0]
            rc = injector.write(
                base_mfn * PAGE_SIZE + base_word * 8,
                [value for _, _, value in plan],
                ArbitraryAccessAction.WRITE_PHYSICAL,
            )
        elif spec.vuln_class is VulnClass.TOCTOU_WINDOW:
            mfn, word, value = plan[0]
            addr = layout.directmap_va(mfn, word)
            rc = injector.write_word(addr, value ^ _MASK64)
            if rc == 0:
                bed.tick()  # the check/use window
                rc = injector.write_word(addr, value)
        else:  # ownership / refcount: physical-mode single word
            mfn, word, value = plan[0]
            rc = injector.write_word(mfn * PAGE_SIZE + word * 8, value, linear=False)
        if rc != 0:
            raise ExploitFailed(f"arbitrary_access failed: rc={rc}")

    # ------------------------------------------------------------------
    # Audit / detection
    # ------------------------------------------------------------------

    def audit_erroneous_state(self, bed: "TestBed") -> ErroneousStateReport:
        spec = self.spec
        if not self.writes:
            self._record(bed, self._plan(bed))
        readback = [
            (m, w, v, bed.xen.machine.read_word(m, w)) for m, w, v in self.writes
        ]
        achieved = all(found == v for _, _, v, found in readback)
        return ErroneousStateReport(
            achieved=achieved,
            description=(
                f"{spec.vuln_class.value} erroneous state in {spec.component}"
            ),
            fingerprint={
                "class": spec.vuln_class.value,
                "component": spec.component,
                "word": spec.word,
                "span": spec.span,
                "values": [f"{v:#018x}" for _, _, v in self.writes],
            },
            evidence=[
                f"mfn {m:#06x}[{w}] = {found:#018x} (expected {v:#018x})"
                for m, w, v, found in readback
            ],
        )

    def detect_violation(self, bed: "TestBed") -> ViolationReport:
        crash = CrashMonitor().observe(bed)
        if crash.occurred:
            return crash
        if self.spec.component == "idt":
            idt = IdtIntegrityMonitor().observe(bed)
            if idt.occurred:
                return idt
        victim_frames = {m for m in bed.victim_domain.p2m if m is not None}
        corrupted = [
            (m, w, v)
            for m, w, v in self.writes
            if m in victim_frames and bed.xen.machine.read_word(m, w) == v
        ]
        if self.changed and corrupted:
            return ViolationReport(
                occurred=True,
                kind="integrity violation (victim-owned state corrupted)",
                evidence=[
                    f"victim mfn {m:#06x}[{w}] holds injected {v:#018x}"
                    for m, w, v in corrupted
                ],
            )
        return ViolationReport.none()


def make_use_case(spec: VulnSpec) -> type:
    """Build the per-spec ``UseCase`` class (uniform campaign entry)."""

    def fill(ns: dict) -> None:
        ns["spec"] = spec
        ns["name"] = spec.id
        ns["advisory"] = spec.gate.advisory
        ns["functionality"] = CLASS_FUNCTIONALITY[spec.vuln_class]
        ns["description"] = (
            f"synthetic {spec.vuln_class.value} defect in {spec.component} "
            f"({spec.gate.advisory} family, corpus seed {spec.root_seed})"
        )
        ns["__doc__"] = ns["description"]

    return _types.new_class(
        f"Synthetic_{spec.index:04d}",
        (SyntheticUseCase,),
        {"register": False},
        fill,
    )


# ----------------------------------------------------------------------
# Mutations (the fuzz dimension over a corpus entry)
# ----------------------------------------------------------------------


def _mut_baseline(spec: VulnSpec, rng: random.Random) -> VulnSpec:
    return spec


def _mut_bitflip(spec: VulnSpec, rng: random.Random) -> VulnSpec:
    return replace(spec, value=spec.value ^ (1 << rng.randrange(64)))


def _mut_word_shift(spec: VulnSpec, rng: random.Random) -> VulnSpec:
    if spec.vuln_class is VulnClass.BOUNDS_ERROR:
        return replace(spec, word=512 - rng.randrange(1, spec.span))
    return replace(spec, word=rng.randrange(512))


def _mut_zero(spec: VulnSpec, rng: random.Random) -> VulnSpec:
    return replace(spec, value=0)


def _mut_ones(spec: VulnSpec, rng: random.Random) -> VulnSpec:
    return replace(spec, value=_MASK64)


#: Name -> mutation operator.  A trial's mutated spec is a pure
#: function of ``(entry id, mutation name, trial seed)`` — every draw
#: comes from the trial's private RNG before any other use — so any
#: worker (or a later replay) re-derives it exactly.
MUTATIONS: Dict[str, Callable[[VulnSpec, random.Random], VulnSpec]] = {
    "baseline": _mut_baseline,
    "bitflip": _mut_bitflip,
    "word-shift": _mut_word_shift,
    "zero": _mut_zero,
    "ones": _mut_ones,
}

#: Stable iteration order for schedulers.
MUTATION_NAMES: Tuple[str, ...] = tuple(sorted(MUTATIONS))


def run_synthetic_trial(
    spec: VulnSpec,
    version: "XenVersion",
    seed: int,
    mutation: str = "baseline",
    collect_coverage: bool = False,
) -> FuzzResult:
    """One fuzz trial of one corpus entry on a fresh testbed.

    Injects the (mutated) spec through its use case, exercises the
    system with the standard fuzz workload, classifies the outcome
    with the standard classifier, and — when ``collect_coverage`` —
    attaches the trial's probe-coverage signature to the result.
    """
    try:
        mutate = MUTATIONS[mutation]
    except KeyError:
        raise KeyError(
            f"unknown mutation {mutation!r}; known: {sorted(MUTATIONS)}"
        ) from None
    rng = random.Random(seed)
    mutated = mutate(spec, rng)
    bed = build_testbed(version)
    collector = None
    if collect_coverage:
        from repro.probes.metrics import MetricsCollector

        collector = MetricsCollector(bed.probes).attach()
    use_case: SyntheticUseCase = make_use_case(mutated)()
    use_case.prepare(bed)
    outcome = None
    try:
        use_case.run_injection(bed)
    except ExploitFailed:
        outcome = "refused"
    except (HypervisorCrash, KernelOops, GuestFault):
        outcome = "crash" if bed.xen.crashed else "exception"
    if outcome is None:
        outcome = RandomErroneousStateCampaign._exercise(
            bed,
            use_case.target_mfn if use_case.target_mfn is not None else 0,
            mutated.word % 512,
            changed=use_case.changed,
        )
    coverage: Optional[List[str]] = None
    if collector is not None:
        coverage = collector.coverage_signature()
        collector.detach()
    return FuzzResult(
        component=spec.id,
        mfn=use_case.target_mfn if use_case.target_mfn is not None else -1,
        word=mutated.word,
        value=mutated.value,
        outcome=outcome,
        seed=seed,
        coverage=coverage,
    )
