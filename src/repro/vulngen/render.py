"""Render corpus entries to analyzable hypercall-handler source.

Each :class:`~repro.vulngen.corpus.VulnSpec` renders to a pair of
Python modules shaped like the simulator's own ``repro.xen``
hypercall handlers: a **vulnerable** variant that instantiates the
entry's defect class, and a **hardened** variant with the missing
check restored.  The pair is what the detection-evaluation harness
(:mod:`repro.staticcheck.evaluation`) feeds to the static checker —
the vulnerable variant is the positive label, the hardened one the
negative.

Rendering is a pure function of the spec: identifier choices, the
handler layout (direct sink vs. helper indirection) and the baked-in
constants (frame word, crafted value, span) are all drawn from an RNG
seeded by the entry id, so the same corpus renders byte-identically
anywhere — a requirement inherited from the manifest (rule R4).

The virtual path for a rendered module is
``src/repro/xen/synthetic/<id>/hypercalls.py``: the ``hypercalls.py``
basename puts the handlers inside the dataflow engine's
guest-taint-root set, and the ``repro/xen/`` fragment keeps the file
in R1's and the engine's analysis scope.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.vulngen.corpus import VulnSpec
from repro.vulngen.taxonomy import VulnClass

#: Identifier pools the renderer draws from (per-entry, deterministic).
_HANDLER_VERBS = ("update", "apply", "commit", "install", "program")
_HANDLER_NOUNS = ("entry", "slot", "frame", "mapping", "window")
_CLASS_NAMES = ("SyntheticOps", "TableOps", "FrameOps", "MapOps")
_ARG_NAMES = ("op", "req", "args")


def render_path(spec: VulnSpec, hardened: bool = False) -> str:
    """The virtual source path the evaluation analyses the module under."""
    variant = "hardened" if hardened else "vulnerable"
    return f"src/repro/xen/synthetic/{spec.id}/{variant}/hypercalls.py"


def _rng(spec: VulnSpec) -> random.Random:
    return random.Random(f"{spec.id}:render")


def _names(spec: VulnSpec) -> dict:
    rng = _rng(spec)
    verb = rng.choice(_HANDLER_VERBS)
    noun = rng.choice(_HANDLER_NOUNS)
    return {
        "cls": rng.choice(_CLASS_NAMES),
        "handler": f"do_{verb}_{noun}",
        "helper": f"_{verb}_{noun}",
        "arg": rng.choice(_ARG_NAMES),
        "indirect": rng.random() < 0.5,
    }


def _header(spec: VulnSpec, hardened: bool) -> List[str]:
    variant = "hardened" if hardened else "vulnerable"
    return [
        f'"""Synthetic handler {spec.id} ({variant} variant).',
        "",
        f"Class: {spec.vuln_class.value}; component: {spec.component};",
        f"anchored to {spec.gate.advisory}.  Rendered by repro.vulngen.render.",
        '"""',
        "",
        f"WORD = {spec.word}",
        f"VALUE = 0x{spec.value:016x}",
        f"SPAN = {spec.span}",
        "",
        "",
    ]


def _ownership(spec: VulnSpec, names: dict, hardened: bool) -> List[str]:
    arg = names["arg"]
    guard = [
        f"        if self.xen.frames.owner_of(mfn) != domain.id:",
        f'            raise HypercallError("foreign frame")',
    ]
    if names["indirect"]:
        body = [
            f"    def {names['handler']}(self, domain, {arg}):",
            f"        mfn = {arg}.mfn",
            f"        value = {arg}.value",
            *(guard if hardened else []),
            f"        self.{names['helper']}(mfn, value)",
            "",
            f"    def {names['helper']}(self, mfn, value):",
            "        self.machine.write_word(mfn, WORD, value)",
        ]
    else:
        body = [
            f"    def {names['handler']}(self, domain, {arg}):",
            f"        mfn = {arg}.mfn",
            *(guard if hardened else []),
            f"        self.machine.write_word(mfn, WORD, {arg}.value)",
        ]
    return body


def _privilege(spec: VulnSpec, names: dict, hardened: bool) -> List[str]:
    arg = names["arg"]
    guard = [
        "        if not domain.is_privileged:",
        f'            raise HypercallError("{spec.component} is reserved")',
    ]
    return [
        f"    def {names['handler']}(self, domain, {arg}):",
        f"        slot = {arg}.slot",
        *(guard if hardened else []),
        "        va = self.xen.directmap_va(slot)",
        f"        self.machine.write_word(va, WORD, {arg}.value)",
    ]


def _refcount(spec: VulnSpec, names: dict, hardened: bool) -> List[str]:
    arg = names["arg"]
    release = ["            self.xen.frames.put_page(mfn)"] if hardened else []
    return [
        f"    def {names['handler']}(self, domain, {arg}):",
        f"        mfn = {arg}.mfn",
        "        if self.xen.frames.owner_of(mfn) != domain.id:",
        '            raise HypercallError("foreign frame")',
        "        self.xen.frames.get_page(mfn)",
        f"        if {arg}.flags & 0x1:",
        *release,
        '            raise HypercallError("bad flags")',
        "        self.machine.write_word(mfn, WORD, VALUE)",
        "        self.xen.frames.put_page(mfn)",
    ]


def _bounds(spec: VulnSpec, names: dict, hardened: bool) -> List[str]:
    arg = names["arg"]
    guard = [
        f"        if base + {arg}.count > 512:",
        '            raise HypercallError("window overflow")',
    ]
    return [
        f"    def {names['handler']}(self, domain, {arg}):",
        f"        base = {arg}.offset",
        *(guard if hardened else []),
        f"        for i in range({arg}.count):",
        f"            self.machine.write_word(self.table_mfn, base + i, {arg}.value)",
    ]


def _toctou(spec: VulnSpec, names: dict, hardened: bool) -> List[str]:
    arg = names["arg"]
    recheck = [
        "        if self.xen.frames.owner_of(mfn) != domain.id:",
        '            raise HypercallError("owner changed across the window")',
    ]
    return [
        f"    def {names['handler']}(self, domain, {arg}):",
        f"        mfn = {arg}.mfn",
        "        if self.xen.frames.owner_of(mfn) != domain.id:",
        '            raise HypercallError("foreign frame")',
        "        self.xen.tick()",
        *(recheck if hardened else []),
        f"        self.machine.write_word(mfn, WORD, {arg}.value)",
    ]


_TEMPLATES = {
    VulnClass.MISSING_OWNERSHIP_CHECK: _ownership,
    VulnClass.MISSING_PRIVILEGE_CHECK: _privilege,
    VulnClass.REFCOUNT_IMBALANCE: _refcount,
    VulnClass.BOUNDS_ERROR: _bounds,
    VulnClass.TOCTOU_WINDOW: _toctou,
}


def render_source(spec: VulnSpec, hardened: bool = False) -> str:
    """Render one variant of ``spec`` to handler source."""
    names = _names(spec)
    lines = _header(spec, hardened)
    lines += [
        "class HypercallError(Exception):",
        "    pass",
        "",
        "",
        f"class {names['cls']}:",
    ]
    lines += _TEMPLATES[spec.vuln_class](spec, names, hardened)
    return "\n".join(lines) + "\n"


def render_pair(spec: VulnSpec) -> Tuple[str, str]:
    """(vulnerable_source, hardened_source) for one corpus entry."""
    return render_source(spec, hardened=False), render_source(spec, hardened=True)
