"""The abusive-functionality classification study (paper §IV-D).

Aggregates a classified CVE dataset into Table I: per-functionality
CVE counts, per-class totals, and the observation that functionality
assignments exceed the CVE count because some vulnerabilities yield
more than one abusive functionality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.taxonomy import AbusiveFunctionality, FunctionalityClass
from repro.cvedata.records import XEN_CVE_STUDY, CveRecord


@dataclass
class FunctionalityStudy:
    """Aggregated view over a set of classified CVE records."""

    records: Tuple[CveRecord, ...]

    @classmethod
    def default(cls) -> "FunctionalityStudy":
        """The paper's 100-CVE study."""
        return cls(records=XEN_CVE_STUDY)

    # -- aggregate counts -----------------------------------------------------

    @property
    def num_cves(self) -> int:
        return len(self.records)

    @property
    def num_assignments(self) -> int:
        """Total functionality assignments (> num_cves: Table I note)."""
        return sum(len(r.functionalities) for r in self.records)

    def functionality_counts(self) -> Dict[AbusiveFunctionality, int]:
        counts = {functionality: 0 for functionality in AbusiveFunctionality}
        for record in self.records:
            for functionality in record.functionalities:
                counts[functionality] += 1
        return counts

    def class_counts(self) -> Dict[FunctionalityClass, int]:
        """Per-class totals — the "Memory Access – 35 CVEs" headers.

        Like the paper's headers, a class total is the sum of its
        functionality rows, so multi-functionality CVEs contribute to
        every class (and row) they touch.
        """
        counts = self.functionality_counts()
        totals = {klass: 0 for klass in FunctionalityClass}
        for functionality, count in counts.items():
            totals[functionality.functionality_class] += count
        return totals

    def multi_functionality_cves(self) -> List[CveRecord]:
        """The CVEs with more than one abusive functionality (§IV-D
        names CVE-2019-17343 and CVE-2020-27672 as examples)."""
        return [r for r in self.records if r.is_multi_functionality]

    # -- queries -----------------------------------------------------------------

    def records_for(self, functionality: AbusiveFunctionality) -> List[CveRecord]:
        return [r for r in self.records if functionality in r.functionalities]

    def records_in_class(self, klass: FunctionalityClass) -> List[CveRecord]:
        return [
            r
            for r in self.records
            if any(f.functionality_class is klass for f in r.functionalities)
        ]

    def by_year(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for record in self.records:
            histogram[record.year] = histogram.get(record.year, 0) + 1
        return dict(sorted(histogram.items()))

    def by_component(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for record in self.records:
            histogram[record.component] = histogram.get(record.component, 0) + 1
        return dict(sorted(histogram.items(), key=lambda kv: -kv[1]))

    # -- invariants ----------------------------------------------------------------

    def validate(self) -> None:
        """Structural sanity: unique CVE ids, non-empty assignments."""
        seen = set()
        for record in self.records:
            if record.cve_id in seen:
                raise ValueError(f"duplicate CVE id {record.cve_id}")
            seen.add(record.cve_id)
            if not record.functionalities:
                raise ValueError(f"{record.cve_id} has no functionality")


#: The per-row counts of Table I as published.  Two rows are illegible
#: in the available text of the paper ("Read Unauthorized Memory",
#: "Write Unauthorized Memory", "Write Unauthorized Arbitrary Memory",
#: "R/W Unauthorized Memory", "Fail a Memory Access", "Decrease Page
#: Mapping Availability", "Guest-Writable Page Table Entry" and
#: "Uncontrolled Memory Allocation" carry reconstructed values chosen
#: to satisfy the published class totals 35/40/11/22); the remaining
#: rows (04, 04, 02, 11, 06, 05, 20, 02) are the published numbers.
TABLE_I_EXPECTED: Dict[AbusiveFunctionality, int] = {
    AbusiveFunctionality.READ_UNAUTHORIZED_MEMORY: 12,
    AbusiveFunctionality.WRITE_UNAUTHORIZED_MEMORY: 8,
    AbusiveFunctionality.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY: 5,
    AbusiveFunctionality.RW_UNAUTHORIZED_MEMORY: 7,
    AbusiveFunctionality.FAIL_A_MEMORY_ACCESS: 3,
    AbusiveFunctionality.CORRUPT_VIRTUAL_MEMORY_MAPPING: 4,
    AbusiveFunctionality.CORRUPT_A_PAGE_REFERENCE: 4,
    AbusiveFunctionality.DECREASE_PAGE_MAPPING_AVAILABILITY: 6,
    AbusiveFunctionality.GUEST_WRITABLE_PAGE_TABLE_ENTRY: 4,
    AbusiveFunctionality.FAIL_A_MEMORY_MAPPING: 2,
    AbusiveFunctionality.UNCONTROLLED_MEMORY_ALLOCATION: 9,
    AbusiveFunctionality.KEEP_PAGE_ACCESS: 11,
    AbusiveFunctionality.INDUCE_A_FATAL_EXCEPTION: 6,
    AbusiveFunctionality.INDUCE_A_MEMORY_EXCEPTION: 5,
    AbusiveFunctionality.INDUCE_A_HANG_STATE: 20,
    AbusiveFunctionality.UNCONTROLLED_ARBITRARY_INTERRUPT_REQUESTS: 2,
}

#: The published class totals of Table I.
TABLE_I_CLASS_TOTALS: Dict[FunctionalityClass, int] = {
    FunctionalityClass.MEMORY_ACCESS: 35,
    FunctionalityClass.MEMORY_MANAGEMENT: 40,
    FunctionalityClass.EXCEPTIONAL_CONDITIONS: 11,
    FunctionalityClass.NON_MEMORY: 22,
}
