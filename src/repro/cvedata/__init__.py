"""The 100-CVE abusive-functionality study (paper §IV-D, Table I)."""

from repro.cvedata.records import CveRecord, XEN_CVE_STUDY
from repro.cvedata.study import FunctionalityStudy

__all__ = ["CveRecord", "XEN_CVE_STUDY", "FunctionalityStudy"]
