"""The 100 memory-related Xen CVE records of the §IV-D study.

The paper "randomly selected 100 CVEs from the Xen Security Advisory
list" and classified the abusive functionality an attacker might
acquire from each.  The original record-level assignments are not
published — only Table I's aggregates — so this dataset is a
*reconstruction*: the advisories with well-known classifications
(XSA-148, XSA-182, XSA-212, XSA-387, XSA-393, the two explicitly
dual-functionality CVEs 2019-17343 and 2020-27672, ...) are assigned
faithfully, and the remainder are synthesised so that every per-row
count of Table I is reproduced exactly (see EXPERIMENTS.md for the two
rows whose counts are illegible in the source text and were chosen to
satisfy the published class totals).

Eight CVEs carry two abusive functionalities — "some CVEs can have
more than one abusive functionality depending on how they are
exploited" — which is why the functionality rows sum to 108 over 100
CVEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.taxonomy import AbusiveFunctionality as AF


@dataclass(frozen=True)
class CveRecord:
    """One classified vulnerability."""

    cve_id: str
    xsa_id: str
    year: int
    component: str
    summary: str
    functionalities: Tuple[AF, ...]

    @property
    def is_multi_functionality(self) -> bool:
        return len(self.functionalities) > 1


def _r(cve, xsa, year, component, summary, *afs) -> CveRecord:
    return CveRecord(
        cve_id=cve,
        xsa_id=xsa,
        year=year,
        component=component,
        summary=summary,
        functionalities=tuple(afs),
    )


XEN_CVE_STUDY: Tuple[CveRecord, ...] = (
    # ------------------------------------------------------------------
    # Anchor records with well-documented classifications
    # ------------------------------------------------------------------
    _r("CVE-2015-7835", "XSA-148", 2015, "mm/pagetables",
       "missing PSE check lets PV guests create writable superpage mappings",
       AF.GUEST_WRITABLE_PAGE_TABLE_ENTRY),
    _r("CVE-2016-6258", "XSA-182", 2016, "mm/pagetables",
       "faulty fast path for pre-existing L4 page-table updates",
       AF.GUEST_WRITABLE_PAGE_TABLE_ENTRY),
    _r("CVE-2017-7228", "XSA-212", 2017, "mm/memory_exchange",
       "broken check in memory_exchange permits arbitrary hypervisor writes",
       AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY),
    _r("CVE-2021-28701", "XSA-387", 2021, "grant tables",
       "grant-table v2 status pages not released on version switch",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2021-28700", "XSA-393", 2021, "mm/p2m",
       "stale mappings survive XENMEM_decrease_reservation",
       AF.KEEP_PAGE_ACCESS),
    # The two dual-functionality CVEs the paper names (§IV-D).
    _r("CVE-2019-17343", "XSA-296", 2019, "mm/p2m",
       "page reference mishandling; exploitable as corruption or as a "
       "guest-triggerable memory exception",
       AF.CORRUPT_A_PAGE_REFERENCE, AF.INDUCE_A_MEMORY_EXCEPTION),
    _r("CVE-2020-27672", "XSA-345", 2020, "mm/pagetables",
       "race in mapping updates; corrupts virtual memory mappings or "
       "triggers a fatal assertion depending on timing",
       AF.CORRUPT_VIRTUAL_MEMORY_MAPPING, AF.INDUCE_A_FATAL_EXCEPTION),
    # ------------------------------------------------------------------
    # Remaining dual-functionality records (6)
    # ------------------------------------------------------------------
    _r("CVE-2015-4164", "XSA-136", 2015, "hypercall/iret",
       "unbounded loop readable side effects: leaks stack words and can "
       "fail subsequent accesses",
       AF.READ_UNAUTHORIZED_MEMORY, AF.FAIL_A_MEMORY_ACCESS),
    _r("CVE-2016-9386", "XSA-191", 2016, "x86 emulator",
       "null segment handling lets guests write protected memory; bad "
       "descriptors also raise fatal exceptions",
       AF.WRITE_UNAUTHORIZED_MEMORY, AF.INDUCE_A_FATAL_EXCEPTION),
    _r("CVE-2017-10912", "XSA-217", 2017, "grant tables",
       "page transfer mishandling keeps stale references readable",
       AF.KEEP_PAGE_ACCESS, AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2013-1918", "XSA-45", 2013, "mm/preemption",
       "long-latency page-table operations allocate unboundedly and can "
       "hang the host",
       AF.UNCONTROLLED_MEMORY_ALLOCATION, AF.INDUCE_A_HANG_STATE),
    _r("CVE-2014-5146", "XSA-97", 2014, "mm/p2m",
       "mapping teardown starves availability and can wedge a CPU",
       AF.DECREASE_PAGE_MAPPING_AVAILABILITY, AF.INDUCE_A_HANG_STATE),
    _r("CVE-2017-8905", "XSA-215", 2017, "x86 failsafe callback",
       "failsafe callback mishandling corrupts page tables and enables "
       "arbitrary writes",
       AF.GUEST_WRITABLE_PAGE_TABLE_ENTRY, AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY),
    # ------------------------------------------------------------------
    # Read Unauthorized Memory (10 singles; 12 total with duals)
    # ------------------------------------------------------------------
    _r("CVE-2015-2044", "XSA-121", 2015, "x86 HVM emulation",
       "uninitialised data leak through emulated platform device reads",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2015-2045", "XSA-122", 2015, "hypercall/xen_version",
       "stack padding leaked by XENVER_extraversion",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2016-7093", "XSA-186", 2016, "x86 emulator",
       "instruction cache mishandling over the 4GiB boundary leaks memory",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2017-8903", "XSA-213", 2017, "mm/iret",
       "64-bit PV guest breakout reads hypervisor memory via IRET",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2018-10471", "XSA-259", 2018, "x86 shim",
       "wrong error path exposes hypervisor data to PV guests",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2018-19961", "XSA-275", 2018, "AMD IOMMU",
       "insufficient TLB flushing reveals freed page contents",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2019-18420", "XSA-301", 2019, "hypercall/domctl",
       "uninitialised field copied back to the caller",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2020-11740", "XSA-313", 2020, "xenoprof",
       "unchecked buffer sharing lets guests read profiling state",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2020-11739", "XSA-314", 2020, "event channels",
       "missing barriers expose stale event words to other guests",
       AF.READ_UNAUTHORIZED_MEMORY),
    _r("CVE-2021-28692", "XSA-373", 2021, "IOMMU mapping",
       "queued invalidation mishandling leaks DMA-visible memory",
       AF.READ_UNAUTHORIZED_MEMORY),
    # ------------------------------------------------------------------
    # Write Unauthorized Memory (7 singles; 8 total)
    # ------------------------------------------------------------------
    _r("CVE-2015-3456", "XSA-133", 2015, "qemu/fdc",
       "VENOM: floppy controller FIFO overflow corrupts emulator memory",
       AF.WRITE_UNAUTHORIZED_MEMORY),
    _r("CVE-2014-7188", "XSA-108", 2014, "x86 HVM MSR",
       "APIC MSR range check error writes beyond the allotted page",
       AF.WRITE_UNAUTHORIZED_MEMORY),
    _r("CVE-2016-9379", "XSA-198", 2016, "pygrub",
       "string quoting flaw overwrites host-side files",
       AF.WRITE_UNAUTHORIZED_MEMORY),
    _r("CVE-2017-15592", "XSA-243", 2017, "x86 shadow paging",
       "bogus self-linear shadow mapping writes hypervisor memory",
       AF.WRITE_UNAUTHORIZED_MEMORY),
    _r("CVE-2018-8897", "XSA-260", 2018, "x86 debug exceptions",
       "mishandled #DB lets guests clobber hypervisor stack state",
       AF.WRITE_UNAUTHORIZED_MEMORY),
    _r("CVE-2020-15565", "XSA-321", 2020, "x86 IOMMU",
       "insufficient cache write-back corrupts in-use mappings",
       AF.WRITE_UNAUTHORIZED_MEMORY),
    _r("CVE-2021-28693", "XSA-372", 2021, "arm/pagetables",
       "double unlock window permits writes into freed tables",
       AF.WRITE_UNAUTHORIZED_MEMORY),
    # ------------------------------------------------------------------
    # Write Unauthorized Arbitrary Memory (4 singles; 5 total)
    # ------------------------------------------------------------------
    _r("CVE-2017-8904", "XSA-214", 2017, "mm/grant transfer",
       "page type confusion in GNTTABOP_transfer yields arbitrary writes",
       AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY),
    _r("CVE-2016-6259", "XSA-183", 2016, "x86 entry",
       "missing SMAP whitelisting enables attacker-chosen write targets",
       AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY),
    _r("CVE-2014-9030", "XSA-113", 2014, "mm/MMU_MACHPHYS_UPDATE",
       "missing range check writes machine-to-phys entries out of bounds",
       AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY),
    # ------------------------------------------------------------------
    # R/W Unauthorized Memory (7 singles)
    # ------------------------------------------------------------------
    _r("CVE-2015-4103", "XSA-128", 2015, "qemu/pci",
       "PCI MSI-X mask bit mishandling exposes device pages read-write",
       AF.RW_UNAUTHORIZED_MEMORY),
    _r("CVE-2016-2270", "XSA-154", 2016, "x86 mm/cacheability",
       "superpage cacheability confusion maps MMIO read-write to guests",
       AF.RW_UNAUTHORIZED_MEMORY),
    _r("CVE-2017-12135", "XSA-226", 2017, "grant tables",
       "transitive grants leave both ends with full access",
       AF.RW_UNAUTHORIZED_MEMORY),
    _r("CVE-2018-12891", "XSA-264", 2018, "mm/PV maps",
       "large ioremap bypasses access controls for both directions",
       AF.RW_UNAUTHORIZED_MEMORY),
    _r("CVE-2019-19578", "XSA-309", 2019, "mm/pagetables",
       "linear pagetable bookkeeping error retains read-write windows",
       AF.RW_UNAUTHORIZED_MEMORY),
    _r("CVE-2020-29567", "XSA-359", 2020, "x86 HVM ioreq",
       "ioreq server page lifetime error shares pages read-write",
       AF.RW_UNAUTHORIZED_MEMORY),
    _r("CVE-2013-4553", "XSA-74", 2013, "mm/lock order",
       "page lock ordering flaw leaves frames accessible both ways",
       AF.RW_UNAUTHORIZED_MEMORY),
    # ------------------------------------------------------------------
    # Fail a Memory Access (2 singles; 3 total)
    # ------------------------------------------------------------------
    _r("CVE-2016-3960", "XSA-173", 2016, "x86 shadow paging",
       "superpage shadow mishandling makes valid accesses fail",
       AF.FAIL_A_MEMORY_ACCESS),
    _r("CVE-2018-15470", "XSA-272", 2018, "oxenstored",
       "quota bypass causes legitimate mapping accesses to fail",
       AF.FAIL_A_MEMORY_ACCESS),
    # ------------------------------------------------------------------
    # Corrupt Virtual Memory Mapping (3 singles; 4 total)
    # ------------------------------------------------------------------
    _r("CVE-2014-3967", "XSA-96", 2014, "x86 HVM",
       "HVMOP_inject_msi mishandling corrupts guest mapping state",
       AF.CORRUPT_VIRTUAL_MEMORY_MAPPING),
    _r("CVE-2016-1571", "XSA-168", 2016, "x86 VMX",
       "INVVPID failure path leaves corrupted translations live",
       AF.CORRUPT_VIRTUAL_MEMORY_MAPPING),
    _r("CVE-2019-19580", "XSA-307", 2019, "x86 mm",
       "find_next_bit misuse corrupts IOMMU-shared mappings",
       AF.CORRUPT_VIRTUAL_MEMORY_MAPPING),
    # ------------------------------------------------------------------
    # Corrupt a Page Reference (3 singles; 4 total)
    # ------------------------------------------------------------------
    _r("CVE-2015-5307", "XSA-156", 2015, "x86 exceptions",
       "benign exception loop corrupts reference bookkeeping",
       AF.CORRUPT_A_PAGE_REFERENCE),
    _r("CVE-2017-15595", "XSA-240", 2017, "mm/linear pagetables",
       "unbounded recursion miscounts page references",
       AF.CORRUPT_A_PAGE_REFERENCE),
    _r("CVE-2020-15563", "XSA-319", 2020, "x86 shadow paging",
       "off-by-one drops a live page reference",
       AF.CORRUPT_A_PAGE_REFERENCE),
    # ------------------------------------------------------------------
    # Decrease Page Mapping Availability (5 singles; 6 total)
    # ------------------------------------------------------------------
    _r("CVE-2013-2211", "XSA-57", 2013, "libxl",
       "guest-writable xenstore keys exhaust mapping slots",
       AF.DECREASE_PAGE_MAPPING_AVAILABILITY),
    _r("CVE-2015-7969", "XSA-149", 2015, "xenoprof",
       "leaked vcpu pages shrink the mappable pool",
       AF.DECREASE_PAGE_MAPPING_AVAILABILITY),
    _r("CVE-2016-7094", "XSA-187", 2016, "x86 HVM",
       "overlong segments shrink usable shadow mappings",
       AF.DECREASE_PAGE_MAPPING_AVAILABILITY),
    _r("CVE-2017-17046", "XSA-247", 2017, "arm/p2m",
       "missing error propagation strands mapped pages",
       AF.DECREASE_PAGE_MAPPING_AVAILABILITY),
    _r("CVE-2019-17340", "XSA-299", 2019, "mm/pv",
       "fishy page-type juggling makes mappings unavailable",
       AF.DECREASE_PAGE_MAPPING_AVAILABILITY),
    # ------------------------------------------------------------------
    # Guest-Writable Page Table Entry (3 singles incl. anchors; 4 total)
    # -> XSA-148 and XSA-182 above are two of the singles; one more:
    # ------------------------------------------------------------------
    _r("CVE-2017-15588", "XSA-241", 2017, "mm/TLB",
       "stale TLB entry window leaves a writable pagetable mapping",
       AF.GUEST_WRITABLE_PAGE_TABLE_ENTRY),
    # ------------------------------------------------------------------
    # Fail a memory mapping (2 singles)
    # ------------------------------------------------------------------
    _r("CVE-2014-9065", "XSA-114", 2014, "mm/p2m",
       "locking error makes valid mapping requests fail silently",
       AF.FAIL_A_MEMORY_MAPPING),
    _r("CVE-2018-12893", "XSA-265", 2018, "x86 debug",
       "#DB safety check failure aborts legitimate mappings",
       AF.FAIL_A_MEMORY_MAPPING),
    # ------------------------------------------------------------------
    # Uncontrolled Memory Allocation (8 singles; 9 total)
    # ------------------------------------------------------------------
    _r("CVE-2013-1917", "XSA-44", 2013, "x86 SYSENTER",
       "crafted struct pushes unbounded allocations in the trap path",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    _r("CVE-2014-2599", "XSA-89", 2014, "hypercall/HVMOP",
       "HVMOP_set_mem_access allocates without bounds",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    _r("CVE-2015-7970", "XSA-150", 2015, "mm/PoD",
       "populate-on-demand sweep allocates unboundedly",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    _r("CVE-2016-4963", "XSA-179", 2016, "qemu/vga",
       "bitblt regions let the guest grow emulator buffers unchecked",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    _r("CVE-2017-12137", "XSA-228", 2017, "grant tables",
       "grant-table map tracking grows without limit",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    _r("CVE-2018-7540", "XSA-252", 2018, "mm/PV",
       "page freeing path defers unbounded work and memory",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    _r("CVE-2019-18425", "XSA-298", 2019, "x86 PV gdt",
       "32-bit PV guests grow descriptor allocations unchecked",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    _r("CVE-2020-25602", "XSA-333", 2020, "x86 MSR",
       "emulated MSR path allocates per access without accounting",
       AF.UNCONTROLLED_MEMORY_ALLOCATION),
    # ------------------------------------------------------------------
    # Keep Page Access (10 singles incl. anchors; 11 total)
    # -> XSA-387 / XSA-393 above are two of the singles; eight more:
    # ------------------------------------------------------------------
    _r("CVE-2013-4494", "XSA-73", 2013, "grant tables",
       "lock ordering flaw retains access to released grant pages",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2015-8550", "XSA-155", 2015, "paravirt drivers",
       "double-fetch keeps backend access to returned ring pages",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2016-10024", "XSA-202", 2016, "x86 PV",
       "interrupted page ops leave guest access to freed frames",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2017-12136", "XSA-227", 2017, "grant tables",
       "grant v2 table race keeps access past revocation",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2018-12892", "XSA-266", 2018, "libxl/pvh",
       "missing teardown keeps console ring access after destroy",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2019-19577", "XSA-311", 2019, "AMD IOMMU",
       "dynamic height changes keep DMA access to old tables",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2020-15567", "XSA-328", 2020, "x86 EPT",
       "non-atomic entry update keeps access to remapped pages",
       AF.KEEP_PAGE_ACCESS),
    _r("CVE-2021-28698", "XSA-380", 2021, "grant tables",
       "long-running unmap keeps foreign page access alive",
       AF.KEEP_PAGE_ACCESS),
    # ------------------------------------------------------------------
    # Induce a Fatal Exception (4 singles; 6 total)
    # ------------------------------------------------------------------
    _r("CVE-2014-9066", "XSA-115", 2014, "xenstore",
       "corner-case transaction aborts hit a BUG() directive",
       AF.INDUCE_A_FATAL_EXCEPTION),
    _r("CVE-2015-8554", "XSA-164", 2015, "qemu/msi-x",
       "out-of-bounds PCI write triggers a fatal assert",
       AF.INDUCE_A_FATAL_EXCEPTION),
    _r("CVE-2017-14316", "XSA-231", 2017, "mm/NUMA",
       "unchecked node id reaches an 'impossible' FATAL branch",
       AF.INDUCE_A_FATAL_EXCEPTION),
    _r("CVE-2020-25600", "XSA-342", 2020, "event channels",
       "out-of-range event writes panic the hypervisor",
       AF.INDUCE_A_FATAL_EXCEPTION),
    # ------------------------------------------------------------------
    # Induce a Memory Exception (4 singles; 5 total)
    # ------------------------------------------------------------------
    _r("CVE-2013-3495", "XSA-59", 2013, "x86 IOMMU",
       "interrupt remapping source validation faults on unaligned data",
       AF.INDUCE_A_MEMORY_EXCEPTION),
    _r("CVE-2016-9381", "XSA-197", 2016, "qemu/ioreq",
       "double fetch makes the emulator fault on guest memory",
       AF.INDUCE_A_MEMORY_EXCEPTION),
    _r("CVE-2018-19965", "XSA-279", 2018, "x86 mm",
       "INVPCID misuse raises unexpected page faults in Xen",
       AF.INDUCE_A_MEMORY_EXCEPTION),
    _r("CVE-2021-28687", "XSA-368", 2021, "arm/hypercall",
       "HYPERVISOR_memory_op NULL dereference via crafted args",
       AF.INDUCE_A_MEMORY_EXCEPTION),
    # ------------------------------------------------------------------
    # Induce a Hang State (18 singles; 20 total)
    # ------------------------------------------------------------------
    _r("CVE-2012-6075", "XSA-41", 2012, "qemu/e1000",
       "oversized frames spin the emulator indefinitely",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2013-3494", "XSA-58", 2013, "x86 debug",
       "crafted debug registers livelock the host CPU",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2014-5147", "XSA-102", 2014, "arm/traps",
       "32-bit guest state traps loop forever in the hypervisor",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2015-7971", "XSA-152", 2015, "xenoprof",
       "some hypercalls log unboundedly, stalling dom0",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2016-3158", "XSA-172", 2016, "x86 fpu",
       "xsave state juggling wedges the vcpu scheduler",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2016-10013", "XSA-204", 2016, "x86 syscall",
       "mishandled SYSCALL singlestep spins in the trap handler",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2017-15590", "XSA-237", 2017, "x86 MSI",
       "crafted MSI state makes interrupt teardown spin",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2017-17044", "XSA-246", 2017, "mm/PoD",
       "populate-on-demand error path loops without progress",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2018-10472", "XSA-258", 2018, "libxl/qemu",
       "crafted CDROM config blocks the device model forever",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2018-15469", "XSA-270", 2018, "netback",
       "zero-length ring requests spin the backend thread",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2019-17341", "XSA-300", 2019, "mm/balloon",
       "balloon inflation path livelocks under crafted sizes",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2019-19583", "XSA-308", 2019, "x86 VMX",
       "VMENTRY failure loop denies service to all vcpus",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2020-11742", "XSA-318", 2020, "grant tables",
       "bad grant sizes make the remap loop spin forever",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2020-15564", "XSA-327", 2020, "arm/traps",
       "missing alignment check stalls the trap path",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2020-25601", "XSA-338", 2020, "event channels",
       "reset/resume race parks all event delivery",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2021-28694", "XSA-378", 2021, "IOMMU",
       "unsynchronised RMRR handling hangs passthrough setup",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2021-28695", "XSA-379", 2021, "IOMMU",
       "mapping bookkeeping loop fails to terminate",
       AF.INDUCE_A_HANG_STATE),
    _r("CVE-2012-4535", "XSA-20", 2012, "scheduler",
       "timer overflow parks a vcpu and never reschedules it",
       AF.INDUCE_A_HANG_STATE),
    # ------------------------------------------------------------------
    # Uncontrolled Arbitrary Interrupts Requests (2 singles)
    # ------------------------------------------------------------------
    _r("CVE-2015-8615", "XSA-157", 2015, "x86 HVM ioapic",
       "crafted redirection entries fire interrupts at will",
       AF.UNCONTROLLED_ARBITRARY_INTERRUPT_REQUESTS),
    _r("CVE-2016-2271", "XSA-170", 2016, "x86 VMX",
       "non-canonical RIP injection storms guest interrupts",
       AF.UNCONTROLLED_ARBITRARY_INTERRUPT_REQUESTS),
)
