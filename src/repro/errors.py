"""Error codes and exception hierarchy shared by the whole simulator.

The Xen hypercall ABI reports failures through negative errno values;
this module defines the subset the simulator uses, plus the exception
types raised by the simulated hardware (faults) and the simulator
itself (panics, misuse).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Xen-style errno values (negated on hypercall return, like the real ABI).
# ---------------------------------------------------------------------------

EPERM = 1
ENOENT = 2
ESRCH = 3
EFAULT = 14
EBUSY = 16
EEXIST = 17
EINVAL = 22
ENOMEM = 12
ENOSYS = 38
EACCES = 13

_ERRNO_NAMES = {
    EPERM: "EPERM",
    ENOENT: "ENOENT",
    ESRCH: "ESRCH",
    EFAULT: "EFAULT",
    EBUSY: "EBUSY",
    EEXIST: "EEXIST",
    EINVAL: "EINVAL",
    ENOMEM: "ENOMEM",
    ENOSYS: "ENOSYS",
    EACCES: "EACCES",
}


def errno_name(code: int) -> str:
    """Return the symbolic name for an errno (sign-insensitive)."""
    return _ERRNO_NAMES.get(abs(code), f"E?{abs(code)}")


class SimulationError(Exception):
    """Base class for every error raised by the simulator."""


class MachineError(SimulationError):
    """Misuse of the raw machine model (bad MFN, bad word index)."""


class HypercallError(SimulationError):
    """A hypercall failed; carries the Xen errno.

    Hypercall implementations raise this internally; the dispatcher
    converts it into the negative integer return value of the ABI.
    """

    def __init__(self, errno: int, message: str = ""):
        self.errno = abs(errno)
        detail = f" ({message})" if message else ""
        super().__init__(f"-{errno_name(errno)}{detail}")


class GuestFault(SimulationError):
    """A guest-context memory access faulted (simulated #PF / #GP).

    Guest kernels normally catch this and turn it into a "kernel
    exception" log entry, mirroring the failure mode the paper reports
    for the fixed Xen versions.
    """

    def __init__(self, va: int, access: str, reason: str):
        self.va = va
        self.access = access
        self.reason = reason
        super().__init__(
            f"guest fault: {access} access to {va:#018x} denied ({reason})"
        )


class HypervisorFault(SimulationError):
    """A hypervisor-context linear access could not be translated."""

    def __init__(self, va: int, reason: str):
        self.va = va
        self.reason = reason
        super().__init__(f"hypervisor fault at {va:#018x}: {reason}")


class DoubleFault(SimulationError):
    """Exception raised while delivering an exception: the CPU gives up."""

    def __init__(self, vector: int, detail: str):
        self.vector = vector
        self.detail = detail
        super().__init__(f"double fault while delivering vector {vector}: {detail}")


class HypervisorCrash(SimulationError):
    """The hypervisor panicked.  The machine is dead after this."""

    def __init__(self, banner: str):
        self.banner = banner
        super().__init__(banner)
