"""Guest-kernel simulator: the PV Linux stand-in running inside domains."""

from repro.guest.filesystem import FileSystem
from repro.guest.kernel import GuestKernel, KernelOops
from repro.guest.process import Credentials, Process

__all__ = ["FileSystem", "GuestKernel", "KernelOops", "Process", "Credentials"]
