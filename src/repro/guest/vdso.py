"""The guest's vDSO page and the XSA-148 backdoor payload.

The vDSO (virtual dynamic shared object) is a kernel-provided code
page mapped into every user process.  The XSA-148-priv PoC scans
physical memory for dom0's vDSO page and patches a backdoor into it;
the next time a *root* process calls through the vDSO, the backdoor
opens a reverse shell to the attacker (paper §VI-A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xen.constants import VDSO_MAGIC
from repro.xen.payload import Payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guest.process import Process
    from repro.net import Network
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen

#: Word offset of the vDSO magic fingerprint within the page.
VDSO_MAGIC_WORD = 0
#: Word offset of the (patchable) function entry point.
VDSO_FUNCTION_WORD = 1
#: Marker for the legitimate function body.
VDSO_LEGIT_CODE = 0x6765_7474_6F64_6179  # "gettoday"


def stamp_vdso(machine, mfn: int) -> None:
    """Write the fingerprint + legitimate code into a fresh vDSO page."""
    machine.write_word(mfn, VDSO_MAGIC_WORD, VDSO_MAGIC)
    machine.write_word(mfn, VDSO_FUNCTION_WORD, VDSO_LEGIT_CODE)


class VdsoBackdoorPayload(Payload):
    """Backdoor installed over the vDSO function entry.

    Executes in the context of the user process that called the vDSO;
    if that process is root, connect back to the attacker and hand
    them a shell with the caller's credentials.
    """

    def __init__(self, network: "Network", attacker_host: str, attacker_port: int):
        super().__init__("vdso-reverse-shell")
        self.network = network
        self.attacker_host = attacker_host
        self.attacker_port = attacker_port

    def trigger(self, xen: "Xen", domain: "Domain", process: "Process") -> None:
        if not process.creds.is_root:
            return  # lie in wait for a root caller
        from repro.net import Shell

        shell = Shell(domain, uid=process.creds.uid)
        self.network.connect(
            from_host=domain.hostname,
            to_host=self.attacker_host,
            port=self.attacker_port,
            shell=shell,
        )
