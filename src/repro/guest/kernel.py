"""The guest kernel: a PV Linux stand-in.

Each domain runs a :class:`GuestKernel` that

* builds its own page tables (direct-map style: guest pseudo-physical
  page ``pfn`` appears at ``0xffff880000000000 + pfn * 4096``) and
  registers them with the hypervisor via ``mmuext_op`` pin + baseptr —
  the PV "direct paging" model of paper §V-A;
* performs all further page-table changes through ``mmu_update``;
* accesses memory through guest-context translation, turning faults
  into kernel oopses (after letting the hypervisor deliver the #PF,
  which is where the XSA-212-crash double fault fires);
* hosts processes, a filesystem, and the vDSO page.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import GuestFault, SimulationError
from repro.guest.filesystem import FileSystem
from repro.guest.process import ROOT, Credentials, Process
from repro.guest.vdso import VDSO_FUNCTION_WORD, VdsoBackdoorPayload, stamp_vdso
from repro.xen import constants as C
from repro.xen import layout
from repro.xen.addrspace import Access
from repro.xen.hypercalls import (
    EventChannelOpArgs,
    ExchangeArgs,
    GrantTableOpArgs,
    MmuExtOp,
    MmuUpdate,
)
from repro.xen.paging import make_pte
from repro.xen.payload import Payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


class KernelOops(SimulationError):
    """The guest kernel hit an unhandled exception (and logged it)."""

    def __init__(self, fault: GuestFault):
        self.fault = fault
        super().__init__(f"kernel oops: {fault}")


class GuestKernel:
    """The kernel of one PV domain."""

    def __init__(self, xen: "Xen", domain: "Domain"):
        self.xen = xen
        self.domain = domain
        domain.kernel = self
        from repro.probes import points as probe_points

        self._p_user_work = xen.probes.point(probe_points.USER_WORK)
        self.fs = FileSystem()
        self.log: List[str] = []
        self._clock = 100.0
        self.processes: List[Process] = []
        self._next_pid = 1
        self.events_received: List[int] = []
        #: Port -> callback registered by drivers (see bind_handler).
        self._event_handlers: Dict[int, Callable[[int], None]] = {}
        #: Values an attacker running in this guest has exfiltrated
        #: (read from memory it should not see) — the confidentiality
        #: monitor inspects this.
        self.loot: List[int] = []

        # Page-table frame bookkeeping (filled by boot()).
        self.l4_pfn: Optional[int] = None
        self.l3_pfn: Optional[int] = None
        self.l2_pfn: Optional[int] = None
        self.l1_pfns: List[int] = []
        self.vdso_pfn: Optional[int] = None
        self._free_pfns: List[int] = []
        self.booted = False

    # ------------------------------------------------------------------
    # Boot: build + register page tables, create the vDSO and init
    # ------------------------------------------------------------------

    def boot(self) -> None:
        """Domain-builder phase: construct the initial address space.

        Mirrors how a PV domain starts: the builder writes the initial
        tables into the domain's own pages, then the kernel pins the
        root and loads it.  Page-table frames and the start_info page
        are mapped read-only (Xen's validation would refuse anything
        else); ordinary pages are mapped read-write.
        """
        if self.booted:
            raise SimulationError("kernel already booted")
        domain = self.domain
        machine = self.xen.machine
        num_pages = len(domain.p2m)
        if num_pages > C.ENTRIES_PER_TABLE:
            raise SimulationError("guest kernels support up to 512 pages")

        # Reserve the top pages for the page-table hierarchy.
        self.l4_pfn = num_pages - 1
        self.l3_pfn = num_pages - 2
        self.l2_pfn = num_pages - 3
        self.l1_pfns = [num_pages - 4]
        pt_pfns = {self.l4_pfn, self.l3_pfn, self.l2_pfn, *self.l1_pfns}

        l4_mfn = domain.pfn_to_mfn(self.l4_pfn)
        l3_mfn = domain.pfn_to_mfn(self.l3_pfn)
        l2_mfn = domain.pfn_to_mfn(self.l2_pfn)
        l1_mfn = domain.pfn_to_mfn(self.l1_pfns[0])

        base = layout.GUEST_KERNEL_BASE
        from repro.xen.paging import l2_index, l3_index, l4_index

        intermediate = C.PTE_PRESENT | C.PTE_RW
        machine.write_word(l4_mfn, l4_index(base), make_pte(l3_mfn, intermediate))
        machine.write_word(l3_mfn, l3_index(base), make_pte(l2_mfn, intermediate))
        machine.write_word(l2_mfn, l2_index(base), make_pte(l1_mfn, intermediate))
        for pfn in range(num_pages):
            mfn = domain.pfn_to_mfn(pfn)
            flags = C.PTE_PRESENT
            if pfn not in pt_pfns and pfn != 0:  # pfn 0 = start_info, RO
                flags |= C.PTE_RW
            machine.write_word(l1_mfn, pfn, make_pte(mfn, flags))

        # Hand the tables to Xen: pin the root, then load it.
        rc = self.hypercall(
            C.HYPERCALL_MMUEXT_OP,
            [MmuExtOp(cmd=C.MMUEXT_PIN_L4_TABLE, mfn=l4_mfn)],
        )
        if rc != 0:
            raise SimulationError(f"pinning boot L4 failed: {rc}")
        rc = self.hypercall(
            C.HYPERCALL_MMUEXT_OP,
            [MmuExtOp(cmd=C.MMUEXT_NEW_BASEPTR, mfn=l4_mfn)],
        )
        if rc != 0:
            raise SimulationError(f"loading boot L4 failed: {rc}")

        # Register PV trap handlers.
        self.hypercall(
            C.HYPERCALL_SET_TRAP_TABLE,
            {C.TRAP_PAGE_FAULT: "do_page_fault", C.TRAP_GP_FAULT: "do_gp_fault"},
        )

        # Free-page pool: everything not otherwise reserved.
        reserved = pt_pfns | {0}
        self.vdso_pfn = 1
        reserved.add(self.vdso_pfn)
        stamp_vdso(machine, domain.pfn_to_mfn(self.vdso_pfn))
        self._free_pfns = [p for p in range(num_pages) if p not in reserved]

        # PID 1 plus a root shell that periodically calls the vDSO.
        self.spawn("init", ROOT, uses_vdso=True)
        self.booted = True
        self.printk(f"guest kernel booted on {domain.hostname} (d{domain.id})")

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------

    def printk(self, message: str) -> None:
        self._clock += 0.016
        self.log.append(f"[{self._clock:10.4f}] {message}")

    # ------------------------------------------------------------------
    # Hypercalls
    # ------------------------------------------------------------------

    def hypercall(self, number: int, *args) -> int:
        return self.xen.hypercall(self.domain, number, *args)

    def mmu_update(self, updates: Sequence[Tuple[int, int]]) -> int:
        """``mmu_update`` with ``(ptr, val)`` pairs."""
        return self.hypercall(
            C.HYPERCALL_MMU_UPDATE, [MmuUpdate(ptr=p, val=v) for p, v in updates]
        )

    def update_pt_entry(self, table_mfn: int, index: int, value: int) -> int:
        """Update one PTE of one of our tables through the hypervisor."""
        maddr = table_mfn * C.PAGE_SIZE + index * 8
        return self.mmu_update([(maddr | C.MMU_NORMAL_PT_UPDATE, value)])

    def pin_table(self, mfn: int, level: int) -> int:
        cmd = {
            1: C.MMUEXT_PIN_L1_TABLE,
            2: C.MMUEXT_PIN_L2_TABLE,
            3: C.MMUEXT_PIN_L3_TABLE,
            4: C.MMUEXT_PIN_L4_TABLE,
        }[level]
        return self.hypercall(C.HYPERCALL_MMUEXT_OP, [MmuExtOp(cmd=cmd, mfn=mfn)])

    def memory_exchange(self, args: ExchangeArgs) -> int:
        return self.hypercall(C.HYPERCALL_MEMORY_OP, C.XENMEM_EXCHANGE, args)

    def decrease_reservation(self, pfns: Sequence[int]) -> int:
        return self.hypercall(
            C.HYPERCALL_MEMORY_OP, C.XENMEM_DECREASE_RESERVATION, list(pfns)
        )

    def increase_reservation(self, nr_pages: int) -> int:
        return self.hypercall(
            C.HYPERCALL_MEMORY_OP, C.XENMEM_INCREASE_RESERVATION, nr_pages
        )

    def grant_table_op(self, args: GrantTableOpArgs) -> int:
        return self.hypercall(C.HYPERCALL_GRANT_TABLE_OP, args)

    def event_channel_op(self, args: EventChannelOpArgs) -> int:
        return self.hypercall(C.HYPERCALL_EVENT_CHANNEL_OP, args)

    def console_write(self, message: str) -> int:
        return self.hypercall(C.HYPERCALL_CONSOLE_IO, message)

    # ------------------------------------------------------------------
    # Memory access (guest context)
    # ------------------------------------------------------------------

    def kva(self, pfn: int, word: int = 0) -> int:
        """Kernel virtual address of one of our pseudo-physical pages."""
        return layout.guest_kernel_va(pfn, word)

    def _translate(self, va: int, access: Access, user: bool) -> Tuple[int, int]:
        try:
            return self.xen.addrspace.guest_translate(
                self.domain, va, access, user=user
            )
        except GuestFault as fault:
            # Hardware takes the #PF to the hypervisor first; with an
            # intact IDT it is forwarded back and we oops.  With a
            # corrupted IDT this call never returns (double fault).
            self.xen.deliver_page_fault(self.domain, fault)
            self.printk(
                f"BUG: unable to handle page request at {fault.va:#018x} "
                f"({fault.access}: {fault.reason})"
            )
            raise KernelOops(fault) from None

    def read_va(self, va: int, user: bool = False) -> int:
        mfn, word = self._translate(va, Access.READ, user)
        return self.xen.machine.read_word(mfn, word)

    def write_va(self, va: int, value: int, user: bool = False) -> None:
        mfn, word = self._translate(va, Access.WRITE, user)
        self.xen.machine.write_word(mfn, word, value)

    def write_payload_va(self, va: int, payload: Payload) -> None:
        """Write "code" (a payload blob) through a virtual address."""
        mfn, word = self._translate(va, Access.WRITE, user=False)
        self.xen.machine.attach_blob(mfn, word, payload)

    def exec_va(self, va: int) -> Optional[object]:
        """Fetch whatever executable object lives at ``va``."""
        mfn, word = self._translate(va, Access.EXEC, user=False)
        return self.xen.machine.blob_at(mfn, word)

    def trigger_page_fault(self) -> None:
        """Deliberately touch an unmapped address (the XSA-212-crash
        detonator).  Raises :class:`KernelOops` if the system survives."""
        unmapped = layout.GUEST_KERNEL_BASE + (1 << 38)
        self.read_va(unmapped)

    # ------------------------------------------------------------------
    # Page management
    # ------------------------------------------------------------------

    def alloc_page(self) -> int:
        """Take a free pseudo-physical page; returns its PFN."""
        if not self._free_pfns:
            raise SimulationError(f"d{self.domain.id} kernel out of pages")
        return self._free_pfns.pop()

    def free_page(self, pfn: int) -> None:
        self._free_pfns.append(pfn)

    def pfn_to_mfn(self, pfn: int) -> int:
        return self.domain.pfn_to_mfn(pfn)

    def remap_page(self, pfn: int) -> int:
        """Refresh our kernel mapping of ``pfn`` after its backing MFN
        changed (e.g. after ``XENMEM_exchange``)."""
        l1_mfn = self.pfn_to_mfn(self.l1_pfns[0])
        entry = make_pte(self.pfn_to_mfn(pfn), C.PTE_PRESENT | C.PTE_RW)
        return self.update_pt_entry(l1_mfn, pfn, entry)

    def page_maddr(self, pfn: int, word: int = 0) -> int:
        return self.pfn_to_mfn(pfn) * C.PAGE_SIZE + word * 8

    # ------------------------------------------------------------------
    # Processes and the vDSO
    # ------------------------------------------------------------------

    def spawn(
        self, name: str, creds: Credentials, uses_vdso: bool = False
    ) -> Process:
        process = Process(
            pid=self._next_pid, name=name, creds=creds, uses_vdso=uses_vdso
        )
        self._next_pid += 1
        self.processes.append(process)
        return process

    def run_user_work(self) -> None:
        """One scheduling round: every vDSO-using process calls into the
        vDSO page (the XSA-148 backdoor trigger point)."""
        point = self._p_user_work
        if point.subs:
            return point.run(self._run_user_work_impl, (), (self.domain.id,))
        return self._run_user_work_impl()

    def _run_user_work_impl(self) -> None:
        if self.vdso_pfn is None:
            return
        vdso_mfn = self.pfn_to_mfn(self.vdso_pfn)
        blob = self.xen.machine.blob_at(vdso_mfn, VDSO_FUNCTION_WORD)
        for process in self.processes:
            if not process.uses_vdso:
                continue
            if isinstance(blob, VdsoBackdoorPayload):
                blob.trigger(self.xen, self.domain, process)
            # otherwise: the legitimate vDSO body runs, nothing to model

    def on_event(self, port: int) -> None:
        self.events_received.append(port)
        handler = self._event_handlers.get(port)
        if handler is not None:
            handler(port)

    def bind_handler(self, port: int, handler: Callable[[int], None]) -> None:
        """Attach a driver callback to an event port."""
        self._event_handlers[port] = handler

    def unbind_handler(self, port: int) -> None:
        self._event_handlers.pop(port, None)

    def exfiltrate(self, value: int) -> None:
        """Record a stolen value (attack scripts call this when they
        read memory outside their authorisation)."""
        self.loot.append(value)
