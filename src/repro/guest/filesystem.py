"""A tiny in-memory filesystem for guest domains.

Only what the paper's observables need: the XSA-212-priv payload drops
``/tmp/injector_log`` in every domain, and the XSA-148-priv reverse
shell reads ``/root/root_msg`` from dom0.  File ownership gates the
read path so "only root can read /root" is enforceable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


class FileAccessError(Exception):
    """Permission denied or missing file."""


@dataclass
class File:
    path: str
    content: str
    uid: int  # owner
    mode: int = 0o600


class FileSystem:
    """Path → file mapping with minimal permission checks."""

    def __init__(self):
        self._files: Dict[str, File] = {}

    def write(self, path: str, content: str, uid: int, mode: int = 0o600) -> None:
        existing = self._files.get(path)
        if existing is not None and uid != 0 and existing.uid != uid:
            raise FileAccessError(f"{path}: permission denied (owned by uid {existing.uid})")
        self._files[path] = File(path=path, content=content, uid=uid, mode=mode)

    def read(self, path: str, uid: int = 0) -> str:
        record = self._files.get(path)
        if record is None:
            raise FileAccessError(f"{path}: no such file")
        world_readable = bool(record.mode & 0o004)
        if uid != 0 and record.uid != uid and not world_readable:
            raise FileAccessError(f"{path}: permission denied")
        return record.content

    def exists(self, path: str) -> bool:
        return path in self._files

    def owner(self, path: str) -> Optional[int]:
        record = self._files.get(path)
        return None if record is None else record.uid

    def listdir(self, prefix: str = "/") -> List[str]:
        return sorted(path for path in self._files if path.startswith(prefix))

    def remove(self, path: str, uid: int = 0) -> None:
        record = self._files.get(path)
        if record is None:
            raise FileAccessError(f"{path}: no such file")
        if uid != 0 and record.uid != uid:
            raise FileAccessError(f"{path}: permission denied")
        del self._files[path]
