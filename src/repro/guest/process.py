"""Guest user processes and credentials."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Credentials:
    """POSIX-ish credentials of a process."""

    uid: int
    gid: int
    username: str

    @property
    def is_root(self) -> bool:
        return self.uid == 0

    def id_string(self) -> str:
        """The output of ``id`` for these credentials."""
        return (
            f"uid={self.uid}({self.username}) "
            f"gid={self.gid}({self.username}) "
            f"groups={self.gid}({self.username})"
        )


ROOT = Credentials(uid=0, gid=0, username="root")


@dataclass
class Process:
    """A user process inside a guest."""

    pid: int
    name: str
    creds: Credentials
    #: Set if the process periodically calls into the vDSO (the
    #: XSA-148 backdoor trigger).
    uses_vdso: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process pid={self.pid} {self.name!r} uid={self.creds.uid}>"
