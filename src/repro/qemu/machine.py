"""The emulator process hosting the virtual devices.

A :class:`QemuProcess` owns a flat heap (a bytearray).  The FDC's FIFO
buffer lives at a fixed heap offset, and — as in the real VENOM layout
— security-critical state (the IO-request dispatch pointer) sits right
behind it, so an overflow of the FIFO corrupts it.

:class:`QemuInjector` is the intrusion-injection counterpart: it
writes the erroneous state (heap corruption past the FIFO) directly,
without needing the FDC defect, so patched builds can be assessed too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.qemu.fdc import FDC_FIFO_SIZE, FloppyDiskController

#: Heap layout of the emulator process.
FIFO_BASE = 0x100
DISPATCH_PTR_OFFSET = FIFO_BASE + FDC_FIFO_SIZE  # right behind the FIFO
HEAP_SIZE = 0x400

#: The legitimate value of the IO-request dispatch pointer.
LEGIT_DISPATCH = 0xC0DE


@dataclass(frozen=True)
class QemuVersion:
    """Build configuration of the emulator."""

    name: str
    venom_vulnerable: bool


QEMU_VULNERABLE = QemuVersion(name="qemu-2.2 (pre-VENOM-fix)", venom_vulnerable=True)
QEMU_FIXED = QemuVersion(name="qemu-2.3 (VENOM fixed)", venom_vulnerable=False)


class QemuProcess:
    """One device-emulator process serving one guest."""

    def __init__(self, version: QemuVersion):
        self.version = version
        self.heap = bytearray(HEAP_SIZE)
        self._write_u16(DISPATCH_PTR_OFFSET, LEGIT_DISPATCH)
        self.fdc = FloppyDiskController(self)
        self.crashed = False
        self.escaped = False
        self.log: List[str] = []

    # -- heap ---------------------------------------------------------------

    def _write_u16(self, offset: int, value: int) -> None:
        self.heap[offset] = value & 0xFF
        self.heap[offset + 1] = (value >> 8) & 0xFF

    def _read_u16(self, offset: int) -> int:
        return self.heap[offset] | (self.heap[offset + 1] << 8)

    def heap_write(self, offset: int, data: bytes) -> None:
        """Raw heap write.  Overflowing the heap end crashes the
        process (like a segfault past the mapping)."""
        if offset + len(data) > len(self.heap):
            self.crashed = True
            self.log.append("qemu: segmentation fault (heap overrun)")
            return
        self.heap[offset : offset + len(data)] = data

    @property
    def dispatch_pointer(self) -> int:
        return self._read_u16(DISPATCH_PTR_OFFSET)

    @property
    def dispatch_corrupted(self) -> bool:
        return self.dispatch_pointer != LEGIT_DISPATCH

    # -- IO request path -------------------------------------------------------

    def handle_io_request(self) -> Optional[str]:
        """Dispatch a guest IO request through the dispatch pointer.

        With the pointer intact the request is served normally.  With a
        corrupted pointer the "CPU" jumps to attacker-chosen code:
        the guest has escaped into the emulator process — the VENOM
        security violation.
        """
        if self.crashed:
            return None
        if self.dispatch_corrupted:
            self.escaped = True
            self.log.append(
                "qemu: control transferred to corrupted dispatch pointer "
                f"{self.dispatch_pointer:#x} — guest escape"
            )
            return "escape"
        return "served"


class QemuInjector:
    """Intrusion injector for the emulator process (§III-B).

    Reproduces the erroneous state of a VENOM-style intrusion — heap
    corruption immediately past the FDC FIFO — by writing it directly,
    independent of whether the FDC defect is present.
    """

    def __init__(self, process: QemuProcess):
        self.process = process

    def inject_fifo_overflow(self, payload: bytes) -> None:
        """Write ``payload`` at the first byte past the FIFO buffer."""
        self.process.heap_write(DISPATCH_PTR_OFFSET, payload)
        self.process.log.append(
            f"injector: wrote {len(payload)} bytes past the FDC FIFO"
        )
