"""The virtual floppy-disk controller (the VENOM defect site).

CVE-2015-3456: the FDC keeps a FIFO buffer and an index; two commands
(``FD_CMD_READ_ID`` / ``FD_CMD_DRIVE_SPECIFICATION_COMMAND``) fail to
reset/bound the index, so a guest feeding enough bytes pushes the
index past the buffer and overwrites adjacent heap memory.

The simulated controller reproduces that control flow: on vulnerable
builds the two defective commands leave the index unbounded; on fixed
builds every write is bounds-checked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qemu.machine import QemuProcess

FDC_FIFO_SIZE = 512

# FDC command bytes (real values from the QEMU source)
FD_CMD_READ = 0xE6
FD_CMD_WRITE = 0xC5
FD_CMD_VERSION = 0x10
FD_CMD_READ_ID = 0x4A
FD_CMD_DRIVE_SPECIFICATION_COMMAND = 0x8E

_DEFECTIVE_COMMANDS = {FD_CMD_READ_ID, FD_CMD_DRIVE_SPECIFICATION_COMMAND}


class FloppyDiskController:
    """State machine of the emulated FDC's command FIFO."""

    def __init__(self, process: "QemuProcess"):
        self.process = process
        self.fifo_index = 0
        self.current_command: int = 0
        self.log: List[str] = []

    @property
    def _vulnerable(self) -> bool:
        return self.process.version.venom_vulnerable

    def write_command(self, command: int) -> None:
        """Guest writes a command byte to the FDC data port."""
        self.current_command = command
        self.fifo_index = 0
        self.log.append(f"fdc: command {command:#04x}")

    def write_data(self, byte: int) -> None:
        """Guest streams one parameter byte into the FIFO.

        The defect: for the two buggy commands on vulnerable builds
        the index check is skipped, so the write lands wherever the
        index has crawled to — including past the buffer.
        """
        from repro.qemu.machine import FIFO_BASE

        unchecked = self._vulnerable and self.current_command in _DEFECTIVE_COMMANDS
        if not unchecked and self.fifo_index >= FDC_FIFO_SIZE:
            # Fixed behaviour: index wraps/clamps inside the buffer.
            self.fifo_index = 0
        self.process.heap_write(FIFO_BASE + self.fifo_index, bytes([byte & 0xFF]))
        self.fifo_index += 1

    def write_block(self, data: bytes) -> None:
        for byte in data:
            if self.process.crashed:
                return
            self.write_data(byte)

    @property
    def overflowed(self) -> bool:
        """Did the FIFO index ever escape the buffer?"""
        return self.fifo_index > FDC_FIFO_SIZE
