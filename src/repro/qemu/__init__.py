"""Minimal QEMU-like device-emulation substrate (the VENOM example).

The paper's §III uses XSA-133/VENOM (CVE-2015-3456) — a floppy-disk
controller buffer overflow in QEMU — as its running example for the
intrusion-injection concept, and §III-B sketches how an injector
"could change the QEMU process to allow the injection of the
corresponding error".  This subpackage provides that second injection
target: a device-emulator process with an FDC whose FIFO overflow is
version-gated, plus an injector that recreates the overflow's
erroneous state directly.
"""

from repro.qemu.fdc import FloppyDiskController
from repro.qemu.machine import QemuInjector, QemuProcess, QemuVersion

__all__ = [
    "FloppyDiskController",
    "QemuInjector",
    "QemuProcess",
    "QemuVersion",
]
