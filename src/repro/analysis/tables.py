"""ASCII renderings of the paper's tables.

Each ``render_*`` function takes the live data structures (the study,
use-case classes, campaign results) and returns the table as a string
whose rows mirror the published layout, so benchmark output can be
compared against the paper side by side.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Type

from repro.core.campaign import RunResult
from repro.core.comparison import EquivalenceVerdict
from repro.core.taxonomy import AbusiveFunctionality
from repro.cvedata.study import FunctionalityStudy
from repro.exploits.base import UseCase

CHECK = "ok"
SHIELD = "SHIELD"
MISS = "--"


def _rule(width: int = 72) -> str:
    return "-" * width


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def render_table1(study: FunctionalityStudy) -> str:
    """Table I: abusive functionalities from activating Xen CVEs."""
    counts = study.functionality_counts()
    class_totals = study.class_counts()
    lines = [
        "TABLE I — ABUSIVE FUNCTIONALITIES OBTAINED FROM ACTIVATING "
        "XEN VULNERABILITIES",
        _rule(),
    ]
    for klass, functionalities in AbusiveFunctionality.by_class().items():
        lines.append(f"{klass.value} - {class_totals[klass]} CVEs")
        for functionality in functionalities:
            lines.append(f"  {functionality.label:<45} {counts[functionality]:02d}")
        lines.append(_rule())
    lines.append(
        f"total CVEs: {study.num_cves}   "
        f"functionality assignments: {study.num_assignments} "
        f"({len(study.multi_functionality_cves())} CVEs with more than one)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

def render_table2(use_cases: Sequence[Type[UseCase]]) -> str:
    """Table II: use case → abusive functionality."""
    lines = [
        "TABLE II — USE CASES AND THEIR ABUSIVE FUNCTIONALITY",
        _rule(48),
        f"{'Use Case':<18} {'Abusive Functionality':<28}",
        _rule(48),
    ]
    for use_case in use_cases:
        model = use_case.intrusion_model()
        lines.append(f"{use_case.name:<18} {model.functionality_label:<28}")
    lines.append(_rule(48))
    lines.append(
        "full instantiation: an unprivileged guest virtual machine uses a "
        "hypercall\nto target the memory management component in the "
        "virtualization layer"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------

def _cell(result: RunResult) -> Tuple[str, str]:
    err = CHECK if result.erroneous_state.achieved else MISS
    if result.violation.occurred:
        vio = CHECK
    elif result.erroneous_state.achieved:
        vio = SHIELD  # erroneous state present but handled by the system
    else:
        vio = MISS
    return err, vio


def render_table3(
    cells: Dict[Tuple[str, str], RunResult],
    use_case_names: Sequence[str],
    version_names: Sequence[str],
) -> str:
    """Table III: the injection campaign on non-vulnerable versions.

    ``ok`` = property correctly induced; ``SHIELD`` = the erroneous
    state was injected but the system handled it (no violation).
    """
    header_versions = "".join(
        f"{'Xen ' + v:<24}" for v in version_names
    )
    sub = "".join(f"{'Err.State':<12}{'Sec.Viol.':<12}" for _ in version_names)
    lines = [
        "TABLE III — RESULTS OF THE INJECTION CAMPAIGN IN NON-VULNERABLE "
        "VERSIONS",
        _rule(16 + 24 * len(version_names)),
        f"{'Use Case':<16}{header_versions}",
        f"{'':<16}{sub}",
        _rule(16 + 24 * len(version_names)),
    ]
    for name in use_case_names:
        row = f"{name:<16}"
        for version in version_names:
            result = cells[(name, version)]
            err, vio = _cell(result)
            row += f"{err:<12}{vio:<12}"
        lines.append(row)
    lines.append(_rule(16 + 24 * len(version_names)))
    lines.append(
        f"{CHECK} = property correctly induced; {SHIELD} = erroneous state "
        "handled by the system"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# RQ1 (the §VI validation on the vulnerable version)
# ---------------------------------------------------------------------------

def render_rq1(
    pairs: Sequence[Tuple[RunResult, RunResult]],
    verdicts: Sequence[EquivalenceVerdict],
) -> str:
    """§VI: exploit vs injection on the vulnerable version."""
    lines = [
        "RQ1 — EXPLOIT vs INJECTION ON THE VULNERABLE VERSION (Xen 4.6)",
        _rule(),
        f"{'Use Case':<16}{'Exploit':<22}{'Injection':<22}{'Equivalent':<10}",
        _rule(),
    ]
    for (exploit, injection), verdict in zip(pairs, verdicts):
        def fmt(result: RunResult) -> str:
            err, vio = _cell(result)
            return f"err:{err} viol:{vio}"

        lines.append(
            f"{exploit.use_case:<16}{fmt(exploit):<22}{fmt(injection):<22}"
            f"{'YES' if verdict.equivalent else 'NO':<10}"
        )
    lines.append(_rule())
    equivalent = sum(1 for v in verdicts if v.equivalent)
    lines.append(
        f"{equivalent}/{len(verdicts)} use cases: injection induced the same "
        "erroneous state and the same security violation as the exploit"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# RQ2 summary (exploits failing on fixed versions)
# ---------------------------------------------------------------------------

def render_rq2(results: Sequence[RunResult]) -> str:
    """§VII preamble: the original PoCs all fail on fixed versions."""
    lines = [
        "RQ2 (precondition) — ORIGINAL EXPLOITS ON NON-VULNERABLE VERSIONS",
        _rule(),
        f"{'Use Case':<16}{'Version':<10}{'Outcome':<46}",
        _rule(),
    ]
    for result in results:
        outcome = result.failure or (
            "erroneous state induced (unexpected!)"
            if result.erroneous_state.achieved
            else "failed"
        )
        lines.append(f"{result.use_case:<16}{result.version:<10}{outcome:<46}")
    lines.append(_rule())
    all_failed = all(not r.erroneous_state.achieved for r in results)
    lines.append(
        "all exploits failed -> vulnerabilities are fixed"
        if all_failed
        else "WARNING: some exploit still works on a 'fixed' version"
    )
    return "\n".join(lines)
