"""Analysis over campaign output: table renderers, reports, statistics,
intrusiveness profiling and assessment-coverage planning."""

from repro.analysis.coverage import coverage_report
from repro.analysis.intrusiveness import IntrusivenessProfile, profile
from repro.analysis.report import (
    render_markdown_report,
    results_to_json,
    summarize_by_version,
)
from repro.analysis.stats import bootstrap_rate, compare_handling, handling_scores
from repro.analysis.tables import (
    render_rq1,
    render_rq2,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "IntrusivenessProfile",
    "bootstrap_rate",
    "compare_handling",
    "coverage_report",
    "handling_scores",
    "profile",
    "render_markdown_report",
    "render_rq1",
    "render_rq2",
    "render_table1",
    "render_table2",
    "render_table3",
    "results_to_json",
    "summarize_by_version",
]
