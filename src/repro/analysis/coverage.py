"""Assessment-coverage planning: taxonomy ↔ implemented injectors.

The §IV-D study ends with the plan to "properly understand what are
the possible set of erroneous states that we may inject and which IMs
we can abstract from them".  This module closes that loop for the
current prototype: it maps each abusive functionality of Table I to
the injection capability that covers it (one of the paper's four
use-case scripts, one of the extension scripts, or nothing yet), and
reports what fraction of the CVE study a campaign built from the
available injectors would exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.taxonomy import AbusiveFunctionality as AF
from repro.core.taxonomy import FunctionalityClass
from repro.cvedata.study import FunctionalityStudy

#: Functionality -> the injection capability that covers it (None =
#: not yet injectable with the shipped scripts).
INJECTOR_COVERAGE: Dict[AF, Optional[str]] = {
    AF.READ_UNAUTHORIZED_MEMORY: "extensions.inject_read_unauthorized",
    AF.WRITE_UNAUTHORIZED_MEMORY: "arbitrary_access (direct write)",
    AF.WRITE_UNAUTHORIZED_ARBITRARY_MEMORY: "XSA-212 use-case scripts",
    AF.RW_UNAUTHORIZED_MEMORY: "arbitrary_access (read+write modes)",
    AF.FAIL_A_MEMORY_ACCESS: None,
    AF.CORRUPT_VIRTUAL_MEMORY_MAPPING: "fuzz campaign (pagetable targets)",
    AF.CORRUPT_A_PAGE_REFERENCE: None,
    AF.DECREASE_PAGE_MAPPING_AVAILABILITY: None,
    AF.GUEST_WRITABLE_PAGE_TABLE_ENTRY: "XSA-148/182 use-case scripts",
    AF.FAIL_A_MEMORY_MAPPING: None,
    AF.UNCONTROLLED_MEMORY_ALLOCATION: None,
    AF.KEEP_PAGE_ACCESS: "grant-table v2→v1 scenario (XSA-387/393)",
    AF.INDUCE_A_FATAL_EXCEPTION: "extensions.inject_fatal_exception",
    AF.INDUCE_A_MEMORY_EXCEPTION: "fuzz campaign (fault outcomes)",
    AF.INDUCE_A_HANG_STATE: "extensions.inject_hang_state",
    AF.UNCONTROLLED_ARBITRARY_INTERRUPT_REQUESTS: (
        "extensions.inject_interrupt_storm"
    ),
}


@dataclass
class CoverageReport:
    """How much of the study the shipped injectors can exercise."""

    study: FunctionalityStudy
    coverage: Dict[AF, Optional[str]]

    @property
    def covered_functionalities(self) -> List[AF]:
        return [f for f, injector in self.coverage.items() if injector]

    @property
    def uncovered_functionalities(self) -> List[AF]:
        return [f for f, injector in self.coverage.items() if not injector]

    @property
    def functionality_coverage(self) -> float:
        return len(self.covered_functionalities) / len(self.coverage)

    def covered_cves(self) -> int:
        """CVEs with at least one covered functionality."""
        covered = set(self.covered_functionalities)
        return sum(
            1
            for record in self.study.records
            if any(f in covered for f in record.functionalities)
        )

    @property
    def cve_coverage(self) -> float:
        return self.covered_cves() / self.study.num_cves

    def class_gaps(self) -> Dict[FunctionalityClass, List[AF]]:
        gaps: Dict[FunctionalityClass, List[AF]] = {}
        for functionality in self.uncovered_functionalities:
            gaps.setdefault(functionality.functionality_class, []).append(
                functionality
            )
        return gaps

    def render(self) -> str:
        lines = [
            "ASSESSMENT COVERAGE — TABLE I FUNCTIONALITIES vs SHIPPED "
            "INJECTORS",
            "-" * 76,
        ]
        for functionality, injector in self.coverage.items():
            status = injector if injector else "(no injector yet)"
            lines.append(f"  {functionality.label:<45} {status}")
        lines += [
            "-" * 76,
            f"functionalities covered: {len(self.covered_functionalities)}"
            f"/{len(self.coverage)} ({self.functionality_coverage:.0%})",
            f"study CVEs exercisable:  {self.covered_cves()}"
            f"/{self.study.num_cves} ({self.cve_coverage:.0%})",
        ]
        gaps = self.class_gaps()
        if gaps:
            lines.append("gaps by class:")
            for klass, functionalities in gaps.items():
                names = ", ".join(f.label for f in functionalities)
                lines.append(f"  {klass.value}: {names}")
        return "\n".join(lines)


def coverage_report(
    study: Optional[FunctionalityStudy] = None,
) -> CoverageReport:
    """Build the coverage report for a study (default: the paper's)."""
    return CoverageReport(
        study=study or FunctionalityStudy.default(),
        coverage=dict(INJECTOR_COVERAGE),
    )
