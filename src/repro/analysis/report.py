"""Campaign reports: serialization and markdown summaries.

Campaigns produce lists of :class:`~repro.core.campaign.RunResult`;
this module turns them into durable artefacts — JSON for tooling,
markdown for humans — and computes the cross-version summary the
paper's RQ3 discussion draws (which version handled how many injected
erroneous states).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.core.campaign import Mode, RunResult


def result_to_dict(result: RunResult) -> dict:
    """Serialize one run result (log tails only, to keep files small)."""
    return {
        "use_case": result.use_case,
        "version": result.version,
        "mode": result.mode.value,
        "erroneous_state": {
            "achieved": result.erroneous_state.achieved,
            "description": result.erroneous_state.description,
            "fingerprint": {
                key: value
                for key, value in result.erroneous_state.fingerprint.items()
            },
            "evidence": list(result.erroneous_state.evidence),
        },
        "violation": {
            "occurred": result.violation.occurred,
            "kind": result.violation.kind,
            "evidence": list(result.violation.evidence),
        },
        "crashed": result.crashed,
        "failure": result.failure,
        "console_tail": result.console[-6:],
        "guest_log_tail": result.guest_log[-6:],
    }


def results_to_json(results: Iterable[RunResult], indent: int = 2) -> str:
    """Serialize a list of run results to a JSON document."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


@dataclass
class VersionSummary:
    """Aggregate over one version's injection runs."""

    version: str
    injected: int = 0
    violated: int = 0
    handled: int = 0
    not_injected: int = 0

    @property
    def handling_rate(self) -> float:
        """Fraction of injected erroneous states the version handled —
        a simple security-attribute indicator (RQ3)."""
        if not self.injected:
            return 0.0
        return self.handled / self.injected


def summarize_by_version(results: Sequence[RunResult]) -> Dict[str, VersionSummary]:
    """RQ3-style aggregation over injection runs."""
    summaries: Dict[str, VersionSummary] = {}
    for result in results:
        if result.mode is not Mode.INJECTION:
            continue
        summary = summaries.setdefault(
            result.version, VersionSummary(version=result.version)
        )
        if not result.erroneous_state.achieved:
            summary.not_injected += 1
            continue
        summary.injected += 1
        if result.violation.occurred:
            summary.violated += 1
        else:
            summary.handled += 1
    return summaries


def render_markdown_report(results: Sequence[RunResult], title: str) -> str:
    """A human-readable campaign report."""
    lines = [f"# {title}", ""]

    summaries = summarize_by_version(results)
    if summaries:
        lines += [
            "## Version summary (injection runs)",
            "",
            "| version | states injected | violations | handled | handling rate |",
            "|---|---|---|---|---|",
        ]
        for version in sorted(summaries):
            summary = summaries[version]
            lines.append(
                f"| Xen {summary.version} | {summary.injected} "
                f"| {summary.violated} | {summary.handled} "
                f"| {summary.handling_rate:.0%} |"
            )
        lines.append("")

    lines += ["## Runs", ""]
    lines += [
        "| use case | version | mode | err. state | violation | failure |",
        "|---|---|---|---|---|---|",
    ]
    for result in results:
        violation = result.violation.kind if result.violation.occurred else (
            "handled" if result.erroneous_state.achieved else "—"
        )
        lines.append(
            f"| {result.use_case} | {result.version} | {result.mode.value} "
            f"| {'yes' if result.erroneous_state.achieved else 'no'} "
            f"| {violation} | {result.failure or '—'} |"
        )
    lines.append("")
    return "\n".join(lines)
