"""Campaign reports: serialization and markdown summaries.

Campaigns produce lists of :class:`~repro.core.campaign.RunResult`;
this module turns them into durable artefacts — JSON for tooling,
markdown for humans — and computes the cross-version summary the
paper's RQ3 discussion draws (which version handled how many injected
erroneous states).

Reports can also be rendered straight *from a runner result store*
(:func:`runs_from_store` and friends): a campaign executed in parallel
with ``--jobs N --store PATH`` yields byte-identical JSON and markdown
artefacts to a serial in-process run over the same job set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.campaign import Mode, RunResult
from repro.core.erroneous_state import ErroneousStateReport
from repro.core.monitor import ViolationReport


def result_to_dict(result: RunResult) -> dict:
    """Serialize one run result (log tails only, to keep files small).

    The ``recovery`` key is present only for runs that microrebooted:
    runs without recovery serialize exactly as they always have, so
    campaign artefacts from before ``--recover`` existed — and every
    campaign that never crashes — stay byte-identical.
    """
    data = {
        "use_case": result.use_case,
        "version": result.version,
        "mode": result.mode.value,
        "erroneous_state": {
            "achieved": result.erroneous_state.achieved,
            "description": result.erroneous_state.description,
            "fingerprint": {
                key: value
                for key, value in result.erroneous_state.fingerprint.items()
            },
            "evidence": list(result.erroneous_state.evidence),
        },
        "violation": {
            "occurred": result.violation.occurred,
            "kind": result.violation.kind,
            "evidence": list(result.violation.evidence),
        },
        "crashed": result.crashed,
        "failure": result.failure,
        "console_tail": result.console[-6:],
        "guest_log_tail": result.guest_log[-6:],
    }
    if result.violation.observed_in is not None:
        # Domain provenance: only cross-domain-aware monitors set it,
        # so historical payloads keep their exact key set.
        data["violation"]["observed_in"] = result.violation.observed_in
    if result.topology is not None:
        data["topology"] = result.topology
    if result.recovery is not None:
        data["recovery"] = result.recovery.to_dict()
    if result.trace is not None:
        # Basename-only summary: artefacts live in the campaign's
        # trace directory, and payloads must not depend on where that
        # directory happens to be (serial and parallel runs of the
        # same campaign use different ones and must stay comparable).
        data["trace"] = dict(result.trace)
    if result.metrics is not None:
        # Counters only: timings are wall-clock and would break the
        # serial-vs-parallel (and serial-vs-chaos) byte identity of
        # campaign artefacts.
        data["metrics"] = {"counters": dict(result.metrics.get("counters", {}))}
    return data


def results_to_json(results: Iterable[RunResult], indent: int = 2) -> str:
    """Serialize a list of run results to a JSON document."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def run_result_from_dict(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output.

    Console and guest logs come back as their archived tails — enough
    for every report path, which only reads the structured fields.
    """
    err = data["erroneous_state"]
    vio = data["violation"]
    recovery = None
    if data.get("recovery") is not None:
        from repro.resilience.recovery import RecoveryReport

        recovery = RecoveryReport.from_dict(data["recovery"])
    return RunResult(
        use_case=data["use_case"],
        version=data["version"],
        mode=Mode(data["mode"]),
        erroneous_state=ErroneousStateReport(
            achieved=err["achieved"],
            description=err["description"],
            fingerprint=dict(err["fingerprint"]),
            evidence=list(err["evidence"]),
        ),
        violation=ViolationReport(
            occurred=vio["occurred"],
            kind=vio["kind"],
            evidence=list(vio["evidence"]),
            observed_in=vio.get("observed_in"),
        ),
        crashed=data["crashed"],
        failure=data["failure"],
        console=list(data["console_tail"]),
        guest_log=list(data["guest_log_tail"]),
        recovery=recovery,
        trace=data.get("trace"),
        metrics=data.get("metrics"),
        topology=data.get("topology"),
    )


# ----------------------------------------------------------------------
# Rendering from a runner result store
# ----------------------------------------------------------------------


def runs_from_store(store) -> List[RunResult]:
    """The store's completed campaign runs, in plan order."""
    from repro.runner.jobs import CAMPAIGN_RUN

    return [
        run_result_from_dict(payload)
        for _spec, payload in store.payloads(kind=CAMPAIGN_RUN)
    ]


def results_json_from_store(store, indent: int = 2) -> str:
    """JSON artefact from a store — byte-identical to
    :func:`results_to_json` over the same (serially run) job set."""
    from repro.runner.jobs import CAMPAIGN_RUN

    payloads = [payload for _spec, payload in store.payloads(kind=CAMPAIGN_RUN)]
    return json.dumps(payloads, indent=indent)


def render_markdown_report_from_store(store, title: str) -> str:
    """Markdown artefact from a store — byte-identical to
    :func:`render_markdown_report` over the same job set."""
    return render_markdown_report(runs_from_store(store), title)


def aggregate_metrics(results: Sequence[RunResult]) -> dict:
    """Sum per-run metric counters across a campaign.

    Returns ``{"runs": <metered run count>, "counters": {...}}`` with
    the counters summed key-by-key over every run that carried
    metrics.  Deterministic (sorted keys, counters only), so the same
    campaign aggregates identically however it was executed.
    """
    totals: Dict[str, int] = {}
    metered = 0
    for result in results:
        if result.metrics is None:
            continue
        metered += 1
        for key, value in result.metrics.get("counters", {}).items():
            totals[key] = totals.get(key, 0) + value
    return {
        "runs": metered,
        "counters": {key: totals[key] for key in sorted(totals)},
    }


@dataclass
class VersionSummary:
    """Aggregate over one version's injection runs."""

    version: str
    injected: int = 0
    violated: int = 0
    handled: int = 0
    not_injected: int = 0

    @property
    def handling_rate(self) -> float:
        """Fraction of injected erroneous states the version handled —
        a simple security-attribute indicator (RQ3)."""
        if not self.injected:
            return 0.0
        return self.handled / self.injected


def summarize_by_version(results: Sequence[RunResult]) -> Dict[str, VersionSummary]:
    """RQ3-style aggregation over injection runs."""
    summaries: Dict[str, VersionSummary] = {}
    for result in results:
        if result.mode is not Mode.INJECTION:
            continue
        summary = summaries.setdefault(
            result.version, VersionSummary(version=result.version)
        )
        if not result.erroneous_state.achieved:
            summary.not_injected += 1
            continue
        summary.injected += 1
        if result.violation.occurred:
            summary.violated += 1
        else:
            summary.handled += 1
    return summaries


def render_markdown_report(results: Sequence[RunResult], title: str) -> str:
    """A human-readable campaign report."""
    lines = [f"# {title}", ""]

    summaries = summarize_by_version(results)
    if summaries:
        lines += [
            "## Version summary (injection runs)",
            "",
            "| version | states injected | violations | handled | handling rate |",
            "|---|---|---|---|---|",
        ]
        for version in sorted(summaries):
            summary = summaries[version]
            lines.append(
                f"| Xen {summary.version} | {summary.injected} "
                f"| {summary.violated} | {summary.handled} "
                f"| {summary.handling_rate:.0%} |"
            )
        lines.append("")

    lines += ["## Runs", ""]
    lines += [
        "| use case | version | mode | err. state | violation | failure |",
        "|---|---|---|---|---|---|",
    ]
    for result in results:
        violation = result.violation.kind if result.violation.occurred else (
            "handled" if result.erroneous_state.achieved else "—"
        )
        lines.append(
            f"| {result.use_case} | {result.version} | {result.mode.value} "
            f"| {'yes' if result.erroneous_state.achieved else 'no'} "
            f"| {violation} | {result.failure or '—'} |"
        )
    lines.append("")

    recovered = [r for r in results if r.recovery is not None]
    if recovered:
        lines += [
            "## Recovery (microreboot runs)",
            "",
            "| use case | version | mode | outcome | reboots | quarantined | wall time |",
            "|---|---|---|---|---|---|---|",
        ]
        for result in recovered:
            report = result.recovery
            quarantined = (
                ", ".join(f"d{d}" for d in report.quarantined) or "—"
            )
            lines.append(
                f"| {result.use_case} | {result.version} "
                f"| {result.mode.value} | {report.outcome_class} "
                f"| {report.reboots} | {quarantined} "
                f"| {report.wall_time * 1000:.1f} ms |"
            )
        lines.append("")

    metered = [r for r in results if r.metrics is not None]
    if metered:
        lines += [
            "## Metrics",
            "",
            "| use case | version | mode | ops | hypercalls | traps | pt updates | crashes |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for result in metered:
            counters = result.metrics.get("counters", {})
            total_ops = sum(
                value
                for key, value in counters.items()
                if key.startswith("ops.")
            )
            traps = counters.get("traps", 0)
            lines.append(
                f"| {result.use_case} | {result.version} "
                f"| {result.mode.value} | {total_ops} "
                f"| {counters.get('ops.hypercall', 0)} | {traps} "
                f"| {counters.get('pt.updates', 0)} "
                f"| {counters.get('crashes', 0)} |"
            )
        lines.append("")

    traced = [r for r in results if r.trace is not None]
    if traced:
        lines += [
            "## Trace artefacts",
            "",
            "| use case | version | mode | trace file | ops | final digest |",
            "|---|---|---|---|---|---|",
        ]
        for result in traced:
            trace = result.trace
            lines.append(
                f"| {result.use_case} | {result.version} "
                f"| {result.mode.value} | `{trace.get('file')}` "
                f"| {trace.get('ops')} | `{trace.get('final_digest')}` |"
            )
        lines.append("")
        lines.append(
            "Replay with `repro replay <trace-dir>/<file>`; minimize a "
            "crashing trace with `repro triage <trace-dir>/<file>`."
        )
        lines.append("")
    return "\n".join(lines)
