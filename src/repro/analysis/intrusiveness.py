"""Quantifying the injector's intrusiveness (paper §IX-D).

"Intrusiveness is another aspect [that] can be seen as a drawback
since the injection of erroneous states may require modifying the
system."  The simulator makes that footprint measurable: the injector
adds one entry to the hypercall table, each injection appears in the
hypervisor's hypercall audit trail, and its installation is logged on
the console.  This module extracts those signals from a run so that
the exploit path and the injection path can be compared — useful both
to judge the prototype's footprint and to check whether a defender's
monitoring would see injections at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.xen.constants import HYPERCALL_ARBITRARY_ACCESS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.hypervisor import Xen


@dataclass
class IntrusivenessProfile:
    """The observable footprint of one run on one hypervisor."""

    total_hypercalls: int
    injector_hypercalls: int
    injector_console_lines: int
    hypercalls_by_number: Dict[int, int]

    @property
    def injector_fraction(self) -> float:
        if not self.total_hypercalls:
            return 0.0
        return self.injector_hypercalls / self.total_hypercalls

    @property
    def detectable(self) -> bool:
        """Would a defender tapping the hypercall trail see the
        injector in use?"""
        return self.injector_hypercalls > 0

    def render(self) -> str:
        return (
            f"{self.injector_hypercalls}/{self.total_hypercalls} hypercalls "
            f"via arbitrary_access ({self.injector_fraction:.0%}); "
            f"{self.injector_console_lines} injector console line(s)"
        )


def profile(xen: "Xen") -> IntrusivenessProfile:
    """Extract the intrusiveness profile from a hypervisor's trails."""
    by_number: Dict[int, int] = {}
    injector_calls = 0
    for _, number, _ in xen.audit:
        by_number[number] = by_number.get(number, 0) + 1
        if number == HYPERCALL_ARBITRARY_ACCESS:
            injector_calls += 1
    console_lines = sum(
        1 for line in xen.console if "arbitrary_access" in line or "injector" in line
    )
    return IntrusivenessProfile(
        total_hypercalls=len(xen.audit),
        injector_hypercalls=injector_calls,
        injector_console_lines=console_lines,
        hypercalls_by_number=by_number,
    )
