"""Statistics over campaign results.

Two questions recur when intrusion injection is used for assessment:

* *is version A's handling of injected states significantly better
  than version B's?* — answered with Fisher's exact test over the
  handled/violated contingency table;
* *how confident are we in a fuzz campaign's outcome rates?* —
  answered with bootstrap confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.analysis.report import VersionSummary, summarize_by_version
from repro.core.campaign import RunResult
from repro.core.fuzz import FuzzReport


@dataclass
class HandlingComparison:
    """Fisher's exact test between two versions' handling outcomes."""

    version_a: str
    version_b: str
    handled_a: int
    violated_a: int
    handled_b: int
    violated_b: int
    odds_ratio: float
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05

    def render(self) -> str:
        return (
            f"Xen {self.version_a} handled {self.handled_a}/"
            f"{self.handled_a + self.violated_a} vs Xen {self.version_b} "
            f"{self.handled_b}/{self.handled_b + self.violated_b} "
            f"(Fisher p={self.p_value:.3f}"
            f"{', significant' if self.significant else ''})"
        )


def compare_handling(
    results: Sequence[RunResult], version_a: str, version_b: str
) -> HandlingComparison:
    """Compare two versions' injected-state handling (RQ3 with a
    p-value).  With only four use cases per version the test is
    underpowered — which is itself useful to report — but campaigns
    with many IMs produce meaningful contrasts."""
    summaries = summarize_by_version(results)
    a = summaries.get(version_a, VersionSummary(version=version_a))
    b = summaries.get(version_b, VersionSummary(version=version_b))
    table = [[a.handled, a.violated], [b.handled, b.violated]]
    odds_ratio, p_value = scipy_stats.fisher_exact(table)
    return HandlingComparison(
        version_a=version_a,
        version_b=version_b,
        handled_a=a.handled,
        violated_a=a.violated,
        handled_b=b.handled,
        violated_b=b.violated,
        odds_ratio=float(odds_ratio) if math.isfinite(odds_ratio) else float("inf"),
        p_value=float(p_value),
    )


@dataclass
class RateInterval:
    """A bootstrap confidence interval for an outcome rate."""

    component: str
    outcome: str
    rate: float
    low: float
    high: float

    def render(self) -> str:
        return (
            f"{self.component}: P[{self.outcome}] = {self.rate:.2f} "
            f"(95% CI {self.low:.2f}..{self.high:.2f})"
        )


def bootstrap_rate(
    report: FuzzReport,
    component: str,
    outcome: str,
    n_boot: int = 2000,
    seed: int = 7,
) -> RateInterval:
    """Bootstrap CI for one component's outcome rate in a fuzz run."""
    hits = [r for r in report.results if r.component == component]
    if not hits:
        return RateInterval(component, outcome, 0.0, 0.0, 0.0)
    indicator = np.array([1.0 if r.outcome == outcome else 0.0 for r in hits])
    rng = np.random.default_rng(seed)
    samples = rng.choice(indicator, size=(n_boot, indicator.size), replace=True)
    means = samples.mean(axis=1)
    low, high = np.percentile(means, [2.5, 97.5])
    return RateInterval(
        component=component,
        outcome=outcome,
        rate=float(indicator.mean()),
        low=float(low),
        high=float(high),
    )


def handling_scores(results: Sequence[RunResult]) -> Dict[str, float]:
    """Per-version handling rate (RQ3's simple indicator)."""
    return {
        version: summary.handling_rate
        for version, summary in summarize_by_version(results).items()
    }
