"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` / ``table2`` / ``table3`` / ``rq1`` / ``rq2`` — regenerate
  the paper's tables and research-question results;
* ``run --use-case U --version V --mode M`` — one experiment;
* ``campaign [--json PATH] [--markdown PATH]`` — the full matrix with
  optional report artefacts;
* ``study [--by-year | --by-component]`` — the Table I dataset;
* ``versions`` — the shipped hypervisor configurations.

The ``campaign``, ``fuzz``, ``benchmark`` and ``testcase`` commands
accept runner flags: ``--jobs N`` executes on a worker pool (fault
isolation, per-job ``--timeout``), ``--store PATH`` persists every
job to SQLite, and ``--resume PATH`` re-launches a half-finished
campaign without re-running completed jobs.  ``--jobs 1`` without a
store keeps the original serial in-process path and its exact output.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.report import render_markdown_report, results_to_json
from repro.analysis.tables import (
    render_rq1,
    render_rq2,
    render_table1,
    render_table2,
    render_table3,
)
from repro.core.campaign import Campaign, Mode
from repro.core.comparison import compare_runs
from repro.cvedata import FunctionalityStudy
from repro.exploits import USE_CASE_BY_NAME, USE_CASES
from repro.xen.versions import ALL_VERSIONS, XEN_4_6, version_by_name


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Campaign-execution flags shared by the heavy commands."""
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = serial in-process, the default)",
    )
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (parallel runs only)",
    )
    group.add_argument(
        "--fork-server", action="store_true",
        help="persistent snapshot-cached workers: boot once per worker, "
        "restore a digest-verified checkpoint per trial (fastest for "
        "fuzz campaigns; implies --jobs workers stay warm)",
    )
    group.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="jobs dispatched to a fork-server worker at a time",
    )
    group.add_argument(
        "--recycle-after", type=int, default=256, metavar="N",
        help="recycle a fork-server worker after serving N trials",
    )
    group.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="worker heartbeat grace before a wedged worker is killed "
        "(parallel runs only; default 30)",
    )
    group.add_argument(
        "--backoff-cap", type=float, default=5.0, metavar="SECONDS",
        help="ceiling on the exponential retry backoff (default 5)",
    )
    group.add_argument(
        "--store", metavar="PATH",
        help="persist jobs and results to a SQLite store",
    )
    group.add_argument(
        "--resume", metavar="PATH",
        help="resume from an existing store, skipping completed jobs",
    )


def _runner_from_args(args):
    """(runner, store) from the execution flags.

    Returns ``(None, None)`` when the plain serial path applies, so the
    original code path (and its exact output) is untouched by default.
    """
    if args.jobs < 1:
        raise SystemExit(f"error: --jobs must be at least 1, got {args.jobs}")
    fork_server = getattr(args, "fork_server", False)
    if args.resume and not os.path.exists(args.resume):
        raise SystemExit(f"error: --resume store {args.resume!r} does not exist")
    store_path = args.resume or args.store
    if args.jobs <= 1 and store_path is None and not fork_server:
        return None, None
    from repro.runner import ConsoleRenderer, ResultStore, make_runner

    store = ResultStore(store_path) if store_path else None
    if args.resume and store is not None:
        summary = store.summary()
        if summary.total:
            print(f"resuming: {summary.render()}", file=sys.stderr)
    renderer = ConsoleRenderer() if (args.jobs > 1 or fork_server) else None
    runner = make_runner(
        jobs=args.jobs, timeout=args.timeout, on_event=renderer,
        max_backoff=getattr(args, "backoff_cap", 5.0),
        liveness_grace=getattr(args, "heartbeat_timeout", 30.0),
        fork_server=fork_server,
        batch=getattr(args, "batch", 8),
        recycle_after=getattr(args, "recycle_after", 256),
    )
    return runner, store


def _add_topology_args(parser: argparse.ArgumentParser) -> None:
    """Scenario-topology flags shared by ``run`` and ``campaign``."""
    group = parser.add_argument_group("scenario topology")
    group.add_argument(
        "--guests", type=int, default=None, metavar="N",
        help="number of unprivileged guests to boot (default 2)",
    )
    group.add_argument(
        "--attacker", metavar="DOMAIN",
        help="domain the adversary drives (default: the last guest)",
    )
    group.add_argument(
        "--victim", metavar="DOMAIN",
        help="domain holding the targeted state (default dom0)",
    )
    group.add_argument(
        "--observer", metavar="DOMAIN",
        help="domain monitors watch for cross-domain observables "
        "(default: the victim)",
    )


def _topology_from_args(args):
    """Build the scenario topology the flags describe.

    Returns ``None`` when no flag was given, so callers pass nothing to
    :class:`Campaign` and the default path stays byte-identical.
    """
    from repro.core.topology import ScenarioTopology, TopologyError

    if getattr(args, "cross_domain", False):
        for flag in ("guests", "attacker", "victim", "observer"):
            if getattr(args, flag, None) is not None:
                raise SystemExit(
                    f"error: --cross-domain fixes the topology; drop --{flag}"
                )
        from repro.core.topology import CROSS_DOMAIN_TOPOLOGY

        return CROSS_DOMAIN_TOPOLOGY
    if all(
        getattr(args, flag, None) is None
        for flag in ("guests", "attacker", "victim", "observer")
    ):
        return None
    try:
        base = ScenarioTopology.paper_default(
            args.guests if args.guests is not None else 2
        )
        return ScenarioTopology(
            num_guests=base.num_guests,
            attacker=args.attacker or base.attacker,
            victim=args.victim or base.victim,
            observer=args.observer or args.victim or base.observer,
        )
    except TopologyError as exc:
        raise SystemExit(f"error: {exc}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Intrusion injection for virtualized systems "
        "(DSN 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: abusive-functionality study")
    sub.add_parser("table2", help="Table II: use cases and functionalities")
    sub.add_parser("table3", help="Table III: injection campaign")
    sub.add_parser("rq1", help="exploit vs injection on Xen 4.6")
    sub.add_parser("rq2", help="original exploits on fixed versions")
    sub.add_parser("versions", help="shipped hypervisor configurations")

    run = sub.add_parser("run", help="one experiment run")
    run.add_argument(
        "--use-case", required=True, metavar="NAME",
        help=f"one of {', '.join(sorted(USE_CASE_BY_NAME))}, or a "
             "synthetic corpus id (syn-<seed>-<index>-<class>)",
    )
    run.add_argument("--version", required=True, help="4.6 / 4.8 / 4.13 / 4.16")
    run.add_argument(
        "--mode", default="injection", choices=["exploit", "injection"]
    )
    run.add_argument("--verbose", action="store_true", help="dump logs")
    run.add_argument(
        "--recover", action="store_true",
        help="microreboot the hypervisor after a crash and report the "
        "recovery outcome (crash-then-recovered / crash-unrecoverable)",
    )
    run.add_argument(
        "--trace", metavar="DIR",
        help="record the run into DIR as a replayable trace (kept when "
        "the run crashes, violates, or recovers)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="collect per-trial probe metrics (op counters, hypercall "
        "breakdown, timings) and print them after the run",
    )
    _add_topology_args(run)

    campaign = sub.add_parser("campaign", help="full experiment matrix")
    campaign.add_argument("--json", help="write raw results as JSON")
    campaign.add_argument("--markdown", help="write a markdown report")
    campaign.add_argument(
        "--recover", action="store_true",
        help="run every cell under the microreboot crash watchdog",
    )
    campaign.add_argument(
        "--trace", metavar="DIR",
        help="record every cell into DIR; traces of crashing/violating/"
        "recovering runs are kept as replayable artefacts",
    )
    campaign.add_argument(
        "--metrics", action="store_true",
        help="collect per-trial probe metrics; counters land in the "
        "JSON/markdown artefacts and the result store",
    )
    campaign.add_argument(
        "--cross-domain", action="store_true",
        help="run the cross-domain matrix: the stock inject-in-A/"
        "observe-in-B topology with the xdom-* use cases",
    )
    _add_topology_args(campaign)
    _add_runner_args(campaign)

    replay = sub.add_parser(
        "replay",
        help="re-execute a recorded trace against a fresh machine and "
        "verify outcome and state digests op by op",
    )
    replay.add_argument("trace", help="trace file to replay")
    replay.add_argument(
        "--probe", action="store_true",
        help="probe mode: skip divergence checks, just report the "
        "terminal state",
    )

    triage = sub.add_parser(
        "triage",
        help="delta-debug a crashing trace to a minimal standalone "
        "reproducer plus a triage report",
    )
    triage.add_argument("trace", help="crashing trace file to minimize")
    triage.add_argument(
        "--out", metavar="PATH",
        help="minimized trace destination (default: <trace>.min.trace)",
    )
    triage.add_argument(
        "--report", metavar="PATH",
        help="markdown report destination (default: <trace>.triage.md)",
    )

    study = sub.add_parser("study", help="the 100-CVE dataset")
    study.add_argument("--by-year", action="store_true")
    study.add_argument("--by-component", action="store_true")

    bench = sub.add_parser(
        "benchmark", help="the eight-IM security benchmark, ranked"
    )
    bench.add_argument(
        "--versions", nargs="+", default=["4.6", "4.8", "4.13"],
        help="configurations to score",
    )
    _add_runner_args(bench)

    fuzz = sub.add_parser(
        "fuzz", help="randomized erroneous-state campaign (§IV-C)"
    )
    fuzz.add_argument("--version", default="4.13")
    fuzz.add_argument("--runs", type=int, default=20)
    fuzz.add_argument("--seed", type=int, default=2023)
    coverage_group = fuzz.add_argument_group(
        "coverage-guided mode (synthetic corpus)"
    )
    coverage_group.add_argument(
        "--coverage", action="store_true",
        help="fuzz the synthetic vulnerability corpus with "
        "coverage-guided scheduling instead of uniform component "
        "corruption (probe counters are the coverage map)",
    )
    coverage_group.add_argument(
        "--corpus-seed", type=int, default=2023, metavar="SEED",
        help="root seed of the synthetic corpus (default 2023)",
    )
    coverage_group.add_argument(
        "--corpus-size", type=int, default=32, metavar="N",
        help="corpus entries to generate (default 32)",
    )
    coverage_group.add_argument(
        "--rounds", type=int, default=4, metavar="N",
        help="scheduler rounds (default 4)",
    )
    coverage_group.add_argument(
        "--trials", type=int, default=8, metavar="N",
        help="trials per round (default 8)",
    )
    coverage_group.add_argument(
        "--uniform", action="store_true",
        help="use the uniform baseline scheduler (the control arm)",
    )
    coverage_group.add_argument(
        "--report-json", metavar="PATH",
        help="write the coverage report (schedule digest, novelty "
        "curve, distinct outcomes) as JSON",
    )
    _add_runner_args(fuzz)

    vulngen = sub.add_parser(
        "vulngen",
        help="generate the synthetic hypercall-vulnerability corpus "
        "(deterministic, version-gated, injectable like the real XSAs)",
    )
    vulngen.add_argument(
        "--seed", type=int, default=2023,
        help="corpus root seed (default 2023)",
    )
    vulngen.add_argument(
        "--size", type=int, default=125,
        help="number of entries to generate (default 125)",
    )
    vulngen.add_argument(
        "--manifest", metavar="PATH",
        help="write the canonical JSON manifest (byte-stable, digested)",
    )
    vulngen.add_argument(
        "--resolve", metavar="ID",
        help="resolve one synthetic id back to its full spec and exit",
    )

    sub.add_parser(
        "coverage", help="Table I functionalities vs shipped injectors"
    )

    testcase = sub.add_parser(
        "testcase", help="the §X open test-case list"
    )
    testcase.add_argument(
        "action", choices=["list", "run", "suite"],
    )
    testcase.add_argument("name", nargs="?", help="test case for 'run'")
    testcase.add_argument("--version", default="4.13")
    _add_runner_args(testcase)

    chaos = sub.add_parser(
        "chaos",
        help="run the campaign under seeded infrastructure faults and "
        "assert serial == chaos-parallel store contents",
    )
    chaos.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3], metavar="SEED",
        help="chaos seeds to run (each is an independent campaign)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for the chaos pool",
    )
    chaos.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="per-job wall-clock budget (hanging jobs exceed this)",
    )
    chaos.add_argument(
        "--events", metavar="PATH",
        help="append every runner event as JSON lines (the CI artifact)",
    )
    chaos.add_argument(
        "--trace", metavar="DIR",
        help="record traces for both the serial reference and the "
        "chaos run into DIR/<seed>/{serial,chaos} and assert they are "
        "byte-identical",
    )
    chaos.add_argument(
        "--metrics", action="store_true",
        help="collect probe metrics in every job; the serial-vs-chaos "
        "identity check then covers the metric counters too",
    )
    chaos.add_argument(
        "--metrics-json", metavar="PATH",
        help="write the aggregated metric counters of the serial "
        "reference as JSON (implies --metrics)",
    )
    chaos.add_argument(
        "--pool", choices=("spawn", "fork-server"), default="spawn",
        help="pool mode for the chaos episodes; fork-server adds "
        "snapshot-corruption and restore-wedge faults",
    )
    chaos.add_argument(
        "--report-json", metavar="PATH",
        help="write per-seed chaos reports (episodes, faults, verdict, "
        "store sha256) as JSON — CI compares these across pool modes",
    )

    serve = sub.add_parser(
        "serve",
        help="run the campaign service: HTTP submissions, SSE progress, "
        "per-tenant quotas, crash-safe journal",
    )
    serve.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="service state root (journal, registry, per-tenant shards)",
    )
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="listen port (0 = ephemeral; the bound port lands in "
        "<data-dir>/service.json)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per campaign runner",
    )
    serve.add_argument(
        "--fork-server", action="store_true",
        help="run campaigns on the snapshot-cached fork-server pool",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="worker heartbeat grace before a wedged worker is killed",
    )
    serve.add_argument(
        "--backoff-cap", type=float, default=5.0, metavar="SECONDS",
        help="ceiling on the exponential retry backoff",
    )
    serve.add_argument(
        "--ack-every", type=int, default=8, metavar="N",
        help="journal a progress checkpoint every N completed jobs",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=2.0, metavar="PER_SEC",
        help="per-tenant submission token refill rate",
    )
    serve.add_argument(
        "--quota-burst", type=int, default=8, metavar="N",
        help="per-tenant submission burst size",
    )
    serve.add_argument(
        "--max-tenant-jobs", type=int, default=10000, metavar="N",
        help="max unfinished jobs one tenant may hold",
    )
    serve.add_argument(
        "--max-active", type=int, default=2, metavar="N",
        help="campaigns executing concurrently",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="admitted-but-waiting campaigns before load shedding",
    )
    serve.add_argument(
        "--ready-file", metavar="PATH",
        help="where to write the host/port/pid file "
        "(default <data-dir>/service.json)",
    )

    service = sub.add_parser(
        "service",
        help="offline service-data operations (compact, chaos)",
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)
    compact = service_sub.add_parser(
        "compact",
        help="fold per-campaign shard stores into one byte-stable "
        "aggregate store and print its sha256",
    )
    compact.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="service data directory to compact",
    )
    compact.add_argument(
        "--out", metavar="PATH",
        help="aggregate store path (default <data-dir>/compacted.sqlite)",
    )
    svc_chaos = service_sub.add_parser(
        "chaos",
        help="kill-and-restart the service mid-campaign under seeded "
        "faults and assert the compacted store is byte-identical to "
        "an uninterrupted run",
    )
    svc_chaos.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3], metavar="SEED",
        help="chaos seeds (each is an independent service lifetime)",
    )
    svc_chaos.add_argument(
        "--workdir", metavar="DIR",
        help="scratch directory (default: a fresh temp dir per seed)",
    )
    svc_chaos.add_argument(
        "--report-json", metavar="PATH",
        help="write per-seed service chaos reports as JSON",
    )

    metrics = sub.add_parser(
        "metrics",
        help="aggregate and print the probe metrics stored by a "
        "--metrics campaign run with --store",
    )
    metrics.add_argument("store", help="SQLite result store to read")
    metrics.add_argument(
        "--json", metavar="PATH",
        help="also write the aggregate as JSON",
    )

    from repro.staticcheck.cli import (
        add_staticcheck_eval_parser,
        add_staticcheck_parser,
    )

    add_staticcheck_parser(sub)
    add_staticcheck_eval_parser(sub)

    return parser


def _cmd_run(args) -> int:
    from repro.core.injections import resolve

    try:
        use_case = resolve(args.use_case)
    except KeyError as exc:
        print(f"run: {exc.args[0]}", file=sys.stderr)
        return 2
    version = version_by_name(args.version)
    mode = Mode(args.mode)
    result = Campaign(
        recover=args.recover,
        trace_dir=args.trace,
        collect_metrics=args.metrics,
        topology=_topology_from_args(args),
    ).run(use_case, version, mode)
    print(result.summary)
    if result.trace is not None:
        print(
            f"trace: {os.path.join(args.trace, result.trace['file'])} "
            f"({result.trace['ops']} ops)"
        )
    if result.failure:
        print(f"failure: {result.failure}")
    if result.recovery is not None:
        report = result.recovery
        print(
            f"recovery: {report.outcome_class} after {report.reboots} "
            f"microreboot(s) in {report.wall_time * 1000:.1f} ms"
        )
        for line in report.evidence:
            print(f"recovery: {line}")
    for line in result.erroneous_state.evidence:
        print(f"audit: {line}")
    for line in result.violation.evidence:
        print(f"violation: {line}")
    if result.metrics is not None:
        print("\n--- metrics ---")
        for key, value in result.metrics.get("counters", {}).items():
            print(f"{key:<32} {value}")
        for key, value in result.metrics.get("timings", {}).items():
            print(f"{key:<32} {value * 1000:.3f} ms")
    if args.verbose:
        print("\n--- guest log ---")
        print("\n".join(result.guest_log))
        print("\n--- Xen console ---")
        print("\n".join(result.console))
    return 0


def _cmd_campaign(args) -> int:
    campaign = Campaign(
        recover=args.recover,
        trace_dir=args.trace,
        collect_metrics=args.metrics,
        topology=_topology_from_args(args),
    )
    use_cases = USE_CASES
    if args.cross_domain:
        from repro.exploits import CROSS_DOMAIN_USE_CASES

        use_cases = CROSS_DOMAIN_USE_CASES
    runner, store = _runner_from_args(args)
    try:
        results = campaign.run_matrix(
            use_cases, ALL_VERSIONS, runner=runner, store=store
        )
    finally:
        if store is not None:
            store.close()
    for result in results:
        print(result.summary)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(results_to_json(results))
        print(f"\nraw results written to {args.json}")
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(
                render_markdown_report(results, "Intrusion-injection campaign")
            )
        print(f"report written to {args.markdown}")
    return 0


def _cmd_study(args) -> int:
    study = FunctionalityStudy.default()
    if args.by_year:
        for year, count in study.by_year().items():
            print(f"{year}: {count}")
        return 0
    if args.by_component:
        for component, count in study.by_component().items():
            print(f"{component:<24} {count}")
        return 0
    print(render_table1(study))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    from repro.runner.pool import CampaignFailed, CampaignInterrupted
    from repro.runner.store import (
        StoreBusy,
        StoreCorrupt,
        StorePlanMismatch,
        StoreSchemaMismatch,
    )

    try:
        return _dispatch(args)
    except CampaignFailed as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 1
    except CampaignInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130  # the conventional fatal-signal exit code
    except (StoreBusy, StoreCorrupt, StorePlanMismatch, StoreSchemaMismatch) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    campaign = Campaign()

    if args.command == "table1":
        print(render_table1(FunctionalityStudy.default()))
    elif args.command == "table2":
        print(render_table2(USE_CASES))
    elif args.command == "table3":
        from repro.xen.versions import XEN_4_8, XEN_4_13

        cells = campaign.table3_runs(USE_CASES, (XEN_4_8, XEN_4_13))
        print(render_table3(cells, [u.name for u in USE_CASES], ["4.8", "4.13"]))
    elif args.command == "rq1":
        pairs = campaign.rq1_runs(USE_CASES, XEN_4_6)
        verdicts = [compare_runs(e, i) for e, i in pairs]
        print(render_rq1(pairs, verdicts))
    elif args.command == "rq2":
        from repro.xen.versions import XEN_4_8, XEN_4_13

        results = [
            campaign.run(u, v, Mode.EXPLOIT)
            for u in USE_CASES
            for v in (XEN_4_8, XEN_4_13)
        ]
        print(render_rq2(results))
    elif args.command == "versions":
        for version in ALL_VERSIONS:
            vulns = ", ".join(sorted(v.value for v in version.vulnerabilities))
            hard = ", ".join(sorted(h.value for h in version.hardening)) or "none"
            print(f"Xen {version.name} ({version.release_year}): "
                  f"vulnerabilities=[{vulns or 'none'}] hardening=[{hard}]")
    elif args.command == "run":
        return _cmd_run(args)
    elif args.command == "campaign":
        return _cmd_campaign(args)
    elif args.command == "study":
        return _cmd_study(args)
    elif args.command == "benchmark":
        from repro.core.benchmarking import SecurityBenchmark

        versions = [version_by_name(name) for name in args.versions]
        runner, store = _runner_from_args(args)
        try:
            cards = SecurityBenchmark().rank(versions, runner=runner, store=store)
        finally:
            if store is not None:
                store.close()
        for rank, card in enumerate(cards, start=1):
            print(f"rank {rank}:")
            print(card.render())
            print()
    elif args.command == "fuzz":
        return _cmd_fuzz(args)
    elif args.command == "vulngen":
        return _cmd_vulngen(args)
    elif args.command == "coverage":
        from repro.analysis.coverage import coverage_report

        print(coverage_report().render())
    elif args.command == "testcase":
        return _cmd_testcase(args)
    elif args.command == "chaos":
        return _cmd_chaos(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "service":
        return _cmd_service(args)
    elif args.command == "metrics":
        return _cmd_metrics(args)
    elif args.command == "replay":
        return _cmd_replay(args)
    elif args.command == "triage":
        return _cmd_triage(args)
    elif args.command == "staticcheck":
        from repro.staticcheck.cli import run_staticcheck

        return run_staticcheck(args)
    elif args.command == "staticcheck-eval":
        from repro.staticcheck.cli import run_staticcheck_eval

        return run_staticcheck_eval(args)
    return 0


def _cmd_fuzz(args) -> int:
    if args.coverage:
        return _cmd_fuzz_coverage(args)
    from repro.core.fuzz import RandomErroneousStateCampaign

    fuzz_campaign = RandomErroneousStateCampaign(
        version_by_name(args.version), seed=args.seed
    )
    runner, store = _runner_from_args(args)
    try:
        report = fuzz_campaign.run(
            runs_per_component=args.runs, runner=runner, store=store
        )
    finally:
        if store is not None:
            store.close()
    print(report.render())
    return 0


def _cmd_fuzz_coverage(args) -> int:
    if args.store or args.resume:
        print(
            "error: --coverage campaigns are multi-round (each round is "
            "its own job plan) and cannot share a result store; drop "
            "--store/--resume — the campaign is deterministic, so "
            "re-running it is exact",
            file=sys.stderr,
        )
        return 2
    from repro.vulngen import CoverageFuzzCampaign, generate_corpus

    corpus = generate_corpus(args.corpus_seed, args.corpus_size)
    runner, _ = _runner_from_args(args)
    campaign = CoverageFuzzCampaign(
        version_by_name(args.version),
        corpus,
        root_seed=args.seed,
        guided=not args.uniform,
    )
    report = campaign.run(
        rounds=args.rounds, trials_per_round=args.trials, runner=runner
    )
    print(report.render())
    if args.report_json:
        import json

        with open(args.report_json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"coverage report written to {args.report_json}")
    return 0


def _cmd_vulngen(args) -> int:
    from repro.vulngen import generate_corpus, is_synthetic_id, spec_by_id

    if args.resolve:
        if not is_synthetic_id(args.resolve):
            print(
                f"vulngen: {args.resolve!r} is not a synthetic id "
                "(expected 'syn-<seed>-<index>-<class>')",
                file=sys.stderr,
            )
            return 2
        spec = spec_by_id(args.resolve)
        print(f"id:        {spec.id}")
        print(f"class:     {spec.vuln_class.value}")
        print(f"component: {spec.component}")
        print(f"gate:      {spec.gate.kind}:{spec.gate.advisory}")
        print(f"word:      {spec.word} (span {spec.span})")
        print(f"value:     {spec.value:#018x}")
        return 0
    corpus = generate_corpus(args.seed, args.size)
    print(corpus.render())
    if args.manifest:
        with open(args.manifest, "w") as handle:
            handle.write(corpus.manifest_json())
        print(f"manifest written to {args.manifest}")
    return 0


def _cmd_testcase(args) -> int:
    from repro.core.testcases import REGISTRY, run_suite, run_test_case

    if args.action == "list":
        for case in REGISTRY.values():
            print(
                f"{case.name:<20} [{case.origin}/{case.attribute}] "
                f"{case.description}"
            )
        return 0
    version = version_by_name(args.version)
    if args.action == "run":
        if not args.name:
            print("testcase run: missing test-case name", file=sys.stderr)
            return 2
        try:
            outcome = run_test_case(args.name, version)
        except KeyError as exc:
            print(f"testcase run: {exc.args[0]}", file=sys.stderr)
            return 2
        state = "injected" if outcome.erroneous_state else "NOT injected"
        verdict = (
            f"violation: {outcome.violation_kind}"
            if outcome.violation
            else "handled (no violation)"
        )
        print(f"{outcome.name} on Xen {outcome.version}: {state}; {verdict}")
        return 0
    # suite
    runner, store = _runner_from_args(args)
    try:
        outcomes = run_suite(version, runner=runner, store=store)
    finally:
        if store is not None:
            store.close()
    handled = sum(1 for o in outcomes if o.handled)
    for outcome in outcomes:
        verdict = "HANDLED" if outcome.handled else (
            outcome.violation_kind or "not injected"
        )
        print(f"{outcome.name:<20} {verdict}")
    print(f"\nXen {version.name}: handled {handled}/{len(outcomes)}")
    return 0


def _cmd_replay(args) -> int:
    from repro.trace import ReplayDivergence, TraceError, replay_trace

    if not os.path.exists(args.trace):
        print(f"replay: trace file {args.trace!r} not found", file=sys.stderr)
        return 2
    if not os.path.isfile(args.trace):
        print(
            f"replay: trace path {args.trace!r} is not a file", file=sys.stderr
        )
        return 2
    try:
        outcome = replay_trace(args.trace, strict=not args.probe)
    except ReplayDivergence as exc:
        print(f"replay: DIVERGED\n{exc}", file=sys.stderr)
        return 1
    except TraceError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # A torn, truncated or unreadable trace is an input problem,
        # not a crash: report it like any other bad-path case.
        print(f"replay: cannot read {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    state = "crashed" if outcome.crashed else "alive"
    mode = "verified" if outcome.faithful else "probed"
    print(
        f"replay: {mode} {outcome.ops_replayed} ops; hypervisor {state}"
        + (f" ({outcome.banner})" if outcome.crashed else "")
    )
    print(f"replay: final digest {outcome.final_digest}")
    return 0


def _cmd_triage(args) -> int:
    from repro.trace import TraceError, minimize_trace

    if not os.path.exists(args.trace):
        print(f"triage: trace file {args.trace!r} not found", file=sys.stderr)
        return 2
    try:
        report = minimize_trace(
            args.trace, out_path=args.out, report_path=args.report
        )
    except TraceError as exc:
        print(f"triage: {exc}", file=sys.stderr)
        return 1
    print(
        f"triage: {report.original_ops} ops -> {report.minimized_ops} "
        f"({report.reduction:.0%} removed, {report.probes} probe replays)"
    )
    print(f"triage: minimal reproducer written to {report.minimized_path}")
    print(f"triage: report written to {report.report_path}")
    return 0


def _cmd_chaos(args) -> int:
    import dataclasses
    import json
    import tempfile

    from repro.resilience.chaos import run_chaos_campaign
    from repro.runner.jobs import plan_campaign

    with_metrics = bool(args.metrics or args.metrics_json)
    specs = plan_campaign(
        ["XSA-212-crash", "XSA-182-test"], ["4.6", "4.8"],
        ["exploit", "injection"],
        metrics=with_metrics,
    )
    # One cross-domain matrix cell rides along: the chaos invariant
    # (fault-injected pools leave byte-identical stores) must hold for
    # non-default topologies too.
    from repro.core.topology import CROSS_DOMAIN_TOPOLOGY

    specs += plan_campaign(
        ["xdom-grant-leak"], ["4.6"], ["exploit", "injection"],
        metrics=with_metrics,
        topology=CROSS_DOMAIN_TOPOLOGY.spec_value(),
    )
    events_handle = open(args.events, "a") if args.events else None

    def record_event(event) -> None:
        if events_handle is not None:
            events_handle.write(json.dumps(dataclasses.asdict(event)) + "\n")

    failed = 0
    metrics_by_seed = {}
    reports_by_seed = {}
    try:
        for seed in args.seeds:
            trace_dir = (
                os.path.join(args.trace, str(seed)) if args.trace else None
            )
            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                report = run_chaos_campaign(
                    specs,
                    seed=seed,
                    store_path=os.path.join(tmp, "chaos.sqlite"),
                    jobs=args.jobs,
                    timeout=args.timeout,
                    on_event=record_event if args.events else None,
                    trace_dir=trace_dir,
                    pool_mode=args.pool,
                )
            print(report.render())
            if not report.identical:
                failed += 1
            if args.metrics_json:
                metrics_by_seed[str(seed)] = _chaos_metrics_aggregate(report)
            if args.report_json:
                import hashlib

                reports_by_seed[str(seed)] = {
                    "pool": args.pool,
                    "episodes": report.episodes,
                    "faults": dict(sorted(report.faults.items())),
                    "identical": report.identical,
                    "total_jobs": report.total_jobs,
                    # The cross-mode comparable: every pool mode must
                    # leave a store rendering with this exact digest.
                    "store_sha256": hashlib.sha256(
                        report.chaos_json.encode()
                    ).hexdigest(),
                }
    finally:
        if events_handle is not None:
            events_handle.close()
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(metrics_by_seed, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"chaos: metric aggregates written to {args.metrics_json}")
    if args.report_json:
        with open(args.report_json, "w") as handle:
            json.dump(reports_by_seed, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"chaos: reports written to {args.report_json}")
    if failed:
        print(
            f"chaos: {failed}/{len(args.seeds)} seed(s) diverged "
            "from the serial reference",
            file=sys.stderr,
        )
        return 1
    return 0


def _chaos_metrics_aggregate(report) -> dict:
    """Aggregate counters from a chaos report's serial reference JSON
    (identical to the chaos side's by the invariant just checked)."""
    import json

    from repro.analysis.report import aggregate_metrics, run_result_from_dict

    payloads = json.loads(report.serial_json) if report.serial_json else []
    results = [run_result_from_dict(p) for p in payloads]
    aggregate = aggregate_metrics(results)
    aggregate["identical"] = report.identical
    return aggregate


def _cmd_serve(args) -> int:
    from repro.service import QuotaConfig, ServiceConfig
    from repro.service.server import serve

    config = ServiceConfig(
        data_dir=args.data_dir,
        jobs=args.jobs,
        fork_server=args.fork_server,
        timeout=args.timeout,
        max_backoff=args.backoff_cap,
        liveness_grace=args.heartbeat_timeout,
        ack_every=args.ack_every,
        quota=QuotaConfig(
            rate=args.quota_rate,
            burst=args.quota_burst,
            max_tenant_jobs=args.max_tenant_jobs,
            max_active=args.max_active,
            queue_depth=args.queue_depth,
        ),
    )
    return serve(
        config, host=args.host, port=args.port, ready_file=args.ready_file
    )


def _cmd_service(args) -> int:
    if args.service_command == "compact":
        from repro.service import compact_data_dir, iter_shards

        if not os.path.isdir(args.data_dir):
            print(
                f"service: data dir {args.data_dir!r} not found",
                file=sys.stderr,
            )
            return 2
        if not iter_shards(args.data_dir):
            print(
                f"service: no shard stores under {args.data_dir!r}",
                file=sys.stderr,
            )
            return 1
        report = compact_data_dir(args.data_dir, args.out)
        print(report.render())
        return 0
    # service chaos
    import json as _json
    import tempfile

    from repro.resilience.chaos import run_service_chaos

    reports = []
    failures = 0
    for seed in args.seeds:
        workdir = args.workdir or tempfile.mkdtemp(prefix=f"svc-chaos-{seed}-")
        report = run_service_chaos(seed=seed, workdir=workdir)
        print(report.render())
        reports.append(report.to_dict())
        if not report.passed:
            failures += 1
    if args.report_json:
        with open(args.report_json, "w") as handle:
            _json.dump(reports, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"service chaos reports written to {args.report_json}")
    return 1 if failures else 0


def _cmd_metrics(args) -> int:
    from repro.analysis.report import aggregate_metrics, runs_from_store
    from repro.runner import ResultStore

    if not os.path.exists(args.store):
        print(f"metrics: store {args.store!r} not found", file=sys.stderr)
        return 2
    if not os.path.isfile(args.store):
        print(
            f"metrics: store path {args.store!r} is not a file", file=sys.stderr
        )
        return 2
    store = ResultStore(args.store)
    try:
        results = runs_from_store(store)
    finally:
        store.close()
    aggregate = aggregate_metrics(results)
    if not aggregate["runs"]:
        print(
            "metrics: no metered campaign runs in this store "
            "(was the campaign run with --metrics?)",
            file=sys.stderr,
        )
        return 1
    print(
        f"metrics: {aggregate['runs']} metered run(s) of "
        f"{len(results)} campaign run(s)"
    )
    for key, value in aggregate["counters"].items():
        print(f"{key:<32} {value}")
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(aggregate, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics: aggregate written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
