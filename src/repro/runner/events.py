"""Structured progress events for campaign execution.

The pool emits one :class:`RunnerEvent` per lifecycle transition (job
started / finished / retried / timed out / failed, worker crashed,
campaign finished).  Consumers get the full picture — counts,
throughput, ETA — without parsing text; :class:`ConsoleRenderer` is
the plain-text consumer the CLI uses, writing to *stderr* so progress
never contaminates report output on stdout.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, TextIO

#: Event kinds.
JOB_STARTED = "job-started"
JOB_FINISHED = "job-finished"
JOB_RETRIED = "job-retried"
JOB_TIMEOUT = "job-timeout"
JOB_FAILED = "job-failed"
JOB_SKIPPED = "job-skipped"  # already done in the store (resume)
JOB_QUARANTINED = "job-quarantined"  # poisonous: kept killing workers
WORKER_CRASHED = "worker-crashed"
WORKER_UNRESPONSIVE = "worker-unresponsive"  # heartbeat stopped
WORKER_RECYCLED = "worker-recycled"  # fork-server health recycling
RESTORE_DIVERGED = "restore-diverged"  # cached snapshot failed its digest check
POOL_DEGRADED = "pool-degraded"  # fork-server fell back to spawn-per-job
CIRCUIT_OPEN = "circuit-open"  # too many consecutive worker deaths
CAMPAIGN_INTERRUPTED = "campaign-interrupted"  # SIGINT/SIGTERM, resumable
CAMPAIGN_FINISHED = "campaign-finished"
# Service-level lifecycle kinds (repro.service): same event vocabulary
# so one stream carries runner progress and campaign lifecycle.
CAMPAIGN_SUBMITTED = "campaign-submitted"  # accepted by the service
CAMPAIGN_STARTED = "campaign-started"  # picked up by a supervisor slot
CAMPAIGN_DEGRADED = "campaign-degraded"  # circuit opened; continuing on a fallback pool


@dataclass(frozen=True)
class RunnerEvent:
    """One progress observation from the execution engine."""

    kind: str
    job_id: str = ""
    label: str = ""
    worker: int = -1
    attempt: int = 0
    detail: str = ""
    #: Backoff delay chosen for a retry, seconds (JOB_RETRIED only) —
    #: recorded so replays can explain the schedule.
    delay: float = 0.0
    #: Jobs completed (done + failed) so far.
    done: int = 0
    total: int = 0
    elapsed: float = 0.0
    #: Completed jobs per second of campaign wall time.
    throughput: float = 0.0
    #: Estimated seconds until the campaign finishes (0 if unknown).
    eta: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON transport (event logs, SSE)."""
        return asdict(self)


EventCallback = Callable[[RunnerEvent], None]


class EventHub:
    """Computes campaign-level progress figures and fans events out."""

    def __init__(self, total: int, callback: Optional[EventCallback] = None):
        self.total = total
        self.callback = callback
        self.completed = 0
        self._started_at = time.monotonic()

    def emit(self, kind: str, **fields) -> RunnerEvent:
        if kind in (JOB_FINISHED, JOB_FAILED, JOB_SKIPPED, JOB_QUARANTINED):
            self.completed += 1
        elapsed = time.monotonic() - self._started_at
        throughput = self.completed / elapsed if elapsed > 0 else 0.0
        remaining = self.total - self.completed
        eta = remaining / throughput if throughput > 0 else 0.0
        event = RunnerEvent(
            kind=kind,
            done=self.completed,
            total=self.total,
            elapsed=elapsed,
            throughput=throughput,
            eta=eta,
            **fields,
        )
        if self.callback is not None:
            self.callback(event)
        return event


class ConsoleRenderer:
    """Plain-text progress lines for interactive campaign runs."""

    def __init__(self, stream: Optional[TextIO] = None, verbose: bool = False):
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose

    def __call__(self, event: RunnerEvent) -> None:
        line = self._format(event)
        if line is not None:
            print(line, file=self.stream)

    def _format(self, event: RunnerEvent) -> Optional[str]:
        progress = f"[{event.done}/{event.total}]"
        if event.kind == JOB_FINISHED:
            return (
                f"{progress} done {event.label} "
                f"({event.throughput:.1f} jobs/s, eta {event.eta:.0f}s)"
            )
        if event.kind == JOB_FAILED:
            return f"{progress} FAILED {event.label}: {event.detail}"
        if event.kind == JOB_TIMEOUT:
            return f"{progress} timeout {event.label} ({event.detail})"
        if event.kind == JOB_RETRIED:
            return (
                f"{progress} retry {event.label} (attempt {event.attempt}, "
                f"after {event.delay:.2f}s)"
            )
        if event.kind == JOB_QUARANTINED:
            return f"{progress} QUARANTINED {event.label}: {event.detail}"
        if event.kind == WORKER_CRASHED:
            return f"{progress} worker {event.worker} crashed on {event.label}"
        if event.kind == WORKER_UNRESPONSIVE:
            return (
                f"{progress} worker {event.worker} unresponsive on "
                f"{event.label} ({event.detail})"
            )
        if event.kind == WORKER_RECYCLED:
            return f"{progress} recycled worker {event.worker} ({event.detail})"
        if event.kind == RESTORE_DIVERGED:
            return (
                f"{progress} RESTORE DIVERGED on worker {event.worker}: "
                f"{event.detail} (evicted; cold-booting)"
            )
        if event.kind == POOL_DEGRADED:
            return f"{progress} DEGRADED to spawn-per-job pool: {event.detail}"
        if event.kind == CIRCUIT_OPEN:
            return f"{progress} HALTED: {event.detail}"
        if event.kind == CAMPAIGN_INTERRUPTED:
            return f"{progress} interrupted ({event.detail}); store is resumable"
        if event.kind == CAMPAIGN_DEGRADED:
            return f"{progress} campaign DEGRADED: {event.detail}"
        if event.kind == CAMPAIGN_FINISHED:
            return (
                f"{progress} campaign finished in {event.elapsed:.1f}s "
                f"({event.throughput:.1f} jobs/s)"
            )
        if self.verbose and event.kind in (JOB_STARTED, JOB_SKIPPED):
            verb = "start" if event.kind == JOB_STARTED else "skip"
            return f"{progress} {verb} {event.label}"
        return None


@dataclass
class EventRecorder:
    """Test helper: collect every emitted event."""

    events: List[RunnerEvent] = field(default_factory=list)

    def __call__(self, event: RunnerEvent) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]
