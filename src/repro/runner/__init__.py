"""``repro.runner`` — parallel, fault-tolerant, resumable campaigns.

The execution engine behind ``--jobs N``: experiments become
serializable :class:`JobSpec` jobs, a ``spawn``-based
:class:`WorkerPool` runs them with per-job timeouts, crash isolation
and bounded retry, a SQLite :class:`ResultStore` makes campaigns
resumable (``--resume``), and :class:`RunnerEvent` streams progress.
"""

from repro.runner.events import (
    ConsoleRenderer,
    EventRecorder,
    RunnerEvent,
)
from repro.runner.jobs import (
    BENCHMARK_CASE,
    CAMPAIGN_RUN,
    FUZZ_TRIAL,
    SELFTEST,
    TESTCASE,
    JobSpec,
    TransientJobError,
    execute_job,
    plan_benchmark,
    plan_campaign,
    plan_coverage_round,
    plan_fuzz,
    plan_testcases,
)
from repro.runner.pool import (
    CampaignFailed,
    CampaignInterrupted,
    RunnerOutcome,
    SerialRunner,
    WorkerPool,
    make_runner,
    run_jobs,
    seeded_backoff,
)
from repro.runner.forkserver import (
    ForkServerPool,
    execute_job_cached,
    preferred_context,
)
from repro.runner.store import (
    ResultStore,
    StoreBusy,
    StoreCorrupt,
    StoreSchemaMismatch,
    StoreSummary,
)

__all__ = [
    "BENCHMARK_CASE",
    "CAMPAIGN_RUN",
    "CampaignFailed",
    "CampaignInterrupted",
    "ConsoleRenderer",
    "EventRecorder",
    "FUZZ_TRIAL",
    "ForkServerPool",
    "JobSpec",
    "ResultStore",
    "RunnerEvent",
    "RunnerOutcome",
    "SELFTEST",
    "SerialRunner",
    "StoreBusy",
    "StoreCorrupt",
    "StoreSchemaMismatch",
    "StoreSummary",
    "TESTCASE",
    "TransientJobError",
    "WorkerPool",
    "execute_job",
    "execute_job_cached",
    "make_runner",
    "preferred_context",
    "plan_benchmark",
    "plan_campaign",
    "plan_coverage_round",
    "plan_fuzz",
    "plan_testcases",
    "run_jobs",
    "seeded_backoff",
]
