"""Parallel, fault-tolerant job execution.

:class:`WorkerPool` runs :class:`~repro.runner.jobs.JobSpec` lists on
a pool of ``multiprocessing`` workers (``spawn`` context, so every
worker is a pristine interpreter that boots its own testbeds).  The
parent owns all scheduling state and the result store; workers only
ever see one job at a time, which buys three properties the serial
campaign loop cannot offer:

* **timeout enforcement** — a job exceeding its wall-clock budget gets
  its worker killed and replaced, and only that job is charged;
* **crash isolation** — a worker dying mid-job (a simulated hypervisor
  panic taking the process down, an ``os._exit``) fails that job only;
* **bounded retry** — timeouts, crashes and
  :class:`~repro.runner.jobs.TransientJobError` failures are retried
  with exponential backoff up to a retry budget.

:class:`SerialRunner` is the in-process twin with identical store and
event semantics (minus timeout enforcement); ``--jobs 1`` uses it, so
serial and parallel campaigns share one persistence/resume story.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.runner import events as ev
from repro.runner.events import EventCallback, EventHub
from repro.runner.jobs import JobSpec, TransientJobError, execute_job
from repro.runner.store import ResultStore


class CampaignFailed(RuntimeError):
    """Raised by strict entry points when jobs exhausted their retries."""

    def __init__(self, failures: Dict[str, str]):
        self.failures = failures
        summary = "; ".join(
            f"{job_id}: {detail}" for job_id, detail in sorted(failures.items())
        )
        super().__init__(f"{len(failures)} job(s) failed: {summary}")


@dataclass
class RunnerOutcome:
    """What a campaign execution produced."""

    #: job_id -> result payload, for every completed job.
    results: Dict[str, dict] = field(default_factory=dict)
    #: job_id -> failure detail, for jobs that exhausted retries.
    failures: Dict[str, str] = field(default_factory=dict)
    #: Jobs skipped because the store already had their results.
    skipped: Set[str] = field(default_factory=set)

    def payloads_for(self, specs: Sequence[JobSpec]) -> List[dict]:
        """Results in plan order; raises if any job failed or is missing."""
        if self.failures:
            raise CampaignFailed(self.failures)
        return [self.results[spec.job_id] for spec in specs]


JobFn = Callable[[JobSpec, int], dict]


def _resume_into(
    outcome: RunnerOutcome, specs: List[JobSpec], store: Optional[ResultStore]
) -> List[JobSpec]:
    """Register jobs and load already-completed results; return the rest."""
    if store is None:
        return specs
    store.register(specs)
    done = store.completed_ids()
    remaining = []
    for spec in specs:
        if spec.job_id in done:
            payload = store.payload(spec.job_id)
            if payload is not None:
                outcome.results[spec.job_id] = payload
                outcome.skipped.add(spec.job_id)
                continue
        remaining.append(spec)
    return remaining


# ----------------------------------------------------------------------
# Serial execution (the --jobs 1 path)
# ----------------------------------------------------------------------


class SerialRunner:
    """In-process executor with the pool's store/retry/event semantics."""

    def __init__(
        self,
        retries: int = 1,
        backoff: float = 0.0,
        job_fn: JobFn = execute_job,
        on_event: Optional[EventCallback] = None,
    ):
        self.retries = retries
        self.backoff = backoff
        self.job_fn = job_fn
        self.on_event = on_event

    def run(
        self, specs: Sequence[JobSpec], store: Optional[ResultStore] = None
    ) -> RunnerOutcome:
        specs = list(specs)
        outcome = RunnerOutcome()
        hub = EventHub(total=len(specs), callback=self.on_event)
        remaining = _resume_into(outcome, specs, store)
        for spec in specs:  # plan order, not set order: deterministic events
            if spec.job_id in outcome.skipped:
                hub.emit(ev.JOB_SKIPPED, job_id=spec.job_id)

        for spec in remaining:
            if store is not None:
                store.mark_running(spec.job_id)
            attempt = 0
            while True:
                hub.emit(
                    ev.JOB_STARTED, job_id=spec.job_id, label=spec.label,
                    attempt=attempt,
                )
                started = time.perf_counter()
                try:
                    payload = self.job_fn(spec, attempt)
                except Exception as exc:
                    wall = time.perf_counter() - started
                    retryable = isinstance(exc, TransientJobError)
                    detail = f"{type(exc).__name__}: {exc}"
                    if store is not None:
                        store.record_attempt(
                            spec.job_id, attempt, "error", detail, wall
                        )
                    if retryable and attempt < self.retries:
                        attempt += 1
                        hub.emit(
                            ev.JOB_RETRIED, job_id=spec.job_id,
                            label=spec.label, attempt=attempt, detail=detail,
                        )
                        if self.backoff:
                            time.sleep(self.backoff * (2 ** (attempt - 1)))
                        continue
                    outcome.failures[spec.job_id] = detail
                    if store is not None:
                        store.record_failure(spec.job_id, detail)
                    hub.emit(
                        ev.JOB_FAILED, job_id=spec.job_id, label=spec.label,
                        attempt=attempt, detail=detail,
                    )
                    break
                wall = time.perf_counter() - started
                outcome.results[spec.job_id] = payload
                if store is not None:
                    store.record_attempt(spec.job_id, attempt, "done", "", wall)
                    store.record_success(spec.job_id, payload, wall)
                hub.emit(
                    ev.JOB_FINISHED, job_id=spec.job_id, label=spec.label,
                    attempt=attempt,
                )
                break
        hub.emit(ev.CAMPAIGN_FINISHED)
        return outcome


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------


def _worker_main(worker_id: int, job_fn: JobFn, inbox, outbox) -> None:
    """Worker loop: take one job, run it, report, repeat until sentinel."""
    while True:
        item = inbox.get()
        if item is None:
            return
        spec_json, attempt = item
        spec = JobSpec.from_json(spec_json)
        started = time.perf_counter()
        try:
            payload = job_fn(spec, attempt)
        except TransientJobError as exc:
            wall = time.perf_counter() - started
            outbox.put((worker_id, spec.job_id, "error", str(exc), True, wall))
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            wall = time.perf_counter() - started
            detail = f"{type(exc).__name__}: {exc}"
            outbox.put((worker_id, spec.job_id, "error", detail, False, wall))
        else:
            wall = time.perf_counter() - started
            outbox.put((worker_id, spec.job_id, "done", payload, False, wall))


@dataclass
class _Worker:
    """Parent-side handle for one worker process."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    inbox: Any  # multiprocessing.Queue from a spawn context
    spec: Optional[JobSpec] = None
    attempt: int = 0
    started_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.spec is not None


class WorkerPool:
    """Multiprocessing campaign executor with fault isolation."""

    def __init__(
        self,
        jobs: int = 2,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.05,
        job_fn: JobFn = execute_job,
        on_event: Optional[EventCallback] = None,
        poll_interval: float = 0.05,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.job_fn = job_fn
        self.on_event = on_event
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context("spawn")

    # -- public API -----------------------------------------------------

    def run(
        self, specs: Sequence[JobSpec], store: Optional[ResultStore] = None
    ) -> RunnerOutcome:
        specs = list(specs)
        outcome = RunnerOutcome()
        hub = EventHub(total=len(specs), callback=self.on_event)
        remaining = _resume_into(outcome, specs, store)
        for spec in specs:  # plan order, not set order: deterministic events
            if spec.job_id in outcome.skipped:
                hub.emit(ev.JOB_SKIPPED, job_id=spec.job_id)
        if not remaining:
            hub.emit(ev.CAMPAIGN_FINISHED)
            return outcome

        outbox = self._ctx.Queue()
        #: (ready_time, spec, attempt) — backoff delays re-dispatch.
        pending: List[tuple] = [(0.0, spec, 0) for spec in remaining]
        workers: Dict[int, _Worker] = {}
        next_worker_id = 0
        for _ in range(min(self.jobs, len(pending))):
            workers[next_worker_id] = self._spawn(next_worker_id, outbox)
            next_worker_id += 1

        try:
            while pending or any(w.busy for w in workers.values()):
                self._assign(pending, workers, store, hub)
                self._drain(outbox, workers, pending, outcome, store, hub)
                self._check_timeouts(workers, pending, outcome, store, hub)
                self._check_crashes(workers, pending, outcome, store, hub)
                next_worker_id = self._replenish(
                    workers, pending, outbox, next_worker_id
                )
        finally:
            self._shutdown(workers)
        hub.emit(ev.CAMPAIGN_FINISHED)
        return outcome

    # -- scheduling internals ------------------------------------------

    def _spawn(self, worker_id: int, outbox) -> _Worker:
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.job_fn, inbox, outbox),
            daemon=True,
            name=f"repro-runner-{worker_id}",
        )
        process.start()
        return _Worker(worker_id=worker_id, process=process, inbox=inbox)

    def _assign(self, pending, workers, store, hub) -> None:
        now = time.monotonic()
        for worker in workers.values():
            if worker.busy or not pending:
                continue
            index = next(
                (i for i, (ready, _, _) in enumerate(pending) if ready <= now),
                None,
            )
            if index is None:
                continue
            _, spec, attempt = pending.pop(index)
            worker.spec = spec
            worker.attempt = attempt
            worker.started_at = now
            worker.inbox.put((spec.to_json(), attempt))
            if store is not None and attempt == 0:
                store.mark_running(spec.job_id)
            hub.emit(
                ev.JOB_STARTED, job_id=spec.job_id, label=spec.label,
                worker=worker.worker_id, attempt=attempt,
            )

    def _drain(self, outbox, workers, pending, outcome, store, hub) -> None:
        """Process every available worker message (block briefly once)."""
        block = True
        while True:
            try:
                message = outbox.get(timeout=self.poll_interval if block else 0)
            except queue.Empty:
                return
            block = False
            worker_id, job_id, status, payload, retryable, wall = message
            worker = workers.get(worker_id)
            if worker is None or worker.spec is None or worker.spec.job_id != job_id:
                continue  # stale message from a worker we already replaced
            spec, attempt = worker.spec, worker.attempt
            worker.spec = None
            if status == "done":
                outcome.results[spec.job_id] = payload
                if store is not None:
                    store.record_attempt(spec.job_id, attempt, "done", "", wall)
                    store.record_success(spec.job_id, payload, wall)
                hub.emit(
                    ev.JOB_FINISHED, job_id=spec.job_id, label=spec.label,
                    worker=worker_id, attempt=attempt,
                )
            else:
                if store is not None:
                    store.record_attempt(
                        spec.job_id, attempt, "error", str(payload), wall
                    )
                self._retry_or_fail(
                    spec, attempt, str(payload), retryable, pending, outcome,
                    store, hub,
                )

    def _check_timeouts(self, workers, pending, outcome, store, hub) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for worker in list(workers.values()):
            spec, attempt = worker.spec, worker.attempt
            if spec is None or now - worker.started_at <= self.timeout:
                continue
            detail = f"exceeded {self.timeout:.1f}s wall-clock budget"
            hub.emit(
                ev.JOB_TIMEOUT, job_id=spec.job_id, label=spec.label,
                worker=worker.worker_id, attempt=attempt, detail=detail,
            )
            self._kill(workers, worker)
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "timeout", detail, self.timeout
                )
            self._retry_or_fail(
                spec, attempt, detail, True, pending, outcome, store, hub
            )

    def _check_crashes(self, workers, pending, outcome, store, hub) -> None:
        """Detect dead workers and fail (or retry) their in-flight jobs."""
        for worker in list(workers.values()):
            if worker.process.is_alive():
                continue
            spec, attempt = worker.spec, worker.attempt
            self._kill(workers, worker)
            if spec is not None:
                detail = (
                    f"worker crashed (exit code {worker.process.exitcode})"
                )
                hub.emit(
                    ev.WORKER_CRASHED, job_id=spec.job_id, label=spec.label,
                    worker=worker.worker_id, attempt=attempt, detail=detail,
                )
                if store is not None:
                    store.record_attempt(spec.job_id, attempt, "crash", detail)
                self._retry_or_fail(
                    spec, attempt, detail, True, pending, outcome, store, hub
                )

    def _replenish(self, workers, pending, outbox, next_worker_id) -> int:
        """Keep the pool sized to the remaining work after kills."""
        busy = sum(1 for w in workers.values() if w.busy)
        target = min(self.jobs, busy + len(pending))
        while len(workers) < target:
            workers[next_worker_id] = self._spawn(next_worker_id, outbox)
            next_worker_id += 1
        return next_worker_id

    def _retry_or_fail(
        self, spec, attempt, detail, retryable, pending, outcome, store, hub
    ) -> None:
        if retryable and attempt < self.retries:
            delay = self.backoff * (2 ** attempt)
            pending.append((time.monotonic() + delay, spec, attempt + 1))
            hub.emit(
                ev.JOB_RETRIED, job_id=spec.job_id, label=spec.label,
                attempt=attempt + 1, detail=detail,
            )
            return
        outcome.failures[spec.job_id] = detail
        if store is not None:
            store.record_failure(spec.job_id, detail)
        hub.emit(
            ev.JOB_FAILED, job_id=spec.job_id, label=spec.label,
            attempt=attempt, detail=detail,
        )

    # -- teardown -------------------------------------------------------

    def _kill(self, workers: Dict[int, _Worker], worker: _Worker) -> None:
        workers.pop(worker.worker_id, None)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
        worker.inbox.cancel_join_thread()
        worker.inbox.close()

    def _shutdown(self, workers: Dict[int, _Worker]) -> None:
        for worker in list(workers.values()):
            try:
                worker.inbox.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for worker in list(workers.values()):
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in list(workers.values()):
            self._kill(workers, worker)


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------


def make_runner(
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    job_fn: JobFn = execute_job,
    on_event: Optional[EventCallback] = None,
):
    """A SerialRunner for ``jobs=1``, a WorkerPool otherwise."""
    if jobs <= 1:
        return SerialRunner(retries=retries, job_fn=job_fn, on_event=on_event)
    return WorkerPool(
        jobs=jobs, timeout=timeout, retries=retries, job_fn=job_fn,
        on_event=on_event,
    )


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    store: Optional[ResultStore] = None,
    job_fn: JobFn = execute_job,
    on_event: Optional[EventCallback] = None,
) -> RunnerOutcome:
    """One-call campaign execution: plan in, outcome out."""
    runner = make_runner(
        jobs=jobs, timeout=timeout, retries=retries, job_fn=job_fn,
        on_event=on_event,
    )
    return runner.run(specs, store=store)
