"""Parallel, fault-tolerant job execution.

:class:`WorkerPool` runs :class:`~repro.runner.jobs.JobSpec` lists on
a pool of ``multiprocessing`` workers (``spawn`` context, so every
worker is a pristine interpreter that boots its own testbeds).  The
parent owns all scheduling state and the result store; workers only
ever see one job at a time, which buys properties the serial campaign
loop cannot offer:

* **timeout enforcement** — a job exceeding its wall-clock budget gets
  its worker killed and replaced, and only that job is charged;
* **crash isolation** — a worker dying mid-job (a simulated hypervisor
  panic taking the process down, an ``os._exit``) fails that job only;
* **liveness detection** — each worker carries a heartbeat; a wedged
  process (stopped, deadlocked) is detected even though ``is_alive()``
  still says yes;
* **bounded retry** — timeouts, crashes and
  :class:`~repro.runner.jobs.TransientJobError` failures are retried
  with capped, deterministically jittered exponential backoff;
* **poison quarantine** — a job that keeps killing its workers is
  quarantined instead of taking the pool down attempt after attempt;
* **circuit breaking** — too many *consecutive* worker deaths (an
  environment-level problem, not a bad job) halts the campaign;
* **graceful interruption** — SIGINT/SIGTERM stop dispatch, flush the
  store, and leave it resumable instead of dying mid-write.

:class:`SerialRunner` is the in-process twin with identical store and
event semantics (minus timeout enforcement); ``--jobs 1`` uses it, so
serial and parallel campaigns share one persistence/resume story.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.resilience.quarantine import CircuitBreaker, PoisonTracker
from repro.runner import events as ev
from repro.runner.backoff import seeded_backoff
from repro.runner.events import EventCallback, EventHub
from repro.runner.jobs import JobSpec, TransientJobError, execute_job
from repro.runner.store import ResultStore

__all__ = [
    "CampaignFailed",
    "CampaignInterrupted",
    "RunnerOutcome",
    "SerialRunner",
    "WorkerPool",
    "make_runner",
    "run_jobs",
    "seeded_backoff",  # re-exported from repro.runner.backoff
]


class CampaignFailed(RuntimeError):
    """Raised by strict entry points when jobs exhausted their retries."""

    def __init__(self, failures: Dict[str, str]):
        self.failures = failures
        summary = "; ".join(
            f"{job_id}: {detail}" for job_id, detail in sorted(failures.items())
        )
        super().__init__(f"{len(failures)} job(s) failed: {summary}")


class CampaignInterrupted(RuntimeError):
    """The campaign was stopped by a signal; the store is resumable."""

    def __init__(self, signame: str = ""):
        self.signame = signame
        label = signame or "signal"
        super().__init__(
            f"campaign interrupted by {label}; completed work is in the "
            "store — re-run with --resume to finish the remaining jobs"
        )


@dataclass
class RunnerOutcome:
    """What a campaign execution produced."""

    #: job_id -> result payload, for every completed job.
    results: Dict[str, dict] = field(default_factory=dict)
    #: job_id -> failure detail, for jobs that exhausted retries.
    failures: Dict[str, str] = field(default_factory=dict)
    #: Jobs skipped because the store already had their results.
    skipped: Set[str] = field(default_factory=set)
    #: True when a SIGINT/SIGTERM stopped the campaign early; the
    #: store was flushed and the remaining jobs are resumable.
    interrupted: bool = False
    #: Name of the signal that interrupted the campaign ("" if none).
    interrupt_signal: str = ""

    def payloads_for(self, specs: Sequence[JobSpec]) -> List[dict]:
        """Results in plan order; raises if any job failed or is missing."""
        if self.interrupted:
            raise CampaignInterrupted(self.interrupt_signal)
        if self.failures:
            raise CampaignFailed(self.failures)
        return [self.results[spec.job_id] for spec in specs]


JobFn = Callable[[JobSpec, int], dict]


def _resume_into(
    outcome: RunnerOutcome, specs: List[JobSpec], store: Optional[ResultStore]
) -> List[JobSpec]:
    """Register jobs and load already-completed results; return the rest."""
    if store is None:
        return specs
    store.register(specs)
    done = store.completed_ids()
    remaining = []
    for spec in specs:
        if spec.job_id in done:
            payload = store.payload(spec.job_id)
            if payload is not None:
                outcome.results[spec.job_id] = payload
                outcome.skipped.add(spec.job_id)
                continue
        remaining.append(spec)
    return remaining


class _SignalGuard:
    """Convert SIGINT/SIGTERM into a flag the run loop polls.

    Installed only for the duration of a campaign (and only when we
    are the main thread — elsewhere the runner executes unguarded, as
    before).  The handler does nothing but record the signal, so no
    store write or queue operation is ever torn by an interrupt; the
    run loop notices the flag at the next scheduling round and shuts
    down cleanly.
    """

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)):
        self.signals = signals
        self.fired: Optional[int] = None
        self._previous: Dict[int, Any] = {}

    def __enter__(self) -> "_SignalGuard":
        try:
            for sig in self.signals:
                self._previous[sig] = signal.signal(sig, self._handle)
        except ValueError:  # not the main thread: run unguarded
            self._restore()
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _restore(self) -> None:
        while self._previous:
            sig, handler = self._previous.popitem()
            signal.signal(sig, handler)

    def _handle(self, signum, frame) -> None:
        del frame
        self.fired = signum

    @property
    def tripped(self) -> bool:
        return self.fired is not None

    def describe(self) -> str:
        if self.fired is None:
            return ""
        return signal.Signals(self.fired).name


# ----------------------------------------------------------------------
# Serial execution (the --jobs 1 path)
# ----------------------------------------------------------------------


class SerialRunner:
    """In-process executor with the pool's store/retry/event semantics."""

    def __init__(
        self,
        retries: int = 1,
        backoff: float = 0.0,
        max_backoff: float = 5.0,
        job_fn: JobFn = execute_job,
        on_event: Optional[EventCallback] = None,
    ):
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.job_fn = job_fn
        self.on_event = on_event
        self._stop_requested = False

    def request_stop(self) -> None:
        """Cooperative interruption from another thread.

        Signal handlers only reach the main thread; a runner executing
        inside a worker thread (the campaign service) is stopped with
        this instead.  Semantics match a SIGTERM: the current job
        finishes, the store is flushed, and the outcome is marked
        interrupted/resumable.
        """
        self._stop_requested = True

    def run(
        self, specs: Sequence[JobSpec], store: Optional[ResultStore] = None
    ) -> RunnerOutcome:
        specs = list(specs)
        outcome = RunnerOutcome()
        hub = EventHub(total=len(specs), callback=self.on_event)
        remaining = _resume_into(outcome, specs, store)
        for spec in specs:  # plan order, not set order: deterministic events
            if spec.job_id in outcome.skipped:
                hub.emit(ev.JOB_SKIPPED, job_id=spec.job_id)

        with _SignalGuard() as guard:
            for spec in remaining:
                if guard.tripped or self._stop_requested:
                    break
                if store is not None:
                    store.mark_running(spec.job_id)
                attempt = 0
                while not (guard.tripped or self._stop_requested):
                    hub.emit(
                        ev.JOB_STARTED, job_id=spec.job_id, label=spec.label,
                        attempt=attempt,
                    )
                    started = time.perf_counter()
                    try:
                        payload = self.job_fn(spec, attempt)
                    except Exception as exc:
                        wall = time.perf_counter() - started
                        retryable = isinstance(exc, TransientJobError)
                        detail = f"{type(exc).__name__}: {exc}"
                        if store is not None:
                            store.record_attempt(
                                spec.job_id, attempt, "error", detail, wall
                            )
                        if retryable and attempt < self.retries:
                            attempt += 1
                            delay = seeded_backoff(
                                self.backoff, attempt, spec.job_id,
                                self.max_backoff,
                            )
                            hub.emit(
                                ev.JOB_RETRIED, job_id=spec.job_id,
                                label=spec.label, attempt=attempt,
                                detail=detail, delay=delay,
                            )
                            if delay:
                                time.sleep(delay)
                            continue
                        outcome.failures[spec.job_id] = detail
                        if store is not None:
                            store.record_failure(spec.job_id, detail)
                        hub.emit(
                            ev.JOB_FAILED, job_id=spec.job_id,
                            label=spec.label, attempt=attempt, detail=detail,
                        )
                        break
                    wall = time.perf_counter() - started
                    outcome.results[spec.job_id] = payload
                    if store is not None:
                        store.record_attempt(
                            spec.job_id, attempt, "done", "", wall
                        )
                        store.record_success(spec.job_id, payload, wall)
                    hub.emit(
                        ev.JOB_FINISHED, job_id=spec.job_id, label=spec.label,
                        attempt=attempt,
                    )
                    break
            if guard.tripped or self._stop_requested:
                outcome.interrupted = True
                outcome.interrupt_signal = guard.describe() or "stop-requested"
                if store is not None:
                    store.flush()
                hub.emit(
                    ev.CAMPAIGN_INTERRUPTED, detail=outcome.interrupt_signal
                )
        hub.emit(ev.CAMPAIGN_FINISHED)
        return outcome


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------

#: Every spawned worker process, for the atexit orphan sweep.  The
#: pool reaps its own workers on every exit path; this is the backstop
#: that guarantees no child outlives the parent even if the pool's
#: teardown itself is interrupted.
_LIVE_WORKERS: "weakref.WeakSet" = weakref.WeakSet()

#: Liveness allowance for a worker that has not reported ready yet —
#: spawn-interpreter bootstrap on a loaded machine takes seconds, and
#: killing a booting worker for "no heartbeat" just reboots the same
#: slow path.
_BOOT_GRACE = 30.0


def _reap_orphans() -> None:
    for process in list(_LIVE_WORKERS):
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)


atexit.register(_reap_orphans)


class _ResultChannel:
    """Worker-side sender over the worker's *private* result pipe.

    Results deliberately do not travel through a shared
    ``multiprocessing.Queue``: its feeder thread serialises writers
    with a cross-process lock, and a worker killed while its feeder
    holds that lock (a chaos SIGKILL, a timeout ``terminate()``)
    wedges every *other* worker's results forever — the pool then
    spins on workers it believes busy while they sit idle.  With one
    pipe per worker there is no shared lock and no feeder thread: a
    kill can at worst tear this worker's own frame, which the parent
    discards together with the worker.
    """

    def __init__(self, conn):
        self._conn = conn

    def put(self, message) -> None:
        payload = pickle.dumps(message)
        frame = len(payload).to_bytes(4, "big") + payload
        fd = self._conn.fileno()
        view = memoryview(frame)
        while view:
            view = view[os.write(fd, view):]


def _worker_main(
    worker_id: int,
    job_fn: JobFn,
    inbox,
    outbox,
    heartbeat=None,
    beat_interval: float = 0.2,
) -> None:
    """Worker loop: take one job, run it, report, repeat until sentinel."""
    if heartbeat is not None:
        def _beat() -> None:
            while True:
                heartbeat.value = time.monotonic()
                time.sleep(beat_interval)

        threading.Thread(
            target=_beat, daemon=True, name="repro-heartbeat"
        ).start()
    try:
        # Interpreter bootstrap can dwarf a tight job budget on a
        # loaded machine; this tells the parent to start the clock now.
        outbox.put((worker_id, None, "ready", None, False, 0.0))
    except OSError:
        return
    while True:
        try:
            item = inbox.recv()
        except EOFError:
            return  # the parent closed our inbox: shut down
        if item is None:
            return
        spec_json, attempt = item
        spec = JobSpec.from_json(spec_json)
        started = time.perf_counter()
        status, retryable = "done", False
        try:
            payload = job_fn(spec, attempt)
        except TransientJobError as exc:
            status, payload, retryable = "error", str(exc), True
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            status, payload = "error", f"{type(exc).__name__}: {exc}"
        wall = time.perf_counter() - started
        try:
            outbox.put(
                (worker_id, spec.job_id, status, payload, retryable, wall)
            )
        except OSError:
            return  # the parent is gone; nobody is listening


@dataclass
class _Worker:
    """Parent-side handle for one worker process."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    inbox: Any  # Connection: parent sends (spec, attempt) / None sentinel
    conn: Any = None  # Connection: parent end of the worker's result pipe
    heartbeat: Any = None  # multiprocessing.Value("d") the worker beats
    spec: Optional[JobSpec] = None
    attempt: int = 0
    started_at: float = 0.0
    buffer: bytearray = field(default_factory=bytearray)
    eof: bool = False
    #: The worker finished interpreter bootstrap (sent its ready
    #: frame).  Job wall-clock budgets only run from that point — a
    #: loaded machine can take longer to boot a spawn interpreter
    #: than a tight job budget allows.
    ready: bool = False

    @property
    def busy(self) -> bool:
        return self.spec is not None

    def last_seen(self) -> float:
        """Most recent proof of life, on the parent's monotonic clock."""
        beat = self.heartbeat.value if self.heartbeat is not None else 0.0
        return max(beat, self.started_at)

    def take_messages(self) -> List[tuple]:
        """Complete frames parsed out of the receive buffer.

        A trailing partial frame (the worker was killed mid-write)
        simply stays in the buffer; it is discarded with the worker.
        """
        messages = []
        while len(self.buffer) >= 4:
            size = int.from_bytes(self.buffer[:4], "big")
            if len(self.buffer) - 4 < size:
                break
            payload = bytes(self.buffer[4:4 + size])
            del self.buffer[:4 + size]
            messages.append(pickle.loads(payload))
        return messages


class WorkerPool:
    """Multiprocessing campaign executor with fault isolation."""

    def __init__(
        self,
        jobs: int = 2,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.05,
        max_backoff: float = 5.0,
        job_fn: JobFn = execute_job,
        on_event: Optional[EventCallback] = None,
        poll_interval: float = 0.05,
        poison_threshold: int = 3,
        circuit_threshold: int = 8,
        liveness_grace: Optional[float] = 30.0,
        beat_interval: float = 0.2,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.job_fn = job_fn
        self.on_event = on_event
        self.poll_interval = poll_interval
        self.poison_threshold = poison_threshold
        self.circuit_threshold = circuit_threshold
        self.liveness_grace = liveness_grace
        self.beat_interval = beat_interval
        self._ctx = multiprocessing.get_context("spawn")
        self._poison = PoisonTracker(poison_threshold)
        self._circuit = CircuitBreaker(circuit_threshold)
        self._halted = ""
        self._stop_requested = False

    def request_stop(self) -> None:
        """Cooperative interruption from another thread (see
        :meth:`SerialRunner.request_stop`).  In-flight jobs are
        abandoned un-acked, so ``--resume`` re-runs them exactly."""
        self._stop_requested = True

    # -- public API -----------------------------------------------------

    def run(
        self, specs: Sequence[JobSpec], store: Optional[ResultStore] = None
    ) -> RunnerOutcome:
        specs = list(specs)
        outcome = RunnerOutcome()
        hub = EventHub(total=len(specs), callback=self.on_event)
        remaining = _resume_into(outcome, specs, store)
        for spec in specs:  # plan order, not set order: deterministic events
            if spec.job_id in outcome.skipped:
                hub.emit(ev.JOB_SKIPPED, job_id=spec.job_id)
        if not remaining:
            hub.emit(ev.CAMPAIGN_FINISHED)
            return outcome

        self._poison = PoisonTracker(self.poison_threshold)
        self._circuit = CircuitBreaker(self.circuit_threshold)
        self._halted = ""

        #: (ready_time, spec, attempt) — backoff delays re-dispatch.
        pending: List[tuple] = [(0.0, spec, 0) for spec in remaining]
        workers: Dict[int, _Worker] = {}
        next_worker_id = 0

        abandoned: List[tuple] = []
        try:
            # The guard goes up before the first worker exists, so an
            # interrupt during spawn is already a graceful shutdown.
            with _SignalGuard() as guard:
                for _ in range(min(self.jobs, len(pending))):
                    workers[next_worker_id] = self._spawn(next_worker_id)
                    next_worker_id += 1
                while pending or any(w.busy for w in workers.values()):
                    if guard.tripped or self._halted or self._stop_requested:
                        break
                    self._assign(pending, workers, store, hub)
                    self._drain(workers, pending, outcome, store, hub)
                    self._check_timeouts(workers, pending, outcome, store, hub)
                    self._check_liveness(workers, pending, outcome, store, hub)
                    self._check_crashes(workers, pending, outcome, store, hub)
                    next_worker_id = self._replenish(
                        workers, pending, next_worker_id
                    )
                if guard.tripped or self._stop_requested:
                    outcome.interrupted = True
                    outcome.interrupt_signal = (
                        guard.describe() or "stop-requested"
                    )
                abandoned = [
                    (w.spec, w.attempt) for w in workers.values() if w.busy
                ]
        finally:
            self._shutdown(workers)

        if outcome.interrupted:
            if store is not None:
                store.flush()
            hub.emit(ev.CAMPAIGN_INTERRUPTED, detail=outcome.interrupt_signal)
        elif self._halted:
            self._fail_remaining(
                pending, abandoned, outcome, store, hub, self._halted
            )
        hub.emit(ev.CAMPAIGN_FINISHED)
        return outcome

    # -- scheduling internals ------------------------------------------

    def _wrap_outbox(self, channel):
        """Per-worker result-channel hook — the chaos harness wraps it."""
        return channel

    def _spawn(self, worker_id: int) -> _Worker:
        # One private pipe pair per worker.  Results never share a
        # transport: see _ResultChannel for why a shared queue is a
        # liveness hazard under kills.
        inbox_r, inbox_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        heartbeat = self._ctx.Value("d", time.monotonic())
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id, self.job_fn, inbox_r,
                self._wrap_outbox(_ResultChannel(result_w)), heartbeat,
                self.beat_interval,
            ),
            daemon=True,
            name=f"repro-runner-{worker_id}",
        )
        process.start()
        # Drop the child's ends so a dead worker reads as EOF here.
        inbox_r.close()
        result_w.close()
        os.set_blocking(result_r.fileno(), False)
        _LIVE_WORKERS.add(process)
        return _Worker(
            worker_id=worker_id, process=process, inbox=inbox_w,
            conn=result_r, heartbeat=heartbeat,
        )

    def _assign(self, pending, workers, store, hub) -> None:
        now = time.monotonic()
        for worker in workers.values():
            if worker.busy or not pending:
                continue
            index = next(
                (i for i, (ready, _, _) in enumerate(pending) if ready <= now),
                None,
            )
            if index is None:
                continue
            _, spec, attempt = pending.pop(index)
            worker.spec = spec
            worker.attempt = attempt
            worker.started_at = now
            try:
                worker.inbox.send((spec.to_json(), attempt))
            except OSError:
                pass  # worker just died; _check_crashes re-queues the job
            if store is not None and attempt == 0:
                store.mark_running(spec.job_id)
            hub.emit(
                ev.JOB_STARTED, job_id=spec.job_id, label=spec.label,
                worker=worker.worker_id, attempt=attempt,
            )

    def _drain(self, workers, pending, outcome, store, hub) -> None:
        """Process every available worker message (block briefly once).

        Reads are non-blocking and frame-parsed in the parent: a
        worker killed mid-write leaves at worst a partial frame in its
        private buffer, never a blocked read or a poisoned lock.
        """
        conns = {
            worker.conn: worker
            for worker in workers.values() if not worker.eof
        }
        if not conns:
            time.sleep(self.poll_interval)
            return
        ready = multiprocessing.connection.wait(
            list(conns), timeout=self.poll_interval
        )
        for conn in ready:
            worker = conns[conn]
            self._pump(worker)
            for message in worker.take_messages():
                self._dispatch(message, workers, pending, outcome, store, hub)

    @staticmethod
    def _pump(worker: _Worker) -> None:
        """Move every byte the worker's pipe holds into its buffer."""
        fd = worker.conn.fileno()
        while True:
            try:
                chunk = os.read(fd, 1 << 16)
            except BlockingIOError:
                return
            except OSError:
                worker.eof = True
                return
            if not chunk:
                worker.eof = True
                return
            worker.buffer.extend(chunk)

    def _dispatch(
        self, message, workers, pending, outcome, store, hub
    ) -> None:
        worker_id, job_id, status, payload, retryable, wall = message
        worker = workers.get(worker_id)
        if status == "ready":
            # Bootstrap finished: charge the in-flight job's wall-clock
            # budget from here, not from when the job was queued into a
            # still-booting interpreter.
            if worker is not None:
                worker.ready = True
                if worker.busy:
                    worker.started_at = time.monotonic()
            return
        if worker is None or worker.spec is None or worker.spec.job_id != job_id:
            return  # stale message (a chaos duplicate, a replaced worker)
        spec, attempt = worker.spec, worker.attempt
        worker.spec = None
        self._circuit.record_success()  # the worker survived its job
        if status == "done":
            outcome.results[spec.job_id] = payload
            if store is not None:
                store.record_attempt(spec.job_id, attempt, "done", "", wall)
                store.record_success(spec.job_id, payload, wall)
            hub.emit(
                ev.JOB_FINISHED, job_id=spec.job_id, label=spec.label,
                worker=worker_id, attempt=attempt,
            )
        else:
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "error", str(payload), wall
                )
            self._retry_or_fail(
                spec, attempt, str(payload), retryable, pending, outcome,
                store, hub,
            )

    def _check_timeouts(self, workers, pending, outcome, store, hub) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for worker in list(workers.values()):
            spec, attempt = worker.spec, worker.attempt
            if spec is None or not worker.ready:
                continue  # boot time is not the job's; liveness covers wedges
            if now - worker.started_at <= self.timeout:
                continue
            detail = f"exceeded {self.timeout:.1f}s wall-clock budget"
            hub.emit(
                ev.JOB_TIMEOUT, job_id=spec.job_id, label=spec.label,
                worker=worker.worker_id, attempt=attempt, detail=detail,
            )
            self._kill(workers, worker)
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "timeout", detail, self.timeout
                )
            self._handle_death(
                spec, attempt, detail, pending, outcome, store, hub
            )

    def _check_liveness(self, workers, pending, outcome, store, hub) -> None:
        """Detect wedged workers whose process is alive but silent.

        ``is_alive()`` cannot see a SIGSTOPped or deadlocked worker;
        the heartbeat can — it goes stale.  The job's own runtime is
        covered by ``timeout``; this grace period only covers loss of
        the heartbeat itself.
        """
        if self.liveness_grace is None:
            return
        now = time.monotonic()
        for worker in list(workers.values()):
            spec, attempt = worker.spec, worker.attempt
            if spec is None or not worker.process.is_alive():
                continue
            # A still-booting interpreter has not started its beat
            # thread yet; give it the boot allowance, not the (often
            # much tighter) steady-state grace.
            grace = (
                self.liveness_grace if worker.ready
                else max(self.liveness_grace, _BOOT_GRACE)
            )
            stale = now - worker.last_seen()
            if stale <= grace:
                continue
            detail = (
                f"no heartbeat for {stale:.1f}s "
                f"(grace {grace:.1f}s)"
            )
            hub.emit(
                ev.WORKER_UNRESPONSIVE, job_id=spec.job_id, label=spec.label,
                worker=worker.worker_id, attempt=attempt, detail=detail,
            )
            self._kill(workers, worker)
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "unresponsive", detail
                )
            self._handle_death(
                spec, attempt, detail, pending, outcome, store, hub
            )

    def _check_crashes(self, workers, pending, outcome, store, hub) -> None:
        """Detect dead workers and fail (or retry) their in-flight jobs."""
        for worker in list(workers.values()):
            if worker.process.is_alive():
                continue
            spec, attempt = worker.spec, worker.attempt
            self._kill(workers, worker)
            if spec is not None:
                detail = (
                    f"worker crashed (exit code {worker.process.exitcode})"
                )
                hub.emit(
                    ev.WORKER_CRASHED, job_id=spec.job_id, label=spec.label,
                    worker=worker.worker_id, attempt=attempt, detail=detail,
                )
                if store is not None:
                    store.record_attempt(spec.job_id, attempt, "crash", detail)
                self._handle_death(
                    spec, attempt, detail, pending, outcome, store, hub
                )

    def _handle_death(
        self, spec, attempt, detail, pending, outcome, store, hub
    ) -> None:
        """A worker died under this job: quarantine, retry, or fail.

        Two guards fire before the ordinary retry path: the poison
        tracker quarantines a *job* that keeps killing workers, and the
        circuit breaker halts the *campaign* when workers die
        consecutively regardless of job — the first is a bad input,
        the second a bad environment.
        """
        verdict = self._poison.record_death(spec.job_id)
        if verdict is not None:
            quarantine_detail = verdict.render()
            outcome.failures[spec.job_id] = quarantine_detail
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "quarantined", quarantine_detail
                )
                store.record_failure(spec.job_id, quarantine_detail)
            hub.emit(
                ev.JOB_QUARANTINED, job_id=spec.job_id, label=spec.label,
                attempt=attempt, detail=quarantine_detail,
            )
        else:
            self._retry_or_fail(
                spec, attempt, detail, True, pending, outcome, store, hub
            )
        if self._circuit.record_death():
            self._halted = self._circuit.render()
            hub.emit(ev.CIRCUIT_OPEN, detail=self._halted)

    def _replenish(self, workers, pending, next_worker_id) -> int:
        """Keep the pool sized to the remaining work after kills."""
        busy = sum(1 for w in workers.values() if w.busy)
        target = min(self.jobs, busy + len(pending))
        while len(workers) < target:
            workers[next_worker_id] = self._spawn(next_worker_id)
            next_worker_id += 1
        return next_worker_id

    def _retry_or_fail(
        self, spec, attempt, detail, retryable, pending, outcome, store, hub
    ) -> None:
        if retryable and attempt < self.retries:
            delay = seeded_backoff(
                self.backoff, attempt + 1, spec.job_id, self.max_backoff
            )
            pending.append((time.monotonic() + delay, spec, attempt + 1))
            hub.emit(
                ev.JOB_RETRIED, job_id=spec.job_id, label=spec.label,
                attempt=attempt + 1, detail=detail, delay=delay,
            )
            return
        outcome.failures[spec.job_id] = detail
        if store is not None:
            store.record_failure(spec.job_id, detail)
        hub.emit(
            ev.JOB_FAILED, job_id=spec.job_id, label=spec.label,
            attempt=attempt, detail=detail,
        )

    def _fail_remaining(
        self, pending, abandoned, outcome, store, hub, detail
    ) -> None:
        """Circuit open: fail everything still queued or in flight."""
        leftovers = [(spec, attempt) for _ready, spec, attempt in pending]
        leftovers.extend(
            (spec, attempt) for spec, attempt in abandoned if spec is not None
        )
        pending.clear()
        for spec, attempt in leftovers:
            if spec.job_id in outcome.failures:
                continue
            outcome.failures[spec.job_id] = detail
            if store is not None:
                store.record_failure(spec.job_id, detail)
            hub.emit(
                ev.JOB_FAILED, job_id=spec.job_id, label=spec.label,
                attempt=attempt, detail=detail,
            )

    # -- teardown -------------------------------------------------------

    def _kill(self, workers: Dict[int, _Worker], worker: _Worker) -> None:
        workers.pop(worker.worker_id, None)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
        for conn in (worker.inbox, worker.conn):
            try:
                conn.close()
            except OSError:
                pass

    def _shutdown(self, workers: Dict[int, _Worker]) -> None:
        for worker in list(workers.values()):
            try:
                worker.inbox.send(None)
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for worker in list(workers.values()):
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in list(workers.values()):
            self._kill(workers, worker)


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------


def make_runner(
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    job_fn: JobFn = execute_job,
    on_event: Optional[EventCallback] = None,
    max_backoff: float = 5.0,
    poison_threshold: int = 3,
    circuit_threshold: int = 8,
    liveness_grace: Optional[float] = 30.0,
    fork_server: bool = False,
    batch: int = 8,
    recycle_after: int = 256,
):
    """A SerialRunner for ``jobs=1``, a WorkerPool otherwise.

    ``fork_server=True`` selects the persistent snapshot-cached
    :class:`~repro.runner.forkserver.ForkServerPool` at any job count
    (even one worker benefits from the snapshot cache).
    """
    if fork_server:
        from repro.runner.forkserver import ForkServerPool, execute_job_cached

        return ForkServerPool(
            jobs=max(jobs, 1), batch=batch, recycle_after=recycle_after,
            timeout=timeout, retries=retries, max_backoff=max_backoff,
            job_fn=execute_job_cached if job_fn is execute_job else job_fn,
            on_event=on_event, poison_threshold=poison_threshold,
            circuit_threshold=circuit_threshold,
            liveness_grace=liveness_grace,
        )
    if jobs <= 1:
        return SerialRunner(
            retries=retries, max_backoff=max_backoff, job_fn=job_fn,
            on_event=on_event,
        )
    return WorkerPool(
        jobs=jobs, timeout=timeout, retries=retries, max_backoff=max_backoff,
        job_fn=job_fn, on_event=on_event, poison_threshold=poison_threshold,
        circuit_threshold=circuit_threshold, liveness_grace=liveness_grace,
    )


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    store: Optional[ResultStore] = None,
    job_fn: JobFn = execute_job,
    on_event: Optional[EventCallback] = None,
) -> RunnerOutcome:
    """One-call campaign execution: plan in, outcome out."""
    runner = make_runner(
        jobs=jobs, timeout=timeout, retries=retries, job_fn=job_fn,
        on_event=on_event,
    )
    return runner.run(specs, store=store)
