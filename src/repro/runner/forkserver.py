"""Fork-server campaign execution: persistent, snapshot-cached workers.

The spawn-per-campaign :class:`~repro.runner.pool.WorkerPool` pays two
fixed costs that dominate short campaigns: booting a pristine ``spawn``
interpreter per worker (~250ms with imports) and building a fresh
testbed per trial (~5ms against ~1ms of actual injection work).  The
benchmark consequence is a parallel pool *losing* to the serial loop on
a 30-job campaign.

:class:`ForkServerPool` removes both costs:

* workers start via the ``fork`` context where the platform offers it
  (warm imports, ~2ms), falling back to ``spawn`` elsewhere;
* each worker keeps a per-version **snapshot cache**: the first trial
  of a version boots a testbed and captures a
  :class:`~repro.core.checkpoint.TestbedCheckpoint`; every later trial
  *restores* the checkpoint in place instead of rebuilding the machine;
* jobs travel in **batches** over the existing per-worker
  length-prefixed pipes, amortizing IPC and scheduling overhead.

Robustness is the design center, not an afterthought — persistent
processes accumulate state and cached snapshots can rot:

* every restore is **digest-verified** against the checkpoint's
  ``machine_digest``; a mismatch evicts the cache entry, cold-boots a
  fresh testbed, emits a structured ``restore-diverged`` event and is
  counted in the pool's infrastructure :class:`MetricsCollector`;
* workers are **health-checked and recycled** after ``recycle_after``
  trials or unbounded RSS growth (the same park/reboot discipline
  ReHype applies to the hypervisor itself);
* heartbeat liveness and batch-progress timeouts carry over from the
  base pool, with :func:`~repro.runner.pool.seeded_backoff` retries;
* repeated worker deaths trip the shared circuit breaker, and the pool
  then **degrades** to a spawn-per-job :class:`WorkerPool` for the
  leftover jobs instead of failing the campaign — completed results
  are preserved through the store;
* SIGINT/SIGTERM flush in-flight batch members back to pending (they
  are simply never recorded as done), so ``--resume`` stays exact.

Correctness invariant: serial == spawn-pool == fork-server, byte for
byte, over results, traces and metrics — enforced by the parity tests
and the chaos harness's fork-server faults.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.probes.metrics import MetricsCollector
from repro.resilience.quarantine import CircuitBreaker, PoisonTracker
from repro.runner import events as ev
from repro.runner.events import EventHub
from repro.runner.jobs import (
    FUZZ_TRIAL,
    JobSpec,
    TransientJobError,
    execute_job,
)
from repro.runner.pool import (
    _LIVE_WORKERS,
    JobFn,
    RunnerOutcome,
    WorkerPool,
    _ResultChannel,
    _resume_into,
    _SignalGuard,
    _Worker,
)
from repro.runner.store import ResultStore

#: Jobs shipped to a worker per dispatch.
DEFAULT_BATCH = 8
#: Trials a worker serves before it is recycled.
DEFAULT_RECYCLE_AFTER = 256
#: Peak-RSS growth over a worker's first batch (KiB) that triggers
#: recycling — a leaking worker is parked before it hurts the host.
DEFAULT_MAX_RSS_GROWTH_KB = 262144


def preferred_context() -> str:
    """``fork`` where the platform supports it, else ``spawn``.

    Fork inherits warm imports (~2ms to a live worker vs ~250ms for a
    fresh spawn interpreter), which is most of the fork-server's edge
    on short campaigns.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# Worker-side snapshot cache
# ----------------------------------------------------------------------
#
# Module-level state is deliberate: each worker is its own process, so
# these globals are per-worker.  ``execute_job_cached`` is a plain
# picklable function, which lets the chaos harness compose it under
# its own fault-injecting job_fn wrapper.


@dataclass
class _CacheEntry:
    bed: Any
    checkpoint: Any  # TestbedCheckpoint (imported lazily)


_CACHE: Dict[str, _CacheEntry] = {}
_CACHE_STATS: Dict[str, int] = {}
_INFRA: List[dict] = []
_RESTORE_CHAOS: Optional[Any] = None


def _stat(key: str, n: int = 1) -> None:
    _CACHE_STATS[key] = _CACHE_STATS.get(key, 0) + n


def _reset_worker_cache() -> None:
    """Test hook: forget cached beds and counters in this process."""
    _CACHE.clear()
    _CACHE_STATS.clear()
    _INFRA.clear()


def _lease_bed(campaign: Any, spec: JobSpec, attempt: int = 0) -> Any:
    """A testbed for one trial: restored from cache, or cold-booted.

    The restore path is digest-verified end to end: a cached snapshot
    whose restore does not reproduce the capture-time
    ``machine_digest`` is evicted, the divergence is recorded as a
    structured infra event, and the trial falls back to the exact
    cold-boot path a cache miss takes — so a rotten snapshot can cost
    throughput but never correctness.
    """
    from repro.core.checkpoint import CheckpointDiverged, TestbedCheckpoint

    # One warm bed per (version, topology): a cached snapshot of the
    # wrong scenario shape must never serve a trial.
    key = f"{spec.version}|{spec.topology}" if spec.topology else spec.version
    entry = _CACHE.get(key)
    if entry is not None:
        if _RESTORE_CHAOS is not None:
            _RESTORE_CHAOS.before_restore(entry, spec.job_id, attempt)
        try:
            entry.checkpoint.restore(entry.bed)
            _stat("forkserver.restores")
            return entry.bed
        except CheckpointDiverged as exc:
            del _CACHE[key]
            _stat("forkserver.restore.diverged")
            _stat("forkserver.cold_boots")
            _INFRA.append(
                {
                    "kind": "restore-diverged",
                    "version": key,
                    "expected": exc.expected,
                    "actual": exc.actual,
                }
            )
    bed = campaign.testbed_factory(campaign.version)
    _CACHE[key] = _CacheEntry(
        bed=bed, checkpoint=TestbedCheckpoint.capture(bed)
    )
    _stat("forkserver.captures")
    return bed


def execute_job_cached(spec: JobSpec, attempt: int = 0) -> Dict[str, object]:
    """``execute_job`` with snapshot-cached classic fuzz trials.

    Classic (non-synthetic) fuzz trials build their testbed through
    ``testbed_factory(version)``, so one warm bed per version serves
    every trial after an exact checkpoint restore.  Every other job
    kind runs cold through :func:`~repro.runner.jobs.execute_job` —
    those jobs still gain the fork-server's process reuse and batch
    IPC, just not the snapshot cache.
    """
    if spec.kind != FUZZ_TRIAL:
        return execute_job(spec, attempt)
    from repro.vulngen.corpus import is_synthetic_id

    if is_synthetic_id(spec.use_case):
        return execute_job(spec, attempt)
    from repro.core.fuzz import RandomErroneousStateCampaign
    from repro.xen.versions import version_by_name

    campaign = RandomErroneousStateCampaign(version_by_name(spec.version))
    bed = _lease_bed(campaign, spec, attempt)
    component = campaign.component_by_name(spec.use_case)
    seed = spec.seed if spec.seed is not None else 0
    result = campaign.run_trial_on(bed, component, seed)
    return asdict(result)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _forkserver_worker_main(
    worker_id: int,
    job_fn: JobFn,
    inbox: Any,
    outbox: Any,
    heartbeat: Any = None,
    beat_interval: float = 0.2,
    restore_chaos: Optional[Any] = None,
) -> None:
    """Persistent worker loop: take a batch, stream results, repeat.

    Signal discipline for *persistent* workers: SIGINT is ignored (a
    terminal Ctrl-C reaches the whole foreground process group; the
    parent's signal guard owns interruption policy, and a worker that
    dies mid-batch would just lose streamed work), and SIGTERM is
    reset to the default action (a fork-context child inherits the
    parent's no-op guard handler, which would make ``terminate()``
    useless).  The heartbeat thread doubles as a parent-death watchdog:
    if the parent vanishes without closing our inbox (SIGKILL), the
    reparented worker exits instead of surviving as an orphan.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    # A fork-context child inherits the parent's module state — if the
    # parent process ever ran execute_job_cached itself, that includes
    # its snapshot cache and counters.  Start from a clean slate.
    _reset_worker_cache()
    global _RESTORE_CHAOS
    _RESTORE_CHAOS = restore_chaos
    parent_pid = os.getppid()
    if heartbeat is not None:

        def _beat() -> None:
            while True:
                heartbeat.value = time.monotonic()
                if os.getppid() != parent_pid:
                    os._exit(0)  # parent died; do not outlive it
                time.sleep(beat_interval)

        threading.Thread(
            target=_beat, daemon=True, name="repro-heartbeat"
        ).start()
    try:
        outbox.put((worker_id, None, "ready", None, False, 0.0))
    except OSError:
        return
    seq = 0
    while True:
        try:
            item = inbox.recv()
        except (EOFError, OSError):
            return  # the parent closed our inbox (or died): shut down
        if item is None:
            return
        for spec_json, attempt in item:
            spec = JobSpec.from_json(spec_json)
            started = time.perf_counter()
            status, retryable = "done", False
            payload: object
            try:
                payload = job_fn(spec, attempt)
            except TransientJobError as exc:
                status, payload, retryable = "error", str(exc), True
            except BaseException as exc:  # noqa: BLE001 - isolation boundary
                status, payload = "error", f"{type(exc).__name__}: {exc}"
            wall = time.perf_counter() - started
            try:
                for infra in list(_INFRA):
                    seq += 1
                    outbox.put(
                        (
                            worker_id, spec.job_id, "infra",
                            dict(infra, seq=seq), False, 0.0,
                        )
                    )
                _INFRA.clear()
                outbox.put(
                    (worker_id, spec.job_id, status, payload, retryable, wall)
                )
            except OSError:
                return  # the parent is gone; nobody is listening
        seq += 1
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        counters = dict(_CACHE_STATS)
        try:
            outbox.put(
                (
                    worker_id, None, "batch-done",
                    {"seq": seq, "rss_kb": rss_kb, "counters": counters},
                    False, 0.0,
                )
            )
        except OSError:
            return
        _CACHE_STATS.clear()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


@dataclass
class _BatchWorker(_Worker):
    """Parent-side handle for one persistent batch worker."""

    #: The in-flight batch, as (spec, attempt) pairs; results stream
    #: back in batch order, so ``batch[acked]`` is always the member
    #: currently executing.
    batch: List[Tuple[JobSpec, int]] = field(default_factory=list)
    acked: int = 0
    #: Trials served over this worker's whole lifetime.
    served: int = 0
    #: Peak RSS (KiB) after the worker's first batch — the baseline
    #: RSS-growth recycling measures against.
    baseline_rss: int = 0
    #: Highest infra/batch-done sequence number seen, for dropping
    #: chaos-duplicated control messages.
    infra_seq: int = 0
    retiring: bool = False
    recycle_reason: str = ""

    @property
    def busy(self) -> bool:
        return self.acked < len(self.batch)

    def current(self) -> Tuple[JobSpec, int]:
        return self.batch[self.acked]


class ForkServerPool(WorkerPool):
    """Persistent snapshot-cached worker pool with graceful degradation.

    A drop-in :class:`WorkerPool` replacement (same ``run`` contract,
    store semantics and event stream) that keeps workers alive across
    jobs, dispatches in batches, and serves classic fuzz trials from
    digest-verified snapshot restores.  When the circuit breaker opens
    — persistent workers keep dying, an environment problem the
    fork-server cannot out-retry — the pool degrades to a fresh
    spawn-per-job :class:`WorkerPool` for the remaining jobs instead
    of failing the campaign (``degrade=False`` restores the base
    pool's fail-fast behaviour).
    """

    def __init__(
        self,
        jobs: int = 2,
        batch: int = DEFAULT_BATCH,
        recycle_after: int = DEFAULT_RECYCLE_AFTER,
        max_rss_growth_kb: int = DEFAULT_MAX_RSS_GROWTH_KB,
        context: Optional[str] = None,
        degrade: bool = True,
        metrics: Optional[MetricsCollector] = None,
        job_fn: JobFn = execute_job_cached,
        **kwargs: Any,
    ):
        super().__init__(jobs=jobs, job_fn=job_fn, **kwargs)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if recycle_after < 1:
            raise ValueError("recycle_after must be >= 1")
        self.batch = batch
        self.recycle_after = recycle_after
        self.max_rss_growth_kb = max_rss_growth_kb
        self.degrade = degrade
        #: Infrastructure metrics sink (restores, divergences, cold
        #: boots, recycles).  Kept separate from any per-trial
        #: collector: these counters describe execution machinery and
        #: must never leak into persisted trial results.
        self.metrics = metrics if metrics is not None else MetricsCollector()
        #: Plain-dict mirror of the infra counters, for reports/tests.
        self.stats: Dict[str, int] = {}
        self._ctx = multiprocessing.get_context(context or preferred_context())
        #: The degraded spawn pool, while one is running (stop
        #: requests must reach it, not just this halted pool).
        self._fallback: Optional[WorkerPool] = None

    def request_stop(self) -> None:
        super().request_stop()
        if self._fallback is not None:
            self._fallback.request_stop()

    # -- hooks ----------------------------------------------------------

    def _restore_chaos(self) -> Optional[Any]:
        """Worker-side restore fault injector — chaos harness hook.

        Must return a picklable object with a
        ``before_restore(entry, job_id, attempt)`` method (or None).
        It runs in the worker immediately before each cached restore,
        which is where the chaos harness corrupts snapshot bytes and
        wedges restores.
        """
        return None

    def _fallback_job_fn(self) -> JobFn:
        """Job function for the degraded spawn-per-job pool."""
        if self.job_fn is execute_job_cached:
            return execute_job
        return self.job_fn

    # -- public API -----------------------------------------------------

    def run(
        self, specs: Sequence[JobSpec], store: Optional[ResultStore] = None
    ) -> RunnerOutcome:
        specs = list(specs)
        outcome = RunnerOutcome()
        hub = EventHub(total=len(specs), callback=self.on_event)
        remaining = _resume_into(outcome, specs, store)
        for spec in specs:  # plan order, not set order: deterministic events
            if spec.job_id in outcome.skipped:
                hub.emit(ev.JOB_SKIPPED, job_id=spec.job_id)
        if not remaining:
            hub.emit(ev.CAMPAIGN_FINISHED)
            return outcome

        self._poison = PoisonTracker(self.poison_threshold)
        self._circuit = CircuitBreaker(self.circuit_threshold)
        self._halted = ""
        self.stats = {}

        pending: List[tuple] = [(0.0, spec, 0) for spec in remaining]
        workers: Dict[int, _BatchWorker] = {}
        next_worker_id = 0

        abandoned: List[tuple] = []
        try:
            with _SignalGuard() as guard:
                for _ in range(min(self.jobs, len(pending))):
                    workers[next_worker_id] = self._spawn(next_worker_id)
                    next_worker_id += 1
                while pending or any(w.busy for w in workers.values()):
                    if guard.tripped or self._halted or self._stop_requested:
                        break
                    self._assign(pending, workers, store, hub)
                    self._drain(workers, pending, outcome, store, hub)
                    self._check_timeouts(workers, pending, outcome, store, hub)
                    self._check_liveness(workers, pending, outcome, store, hub)
                    self._check_crashes(workers, pending, outcome, store, hub)
                    next_worker_id = self._replenish(
                        workers, pending, next_worker_id
                    )
                # The last batch's trailing batch-done control message
                # (carrying the worker's cache counters) lands moments
                # after its last result; the loop above already exited
                # by then.  Drain once more so the counters survive.
                self._drain(workers, pending, outcome, store, hub)
                if guard.tripped or self._stop_requested:
                    outcome.interrupted = True
                    outcome.interrupt_signal = (
                        guard.describe() or "stop-requested"
                    )
                # Every unacked batch member flushes back: it was never
                # recorded as done, so the store still counts it as
                # pending work and --resume picks it up exactly.
                abandoned = [
                    (spec, attempt)
                    for worker in workers.values()
                    for (spec, attempt) in worker.batch[worker.acked:]
                ]
        finally:
            self._shutdown(workers)

        if outcome.interrupted:
            if store is not None:
                store.flush()
            hub.emit(ev.CAMPAIGN_INTERRUPTED, detail=outcome.interrupt_signal)
        elif self._halted:
            if self.degrade:
                self._degrade_remaining(
                    specs, pending, abandoned, outcome, store, hub
                )
            else:
                self._fail_remaining(
                    pending, abandoned, outcome, store, hub, self._halted
                )
        hub.emit(ev.CAMPAIGN_FINISHED)
        return outcome

    # -- degradation ladder --------------------------------------------

    def _degrade_remaining(
        self, specs, pending, abandoned, outcome, store, hub
    ) -> None:
        """Circuit open: hand the leftovers to a spawn-per-job pool.

        The degradation ladder's last rung before failure: persistent
        workers keep dying, so run what's left the conservative way —
        fresh spawn interpreter per worker, one job at a time, no
        snapshot cache.  Completed results stay in the outcome and the
        store; only unfinished jobs are re-dispatched.
        """
        unfinished = {spec.job_id for _ready, spec, _attempt in pending}
        unfinished.update(spec.job_id for spec, _attempt in abandoned)
        pending.clear()
        leftovers = [
            spec for spec in specs
            if spec.job_id in unfinished
            and spec.job_id not in outcome.results
            and spec.job_id not in outcome.failures
        ]
        detail = (
            f"{self._halted}; degrading {len(leftovers)} job(s) to the "
            "spawn-per-job pool"
        )
        hub.emit(ev.POOL_DEGRADED, detail=detail)
        self._count("forkserver.degraded")
        if not leftovers:
            return
        fallback = self._fallback = WorkerPool(
            jobs=self.jobs,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            max_backoff=self.max_backoff,
            job_fn=self._fallback_job_fn(),
            on_event=self.on_event,
            poll_interval=self.poll_interval,
            poison_threshold=self.poison_threshold,
            circuit_threshold=self.circuit_threshold,
            liveness_grace=self.liveness_grace,
            beat_interval=self.beat_interval,
        )
        fb_outcome = fallback.run(leftovers, store=store)
        outcome.results.update(fb_outcome.results)
        outcome.failures.update(fb_outcome.failures)
        if fb_outcome.interrupted:
            outcome.interrupted = True
            outcome.interrupt_signal = fb_outcome.interrupt_signal

    # -- infra accounting ----------------------------------------------

    def _count(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n
        self.metrics.count(key, n)

    # -- scheduling internals ------------------------------------------

    def _spawn(self, worker_id: int) -> _BatchWorker:
        inbox_r, inbox_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        heartbeat = self._ctx.Value("d", time.monotonic())
        process = self._ctx.Process(
            target=_forkserver_worker_main,
            args=(
                worker_id, self.job_fn, inbox_r,
                self._wrap_outbox(_ResultChannel(result_w)), heartbeat,
                self.beat_interval, self._restore_chaos(),
            ),
            daemon=True,
            name=f"repro-forkserver-{worker_id}",
        )
        process.start()
        inbox_r.close()
        result_w.close()
        os.set_blocking(result_r.fileno(), False)
        _LIVE_WORKERS.add(process)
        return _BatchWorker(
            worker_id=worker_id, process=process, inbox=inbox_w,
            conn=result_r, heartbeat=heartbeat,
        )

    def _assign(self, pending, workers, store, hub) -> None:
        now = time.monotonic()
        for worker in workers.values():
            if worker.busy or worker.retiring or not pending:
                continue
            indices = [
                i for i, (ready, _, _) in enumerate(pending) if ready <= now
            ][: self.batch]
            if not indices:
                continue
            members = []
            for i in reversed(indices):
                members.append(pending.pop(i))
            members.reverse()
            worker.batch = [
                (spec, attempt) for _ready, spec, attempt in members
            ]
            worker.acked = 0
            worker.started_at = now
            try:
                worker.inbox.send(
                    [
                        (spec.to_json(), attempt)
                        for spec, attempt in worker.batch
                    ]
                )
            except OSError:
                pass  # worker just died; _check_crashes re-queues the batch
            for spec, attempt in worker.batch:
                if store is not None and attempt == 0:
                    store.mark_running(spec.job_id)
                hub.emit(
                    ev.JOB_STARTED, job_id=spec.job_id, label=spec.label,
                    worker=worker.worker_id, attempt=attempt,
                )

    def _dispatch(
        self, message, workers, pending, outcome, store, hub
    ) -> None:
        worker_id, job_id, status, payload, retryable, wall = message
        worker = workers.get(worker_id)
        if worker is None:
            return  # a replaced or retired worker's late message
        if status == "ready":
            worker.ready = True
            if worker.busy:
                worker.started_at = time.monotonic()
            return
        if status == "infra":
            if payload.get("seq", 0) <= worker.infra_seq:
                return  # chaos-duplicated control message
            worker.infra_seq = payload["seq"]
            self._on_infra(payload, job_id, worker, hub)
            return
        if status == "batch-done":
            if payload.get("seq", 0) <= worker.infra_seq:
                return
            worker.infra_seq = payload["seq"]
            self._on_batch_done(payload, worker, workers, hub)
            return
        if not worker.busy:
            return  # stale result (a chaos duplicate after batch end)
        spec, attempt = worker.current()
        if spec.job_id != job_id:
            return  # stale or duplicated mid-batch message
        worker.acked += 1
        worker.served += 1
        worker.started_at = time.monotonic()  # batch progress clock
        self._circuit.record_success()
        if status == "done":
            outcome.results[spec.job_id] = payload
            if store is not None:
                store.record_attempt(spec.job_id, attempt, "done", "", wall)
                store.record_success(spec.job_id, payload, wall)
            hub.emit(
                ev.JOB_FINISHED, job_id=spec.job_id, label=spec.label,
                worker=worker_id, attempt=attempt,
            )
        else:
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "error", str(payload), wall
                )
            self._retry_or_fail(
                spec, attempt, str(payload), retryable, pending, outcome,
                store, hub,
            )
        if not worker.busy:
            worker.batch = []
            worker.acked = 0
            if worker.retiring:
                self._retire(workers, worker, hub)

    def _on_infra(self, payload, job_id, worker, hub) -> None:
        if payload.get("kind") == "restore-diverged":
            hub.emit(
                ev.RESTORE_DIVERGED,
                job_id=job_id or "",
                worker=worker.worker_id,
                detail=(
                    f"xen-{payload.get('version', '?')}: restored digest "
                    f"{payload.get('actual', '')[:12]} != checkpoint "
                    f"{payload.get('expected', '')[:12]}"
                ),
            )

    def _on_batch_done(self, payload, worker, workers, hub) -> None:
        counters = payload.get("counters", {})
        for key in sorted(counters):
            self._count(key, counters[key])
        rss = int(payload.get("rss_kb", 0))
        if worker.baseline_rss == 0:
            worker.baseline_rss = rss
        grown = rss - worker.baseline_rss
        reason = ""
        if worker.served >= self.recycle_after:
            reason = (
                f"served {worker.served} trials "
                f"(recycle_after {self.recycle_after})"
            )
        elif self.max_rss_growth_kb and grown > self.max_rss_growth_kb:
            reason = (
                f"rss grew {grown} KiB over baseline "
                f"(limit {self.max_rss_growth_kb})"
            )
        if reason:
            worker.retiring = True
            worker.recycle_reason = reason
            if not worker.busy:
                self._retire(workers, worker, hub)

    def _retire(self, workers, worker, hub) -> None:
        """Gracefully replace a worker that hit its recycling limit."""
        hub.emit(
            ev.WORKER_RECYCLED, worker=worker.worker_id,
            detail=worker.recycle_reason,
        )
        self._count("forkserver.workers.recycled")
        workers.pop(worker.worker_id, None)
        try:
            worker.inbox.send(None)
        except OSError:
            pass
        worker.process.join(timeout=2.0)
        self._kill(workers, worker)  # force + close pipes if still alive

    def _requeue_tail(self, worker, pending) -> None:
        """Flush a dead worker's unstarted batch members back to pending.

        Members *after* the one currently executing are requeued at
        their existing attempt count — the worker never started them,
        so its death is not their failure.
        """
        for spec, attempt in worker.batch[worker.acked + 1:]:
            pending.append((0.0, spec, attempt))

    def _check_timeouts(self, workers, pending, outcome, store, hub) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for worker in list(workers.values()):
            if not worker.busy or not worker.ready:
                continue
            if now - worker.started_at <= self.timeout:
                continue
            spec, attempt = worker.current()
            detail = (
                f"no batch progress for {self.timeout:.1f}s on member "
                f"{worker.acked + 1}/{len(worker.batch)}"
            )
            hub.emit(
                ev.JOB_TIMEOUT, job_id=spec.job_id, label=spec.label,
                worker=worker.worker_id, attempt=attempt, detail=detail,
            )
            self._kill(workers, worker)
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "timeout", detail, self.timeout
                )
            self._requeue_tail(worker, pending)
            self._handle_death(
                spec, attempt, detail, pending, outcome, store, hub
            )

    def _check_liveness(self, workers, pending, outcome, store, hub) -> None:
        if self.liveness_grace is None:
            return
        now = time.monotonic()
        for worker in list(workers.values()):
            if not worker.busy or not worker.process.is_alive():
                continue
            grace = (
                self.liveness_grace if worker.ready
                else max(self.liveness_grace, 30.0)
            )
            stale = now - worker.last_seen()
            if stale <= grace:
                continue
            spec, attempt = worker.current()
            detail = f"no heartbeat for {stale:.1f}s (grace {grace:.1f}s)"
            hub.emit(
                ev.WORKER_UNRESPONSIVE, job_id=spec.job_id, label=spec.label,
                worker=worker.worker_id, attempt=attempt, detail=detail,
            )
            self._kill(workers, worker)
            if store is not None:
                store.record_attempt(
                    spec.job_id, attempt, "unresponsive", detail
                )
            self._requeue_tail(worker, pending)
            self._handle_death(
                spec, attempt, detail, pending, outcome, store, hub
            )

    def _check_crashes(self, workers, pending, outcome, store, hub) -> None:
        for worker in list(workers.values()):
            if worker.process.is_alive():
                continue
            # Harvest results the worker flushed before dying — they
            # are complete frames in its private pipe, and re-running
            # their jobs would only redo identical work.
            self._pump(worker)
            for message in worker.take_messages():
                self._dispatch(message, workers, pending, outcome, store, hub)
            self._kill(workers, worker)
            if worker.busy:
                spec, attempt = worker.current()
                detail = (
                    f"worker crashed (exit code {worker.process.exitcode}) "
                    f"mid-batch on member {worker.acked + 1}/"
                    f"{len(worker.batch)}"
                )
                hub.emit(
                    ev.WORKER_CRASHED, job_id=spec.job_id, label=spec.label,
                    worker=worker.worker_id, attempt=attempt, detail=detail,
                )
                if store is not None:
                    store.record_attempt(spec.job_id, attempt, "crash", detail)
                self._requeue_tail(worker, pending)
                self._handle_death(
                    spec, attempt, detail, pending, outcome, store, hub
                )
