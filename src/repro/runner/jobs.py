"""Job specifications and campaign planners.

Every experiment the repository ships — a (use case × version × mode)
campaign cell, one randomized fuzz trial, one benchmark suite item,
one registered test case — can be described by a small, serializable
:class:`JobSpec`.  Planners expand a whole campaign into a flat list
of specs with **stable job IDs** (a content hash of the spec), which
is what makes stores resumable: the same campaign planned twice yields
the same IDs, so completed work is recognisable across processes and
across re-launches.

:func:`execute_job` is the worker-side interpreter: given a spec (and
nothing else — workers share no state with the parent), it boots a
fresh testbed, runs the experiment, and returns a plain-dict payload
that survives pickling and JSON storage.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence


class TransientJobError(Exception):
    """A retryable failure: the job may succeed if run again.

    Raised by job implementations for conditions that are not a
    property of the experiment itself (resource exhaustion, simulated
    flakiness).  The pool retries these with backoff; any other
    exception fails the job immediately.
    """


#: The recognised job kinds.
CAMPAIGN_RUN = "campaign-run"
FUZZ_TRIAL = "fuzz-trial"
BENCHMARK_CASE = "benchmark-case"
TESTCASE = "testcase"
#: Internal kind used by the pool's own tests and health checks; the
#: ``use_case`` field encodes the behaviour ("ok", "fail",
#: "hang:<seconds>", "crash", "crash-until:<n>", "stop", "flaky:<n>").
SELFTEST = "selftest"

KINDS = (CAMPAIGN_RUN, FUZZ_TRIAL, BENCHMARK_CASE, TESTCASE, SELFTEST)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of experiment work."""

    kind: str
    #: Use-case / component / suite-item / test-case name.
    use_case: str
    version: str = ""
    #: Campaign mode ("exploit" / "injection"); empty otherwise.
    mode: str = ""
    #: Per-trial RNG seed (fuzz trials); ``None`` otherwise.
    seed: Optional[int] = None
    #: Trial index within its component (fuzz trials).
    trial: Optional[int] = None
    #: Run campaign cells under the microreboot recovery watchdog
    #: (campaign-run jobs only).  Part of the content hash: a
    #: ``--recover`` campaign is a different experiment from the same
    #: matrix without recovery, and resumes against its own store.
    recover: bool = False
    #: Directory for trace artefacts (``--trace``); ``None`` disables
    #: recording.  Deliberately EXCLUDED from the content hash: where
    #: traces land does not change the experiment, so a traced resume
    #: recognises work done by an untraced run and vice versa.
    trace_dir: Optional[str] = None
    #: Collect per-trial probe metrics (``--metrics``) on campaign
    #: runs.  Part of the content hash only when enabled: a metricless
    #: spec hashes exactly as it did before the field existed, so old
    #: stores stay resumable, while a metrics campaign is its own
    #: experiment (its payloads carry an extra key).
    metrics: bool = False
    #: Scenario topology as canonical JSON
    #: (:meth:`repro.core.topology.ScenarioTopology.spec_value`); the
    #: empty string is the paper default.  Same compatibility rule as
    #: ``metrics``: part of the content hash only when non-default, so
    #: every pre-topology job ID (and therefore every existing
    #: resumable store) is preserved, while each distinct topology is
    #: its own experiment with distinct IDs.
    topology: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; known: {KINDS}")

    @property
    def job_id(self) -> str:
        """Stable content-derived identifier."""
        fields = asdict(self)
        fields.pop("trace_dir")  # artefact destination, not experiment identity
        if not fields["metrics"]:
            fields.pop("metrics")  # keep pre-metrics job IDs stable
        if not fields["topology"]:
            fields.pop("topology")  # keep pre-topology job IDs stable
        blob = json.dumps(fields, sort_keys=True).encode()
        return f"{self.kind}:{hashlib.sha1(blob).hexdigest()[:16]}"

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls(**json.loads(text))

    @property
    def label(self) -> str:
        """Short human-readable description for progress output."""
        parts = [self.use_case]
        if self.version:
            parts.append(f"xen-{self.version}")
        if self.mode:
            parts.append(self.mode)
        if self.trial is not None:
            parts.append(f"#{self.trial}")
        return "/".join(parts)


# ----------------------------------------------------------------------
# Planners
# ----------------------------------------------------------------------


def plan_campaign(
    use_cases: Sequence[str],
    versions: Sequence[str],
    modes: Sequence[str] = ("exploit", "injection"),
    recover: bool = False,
    trace_dir: Optional[str] = None,
    metrics: bool = False,
    topology: str = "",
) -> List[JobSpec]:
    """Expand a campaign matrix into jobs, in matrix iteration order.

    ``topology`` is a :class:`~repro.core.topology.ScenarioTopology`
    spec value (canonical JSON; empty string = paper default) applied
    to every cell of the matrix.
    """
    return [
        JobSpec(
            kind=CAMPAIGN_RUN,
            use_case=u,
            version=v,
            mode=m,
            recover=recover,
            trace_dir=trace_dir,
            metrics=metrics,
            topology=topology,
        )
        for u in use_cases
        for v in versions
        for m in modes
    ]


def plan_fuzz(
    version: str,
    components: Sequence[str],
    runs_per_component: int,
    root_seed: int,
) -> List[JobSpec]:
    """Expand a fuzz campaign into per-trial jobs with derived seeds."""
    from repro.core.fuzz import trial_seed

    return [
        JobSpec(
            kind=FUZZ_TRIAL,
            use_case=component,
            version=version,
            seed=trial_seed(root_seed, component, index),
            trial=index,
        )
        for component in components
        for index in range(runs_per_component)
    ]


def plan_coverage_round(version: str, trials: Sequence) -> List[JobSpec]:
    """Expand one coverage-guided scheduler round into jobs.

    ``trials`` are :class:`repro.vulngen.schedule.TrialPlan` objects
    (anything with ``entry_id`` / ``mutation`` / ``seed`` / ``slot``
    works).  The mapping reuses the FUZZ_TRIAL schema: the corpus id
    rides in ``use_case`` (workers re-derive the full spec from it),
    the mutation name in ``mode``, and ``metrics=True`` requests the
    coverage signature every scheduling decision feeds on.
    """
    return [
        JobSpec(
            kind=FUZZ_TRIAL,
            use_case=t.entry_id,
            version=version,
            mode=t.mutation,
            seed=t.seed,
            trial=t.slot,
            metrics=True,
        )
        for t in trials
    ]


def plan_benchmark(items: Sequence[str], versions: Sequence[str]) -> List[JobSpec]:
    """Expand the security benchmark: every suite item on every version."""
    return [
        JobSpec(kind=BENCHMARK_CASE, use_case=item, version=v)
        for v in versions
        for item in items
    ]


def plan_testcases(names: Sequence[str], version: str) -> List[JobSpec]:
    """Expand registered test cases against one version."""
    return [JobSpec(kind=TESTCASE, use_case=name, version=version) for name in names]


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------


def execute_job(spec: JobSpec, attempt: int = 0) -> Dict[str, object]:
    """Run one job from scratch and return a picklable payload.

    Each invocation boots its own fresh testbed; nothing is shared with
    the parent process, which is what gives the pool hard crash
    isolation.  Parallel execution resolves names against the default
    registries (use cases, fuzz components, benchmark suite), so only
    default-configured experiments are parallelizable — custom
    closures stay on the serial path.
    """
    if spec.kind == CAMPAIGN_RUN:
        return _execute_campaign_run(spec)
    if spec.kind == FUZZ_TRIAL:
        return _execute_fuzz_trial(spec)
    if spec.kind == BENCHMARK_CASE:
        return _execute_benchmark_case(spec)
    if spec.kind == TESTCASE:
        return _execute_testcase(spec)
    if spec.kind == SELFTEST:
        return _execute_selftest(spec, attempt)
    raise ValueError(f"unknown job kind {spec.kind!r}")


def _execute_campaign_run(spec: JobSpec) -> Dict[str, object]:
    from repro.analysis.report import result_to_dict
    from repro.core.campaign import Campaign, Mode
    from repro.core.injections import resolve
    from repro.core.topology import ScenarioTopology
    from repro.xen.versions import version_by_name

    result = Campaign(
        recover=spec.recover,
        trace_dir=spec.trace_dir,
        collect_metrics=spec.metrics,
        topology=ScenarioTopology.from_spec_value(spec.topology),
    ).run(
        resolve(spec.use_case),
        version_by_name(spec.version),
        Mode(spec.mode),
    )
    return result_to_dict(result)


def _execute_fuzz_trial(spec: JobSpec) -> Dict[str, object]:
    from repro.xen.versions import version_by_name

    from repro.vulngen.corpus import is_synthetic_id

    if is_synthetic_id(spec.use_case):
        # Synthetic corpus trial: the id alone re-derives the full
        # spec, so workers need no shared state.  ``mode`` carries the
        # mutation, ``metrics`` requests the coverage signature.
        from repro.vulngen.corpus import spec_by_id
        from repro.vulngen.synthetic import run_synthetic_trial

        result = run_synthetic_trial(
            spec_by_id(spec.use_case),
            version_by_name(spec.version),
            spec.seed if spec.seed is not None else 0,
            mutation=spec.mode or "baseline",
            collect_coverage=spec.metrics,
        )
        return asdict(result)
    from repro.core.fuzz import RandomErroneousStateCampaign

    campaign = RandomErroneousStateCampaign(version_by_name(spec.version))
    result = campaign.replay(spec.use_case, spec.seed)
    return asdict(result)


def _execute_benchmark_case(spec: JobSpec) -> Dict[str, object]:
    from repro.core.benchmarking import default_suite
    from repro.core.testbed import build_testbed
    from repro.xen.versions import version_by_name

    by_name = {item.name: item for item in default_suite()}
    item = by_name[spec.use_case]
    bed = build_testbed(version_by_name(spec.version))
    injected, violated = item.run(bed)
    return {
        "name": item.name,
        "attribute": item.attribute,
        "injected": injected,
        "violated": violated,
    }


def _execute_testcase(spec: JobSpec) -> Dict[str, object]:
    from repro.core.testcases import run_test_case
    from repro.xen.versions import version_by_name

    outcome = run_test_case(spec.use_case, version_by_name(spec.version))
    return asdict(outcome)


def _execute_selftest(spec: JobSpec, attempt: int) -> Dict[str, object]:
    behaviour, _, arg = spec.use_case.partition(":")
    if behaviour == "hang":
        time.sleep(float(arg or "3600"))
    elif behaviour == "crash":
        os._exit(17)  # simulate a worker dying mid-job
    elif behaviour == "crash-until":
        # Kills its worker on the first <n> attempts, then succeeds:
        # the shape that opens a circuit breaker yet completes on a
        # fresh pool (the service's degradation ladder exercises this).
        if attempt < int(arg or "1"):
            os._exit(17)
    elif behaviour == "stop":
        import signal

        # A wedged worker: the process stays alive (is_alive() == True)
        # but stops making progress — only the heartbeat can tell.
        os.kill(os.getpid(), signal.SIGSTOP)
    elif behaviour == "fail":
        raise RuntimeError("selftest: permanent failure")
    elif behaviour == "flaky":
        if attempt < int(arg or "1"):
            raise TransientJobError(f"selftest: flaky attempt {attempt}")
    elif behaviour != "ok":
        raise ValueError(f"unknown selftest behaviour {behaviour!r}")
    return {"status": "ok", "attempt": attempt, "pid": os.getpid()}
