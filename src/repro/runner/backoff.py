"""Deterministic retry backoff, shared across the execution stack.

Lives in its own module because both ends of the runner need it: the
pool retries failed *jobs* and the store retries locked *opens*, and
``store`` cannot import ``pool`` (which imports ``store``) without a
cycle.
"""

from __future__ import annotations

import hashlib


def seeded_backoff(base: float, attempt: int, job_id: str, cap: float) -> float:
    """Capped exponential backoff with deterministic per-job jitter.

    The delay before retry ``attempt`` (1-based) grows as
    ``base * 2**(attempt-1)`` but never beyond ``cap`` — an uncapped
    schedule turns a deep retry budget into minutes of dead air.  The
    jitter factor (±15%) de-synchronises workers that failed together
    without touching any global RNG state: it is derived from the job
    id and attempt number, so replays see the same schedule.
    """
    if base <= 0:
        return 0.0
    raw = min(base * (2 ** (attempt - 1)), cap)
    digest = hashlib.sha1(f"{job_id}:{attempt}".encode("ascii")).digest()
    jitter = 0.85 + 0.30 * (digest[0] / 255.0)
    return min(raw * jitter, cap)
