"""SQLite-backed campaign result store.

One store file = one campaign's durable state: the planned jobs, every
attempt (with status, detail, wall time), and the result payload of
each completed job.  Because job IDs are content-derived
(:class:`~repro.runner.jobs.JobSpec.job_id`), re-planning the same
campaign against an existing store recognises completed work, which is
what powers ``--resume``: only pending and failed jobs are re-queued.

Only the parent (pool) process writes the store — workers ship their
payloads back over a queue — so there is no cross-process SQLite
contention to manage.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.runner.backoff import seeded_backoff
from repro.runner.jobs import JobSpec

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id    TEXT PRIMARY KEY,
    seq       INTEGER NOT NULL,
    kind      TEXT NOT NULL,
    spec      TEXT NOT NULL,
    status    TEXT NOT NULL DEFAULT 'pending',
    attempts  INTEGER NOT NULL DEFAULT 0,
    seed      INTEGER,
    wall_time REAL,
    updated_at REAL
);
CREATE TABLE IF NOT EXISTS results (
    job_id  TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS attempts (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id    TEXT NOT NULL,
    attempt   INTEGER NOT NULL,
    status    TEXT NOT NULL,
    detail    TEXT,
    wall_time REAL,
    at        REAL
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_PLAN_HASH_KEY = "plan_hash"
_SCHEMA_VERSION_KEY = "schema_version"

#: Version of the on-disk layout *and* of the payload/spec JSON shapes
#: stored inside it.  Bumped when resuming an old store would misread
#: its contents (v1 → v2: job specs grew ``trace_dir`` and campaign
#: payloads an optional ``trace`` summary).
SCHEMA_VERSION = 2


class StoreCorrupt(RuntimeError):
    """The store file is damaged beyond what SQLite can recover.

    Raised instead of leaking a raw :class:`sqlite3.DatabaseError` when
    a store was torn mid-write (truncated file, half-synced page): the
    caller can distinguish "this campaign's durable state is gone —
    start a fresh store" from a programming error.
    """

    def __init__(self, path: str, detail: str):
        self.path = path
        self.detail = detail
        super().__init__(
            f"result store {path!r} is corrupt ({detail}); the file was "
            "likely torn mid-write — move it aside and start a fresh "
            "--store, or restore it from a known-good copy and --resume"
        )


class StoreBusy(RuntimeError):
    """The store stayed write-locked through every open retry.

    Concurrent readers against a live campaign store (the service's
    result/metrics endpoints, a ``repro metrics`` invocation mid-run)
    can catch the writer inside a transaction; the open path retries
    with :func:`~repro.runner.backoff.seeded_backoff` before giving
    up, so this only fires when the lock is held pathologically long.
    """

    def __init__(self, path: str, attempts: int, detail: str):
        self.path = path
        self.attempts = attempts
        self.detail = detail
        super().__init__(
            f"result store {path!r} is locked by another process "
            f"({detail}); gave up after {attempts} attempt(s) — the "
            "writer is holding a transaction open unusually long"
        )


class StorePlanMismatch(RuntimeError):
    """A store holds jobs from a different campaign plan.

    Raised instead of silently resuming against the wrong store, which
    would report the old campaign's completed jobs as this campaign's
    results.
    """


class StoreSchemaMismatch(RuntimeError):
    """A store was written under a different schema version.

    Raised on open, before any resume logic runs: silently resuming
    would misparse the recorded specs/payloads (newer store) or write
    records an older build cannot read back (older store).  Stores
    from before versions were stamped count as version 1.
    """

    def __init__(self, path: str, found: int, expected: int):
        self.path = path
        self.found = found
        self.expected = expected
        direction = "older" if found < expected else "newer"
        super().__init__(
            f"result store {path!r} uses schema version {found}, but this "
            f"build expects {expected} (the store is from an {direction} "
            "build); pass a fresh --store path to re-run, or open the "
            "store with a matching build"
        )


def _plan_hash(job_ids: Iterable[str]) -> str:
    digest = hashlib.sha1("\n".join(sorted(job_ids)).encode("ascii"))
    return digest.hexdigest()

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class StoreSummary:
    """Counts by status, for progress lines and resume banners."""

    total: int
    done: int
    failed: int
    pending: int

    def render(self) -> str:
        return (
            f"{self.done}/{self.total} done, {self.failed} failed, "
            f"{self.pending} pending"
        )


class ResultStore:
    """Durable job/result persistence for one campaign."""

    #: Open-time lock retries: attempts beyond the first, backoff base
    #: and cap in seconds.  Retrying here is what lets readers open a
    #: store that a live campaign is actively writing.
    OPEN_RETRIES = 5
    OPEN_BACKOFF = 0.05
    OPEN_BACKOFF_CAP = 1.0

    def __init__(
        self,
        path: str = ":memory:",
        clock: Callable[[], float] = time.time,
    ):
        self.path = path
        self._clock = clock
        last_detail = ""
        for attempt in range(self.OPEN_RETRIES + 1):
            if attempt:
                time.sleep(seeded_backoff(
                    self.OPEN_BACKOFF, attempt, path, self.OPEN_BACKOFF_CAP
                ))
            try:
                self._conn = sqlite3.connect(path)
                self._conn.executescript(_SCHEMA)
                self._commit()
                self._verify_integrity()
                self._check_schema_version()
            except sqlite3.OperationalError as exc:
                if "locked" not in str(exc):
                    raise StoreCorrupt(path, str(exc)) from exc
                last_detail = str(exc)
                self._close_quietly()
                continue
            except StoreCorrupt as exc:
                # _sql/_commit wrap low-level errors; a wrapped lock
                # conflict is still just a busy writer, not rot.
                if "locked" not in exc.detail:
                    raise
                last_detail = exc.detail
                self._close_quietly()
                continue
            except sqlite3.DatabaseError as exc:
                raise StoreCorrupt(path, str(exc)) from exc
            break
        else:
            raise StoreBusy(path, self.OPEN_RETRIES + 1, last_detail)

    def _close_quietly(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:
            pass

    def _verify_integrity(self) -> None:
        """Fail fast on a torn file instead of erroring mid-campaign."""
        rows = self._sql("PRAGMA quick_check").fetchall()
        verdicts = [row[0] for row in rows]
        if verdicts != ["ok"]:
            raise StoreCorrupt(self.path, "; ".join(verdicts) or "empty check")

    def _check_schema_version(self) -> None:
        """Stamp fresh stores; refuse resumes across schema versions."""
        row = self._sql(
            "SELECT value FROM meta WHERE key = ?", (_SCHEMA_VERSION_KEY,)
        ).fetchone()
        if row is not None:
            found = int(row[0])
            if found != SCHEMA_VERSION:
                raise StoreSchemaMismatch(self.path, found, SCHEMA_VERSION)
            return
        jobs = self._sql("SELECT COUNT(*) FROM jobs").fetchone()[0]
        meta = self._sql("SELECT COUNT(*) FROM meta").fetchone()[0]
        if jobs or meta:
            # Populated, but no version stamp: written before stamping
            # existed — that layout is retroactively version 1.
            raise StoreSchemaMismatch(self.path, 1, SCHEMA_VERSION)
        self._sql(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (_SCHEMA_VERSION_KEY, str(SCHEMA_VERSION)),
        )
        self._commit()

    def _sql(self, query: str, params: tuple = ()):
        """Execute one statement, converting low-level corruption errors
        into the typed :class:`StoreCorrupt`."""
        try:
            return self._conn.execute(query, params)
        except sqlite3.DatabaseError as exc:
            raise StoreCorrupt(self.path, str(exc)) from exc

    def _commit(self) -> None:
        try:
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            raise StoreCorrupt(self.path, str(exc)) from exc

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Force pending writes out — the checkpointed-shutdown hook."""
        self._commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration ---------------------------------------------------

    def register(self, specs: Iterable[JobSpec]) -> None:
        """Record planned jobs; already-known job IDs keep their state.

        Raises :class:`StorePlanMismatch` when the store already holds a
        *different* campaign plan — resuming against the wrong store
        would silently report another campaign's results as completed
        work.  Growing or shrinking the same campaign (the incoming
        plan is a superset or subset of the recorded one) is fine; a
        plan that neither contains nor is contained by the recorded
        jobs is a different campaign.
        """
        specs = list(specs)
        self._guard_plan(specs)
        row = self._sql("SELECT COALESCE(MAX(seq), -1) FROM jobs")
        next_seq = row.fetchone()[0] + 1
        for spec in specs:
            cur = self._sql(
                "INSERT OR IGNORE INTO jobs (job_id, seq, kind, spec, seed,"
                " updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    spec.job_id,
                    next_seq,
                    spec.kind,
                    spec.to_json(),
                    spec.seed,
                    self._clock(),
                ),
            )
            if cur.rowcount:
                next_seq += 1
        registered = [
            r[0] for r in self._sql("SELECT job_id FROM jobs")
        ]
        self._sql(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (_PLAN_HASH_KEY, _plan_hash(registered)),
        )
        self._commit()

    def _guard_plan(self, specs: List[JobSpec]) -> None:
        existing = {
            r[0] for r in self._sql("SELECT job_id FROM jobs")
        }
        if not existing:  # fresh store: nothing to guard against
            return
        incoming = {spec.job_id for spec in specs}
        if existing <= incoming or incoming <= existing:
            return
        row = self._sql(
            "SELECT value FROM meta WHERE key = ?", (_PLAN_HASH_KEY,)
        ).fetchone()
        recorded = row[0] if row is not None else _plan_hash(existing)
        raise StorePlanMismatch(
            f"store {self.path!r} was created for a different campaign "
            f"plan (recorded {recorded[:12]}, current "
            f"{_plan_hash(incoming)[:12]}); pass a fresh --store path or "
            "resume with the original command line"
        )

    # -- state transitions ---------------------------------------------

    def mark_running(self, job_id: str) -> None:
        self._set_status(job_id, RUNNING)

    def record_attempt(
        self,
        job_id: str,
        attempt: int,
        status: str,
        detail: str = "",
        wall_time: Optional[float] = None,
    ) -> None:
        """Log one attempt (success, error, timeout, or crash)."""
        self._sql(
            "INSERT INTO attempts (job_id, attempt, status, detail,"
            " wall_time, at) VALUES (?, ?, ?, ?, ?, ?)",
            (job_id, attempt, status, detail, wall_time, self._clock()),
        )
        self._sql(
            "UPDATE jobs SET attempts = attempts + 1, updated_at = ?"
            " WHERE job_id = ?",
            (self._clock(), job_id),
        )
        self._commit()

    def record_success(
        self, job_id: str, payload: dict, wall_time: Optional[float] = None
    ) -> None:
        self._sql(
            "INSERT OR REPLACE INTO results (job_id, payload) VALUES (?, ?)",
            (job_id, json.dumps(payload)),
        )
        self._sql(
            "UPDATE jobs SET status = ?, wall_time = ?, updated_at = ?"
            " WHERE job_id = ?",
            (DONE, wall_time, self._clock(), job_id),
        )
        self._commit()

    def record_failure(self, job_id: str, detail: str = "") -> None:
        self._sql(
            "UPDATE jobs SET status = ?, updated_at = ? WHERE job_id = ?",
            (FAILED, self._clock(), job_id),
        )
        self._commit()
        del detail  # logged per-attempt via record_attempt

    def _set_status(self, job_id: str, status: str) -> None:
        self._sql(
            "UPDATE jobs SET status = ?, updated_at = ? WHERE job_id = ?",
            (status, self._clock(), job_id),
        )
        self._commit()

    # -- queries --------------------------------------------------------

    def completed_ids(self) -> set:
        rows = self._sql(
            "SELECT job_id FROM jobs WHERE status = ?", (DONE,)
        )
        return {row[0] for row in rows}

    def attempts_of(self, job_id: str) -> int:
        row = self._sql(
            "SELECT attempts FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        return row[0] if row else 0

    def payload(self, job_id: str) -> Optional[dict]:
        row = self._sql(
            "SELECT payload FROM results WHERE job_id = ?", (job_id,)
        ).fetchone()
        return json.loads(row[0]) if row else None

    def payloads(self, kind: Optional[str] = None) -> List[Tuple[JobSpec, dict]]:
        """All completed (spec, payload) pairs in plan order."""
        query = (
            "SELECT jobs.spec, results.payload FROM jobs"
            " JOIN results ON jobs.job_id = results.job_id"
        )
        params: tuple = ()
        if kind is not None:
            query += " WHERE jobs.kind = ?"
            params = (kind,)
        query += " ORDER BY jobs.seq"
        return [
            (JobSpec.from_json(spec), json.loads(payload))
            for spec, payload in self._sql(query, params)
        ]

    def specs(self) -> List[JobSpec]:
        """All registered jobs in plan order."""
        rows = self._sql("SELECT spec FROM jobs ORDER BY seq")
        return [JobSpec.from_json(row[0]) for row in rows]

    def statuses(self) -> Dict[str, str]:
        """job_id -> status for every registered job."""
        rows = self._sql("SELECT job_id, status FROM jobs")
        return {job_id: status for job_id, status in rows}

    def summary(self) -> StoreSummary:
        counts: Dict[str, int] = {}
        for status, count in self._sql(
            "SELECT status, COUNT(*) FROM jobs GROUP BY status"
        ):
            counts[status] = count
        total = sum(counts.values())
        done = counts.get(DONE, 0)
        failed = counts.get(FAILED, 0)
        return StoreSummary(
            total=total,
            done=done,
            failed=failed,
            pending=total - done - failed,
        )
