"""SQLite-backed campaign result store.

One store file = one campaign's durable state: the planned jobs, every
attempt (with status, detail, wall time), and the result payload of
each completed job.  Because job IDs are content-derived
(:class:`~repro.runner.jobs.JobSpec.job_id`), re-planning the same
campaign against an existing store recognises completed work, which is
what powers ``--resume``: only pending and failed jobs are re-queued.

Only the parent (pool) process writes the store — workers ship their
payloads back over a queue — so there is no cross-process SQLite
contention to manage.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.runner.jobs import JobSpec

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id    TEXT PRIMARY KEY,
    seq       INTEGER NOT NULL,
    kind      TEXT NOT NULL,
    spec      TEXT NOT NULL,
    status    TEXT NOT NULL DEFAULT 'pending',
    attempts  INTEGER NOT NULL DEFAULT 0,
    seed      INTEGER,
    wall_time REAL,
    updated_at REAL
);
CREATE TABLE IF NOT EXISTS results (
    job_id  TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS attempts (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id    TEXT NOT NULL,
    attempt   INTEGER NOT NULL,
    status    TEXT NOT NULL,
    detail    TEXT,
    wall_time REAL,
    at        REAL
);
"""

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class StoreSummary:
    """Counts by status, for progress lines and resume banners."""

    total: int
    done: int
    failed: int
    pending: int

    def render(self) -> str:
        return (
            f"{self.done}/{self.total} done, {self.failed} failed, "
            f"{self.pending} pending"
        )


class ResultStore:
    """Durable job/result persistence for one campaign."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration ---------------------------------------------------

    def register(self, specs: Iterable[JobSpec]) -> None:
        """Record planned jobs; already-known job IDs keep their state."""
        row = self._conn.execute("SELECT COALESCE(MAX(seq), -1) FROM jobs")
        next_seq = row.fetchone()[0] + 1
        for spec in specs:
            cur = self._conn.execute(
                "INSERT OR IGNORE INTO jobs (job_id, seq, kind, spec, seed,"
                " updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    spec.job_id,
                    next_seq,
                    spec.kind,
                    spec.to_json(),
                    spec.seed,
                    time.time(),
                ),
            )
            if cur.rowcount:
                next_seq += 1
        self._conn.commit()

    # -- state transitions ---------------------------------------------

    def mark_running(self, job_id: str) -> None:
        self._set_status(job_id, RUNNING)

    def record_attempt(
        self,
        job_id: str,
        attempt: int,
        status: str,
        detail: str = "",
        wall_time: Optional[float] = None,
    ) -> None:
        """Log one attempt (success, error, timeout, or crash)."""
        self._conn.execute(
            "INSERT INTO attempts (job_id, attempt, status, detail,"
            " wall_time, at) VALUES (?, ?, ?, ?, ?, ?)",
            (job_id, attempt, status, detail, wall_time, time.time()),
        )
        self._conn.execute(
            "UPDATE jobs SET attempts = attempts + 1, updated_at = ?"
            " WHERE job_id = ?",
            (time.time(), job_id),
        )
        self._conn.commit()

    def record_success(
        self, job_id: str, payload: dict, wall_time: Optional[float] = None
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO results (job_id, payload) VALUES (?, ?)",
            (job_id, json.dumps(payload)),
        )
        self._conn.execute(
            "UPDATE jobs SET status = ?, wall_time = ?, updated_at = ?"
            " WHERE job_id = ?",
            (DONE, wall_time, time.time(), job_id),
        )
        self._conn.commit()

    def record_failure(self, job_id: str, detail: str = "") -> None:
        self._conn.execute(
            "UPDATE jobs SET status = ?, updated_at = ? WHERE job_id = ?",
            (FAILED, time.time(), job_id),
        )
        self._conn.commit()
        del detail  # logged per-attempt via record_attempt

    def _set_status(self, job_id: str, status: str) -> None:
        self._conn.execute(
            "UPDATE jobs SET status = ?, updated_at = ? WHERE job_id = ?",
            (status, time.time(), job_id),
        )
        self._conn.commit()

    # -- queries --------------------------------------------------------

    def completed_ids(self) -> set:
        rows = self._conn.execute(
            "SELECT job_id FROM jobs WHERE status = ?", (DONE,)
        )
        return {row[0] for row in rows}

    def attempts_of(self, job_id: str) -> int:
        row = self._conn.execute(
            "SELECT attempts FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        return row[0] if row else 0

    def payload(self, job_id: str) -> Optional[dict]:
        row = self._conn.execute(
            "SELECT payload FROM results WHERE job_id = ?", (job_id,)
        ).fetchone()
        return json.loads(row[0]) if row else None

    def payloads(self, kind: Optional[str] = None) -> List[Tuple[JobSpec, dict]]:
        """All completed (spec, payload) pairs in plan order."""
        query = (
            "SELECT jobs.spec, results.payload FROM jobs"
            " JOIN results ON jobs.job_id = results.job_id"
        )
        params: tuple = ()
        if kind is not None:
            query += " WHERE jobs.kind = ?"
            params = (kind,)
        query += " ORDER BY jobs.seq"
        return [
            (JobSpec.from_json(spec), json.loads(payload))
            for spec, payload in self._conn.execute(query, params)
        ]

    def specs(self) -> List[JobSpec]:
        """All registered jobs in plan order."""
        rows = self._conn.execute("SELECT spec FROM jobs ORDER BY seq")
        return [JobSpec.from_json(row[0]) for row in rows]

    def summary(self) -> StoreSummary:
        counts: Dict[str, int] = {}
        for status, count in self._conn.execute(
            "SELECT status, COUNT(*) FROM jobs GROUP BY status"
        ):
            counts[status] = count
        total = sum(counts.values())
        done = counts.get(DONE, 0)
        failed = counts.get(FAILED, 0)
        return StoreSummary(
            total=total,
            done=done,
            failed=failed,
            pending=total - done - failed,
        )
