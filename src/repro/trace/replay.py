"""Replaying a trace against a fresh machine, detecting divergence.

The replayer rebuilds the recorded trial's starting point from scratch
— a fresh testbed at the recorded :class:`~repro.xen.versions.XenVersion`
with the recorded use case's :meth:`prepare` applied — then re-executes
every op record through the same entry points the recorder hooked.

**Strict** replay (the default) is a verifier: after each op it
compares the observed outcome and the digests of every dirtied frame
against the recording, and raises :class:`ReplayDivergence` — op
index, expected vs. actual digest, per-frame diff — the moment the
re-execution departs.  The initial digest is checked before op 0, so a
header edited to a different (valid) Xen version diverges at index -1
instead of producing confusing downstream mismatches.

**Probe** replay (``strict=False``) is the triage minimizer's engine:
comparisons and the machine tap are skipped, per-op failures (e.g. an
op that only makes sense after one the minimizer dropped) are
classified and swallowed, and the caller inspects the terminal state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

from repro.core.testbed import TestBed, build_testbed
from repro.errors import GuestFault
from repro.trace.codec import DecodeContext, decode_value
from repro.trace.format import (
    OP_ATTACH_BLOB,
    OP_CHECKPOINT,
    OP_HYPERCALL,
    OP_PAGE_FAULT,
    OP_RECOVER,
    OP_SCHED_TICK,
    OP_SOFT_IRQ,
    OP_USER_WORK,
    OP_WRITE_WORD,
    TraceData,
    TraceDecodeError,
    TraceError,
    TraceVersionError,
    read_trace,
    run_classified,
)
from repro.trace.recorder import MachineTap
from repro.xen.snapshot import frame_digest, machine_digest
from repro.xen.versions import version_by_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.recovery import RecoveryManager


class ReplayDivergence(TraceError):
    """Replay departed from the recording.

    Carries everything a debugging session needs: where (``op_index``,
    -1 for the pre-op initial state), what was expected vs. observed,
    and a per-frame diff of the digest mismatch.
    """

    def __init__(
        self,
        path: str,
        op_index: int,
        reason: str,
        expected: Any,
        actual: Any,
        diff: Optional[List[str]] = None,
    ):
        self.path = path
        self.op_index = op_index
        self.reason = reason
        self.expected = expected
        self.actual = actual
        self.diff = diff or []
        where = "initial state" if op_index < 0 else f"op {op_index}"
        lines = [f"replay of {path!r} diverged at {where}: {reason}"]
        lines.append(f"  expected: {expected}")
        lines.append(f"  actual:   {actual}")
        lines.extend(f"  {entry}" for entry in self.diff)
        super().__init__("\n".join(lines))


@dataclass
class ReplayOutcome:
    """Terminal state of one replay."""

    path: str
    ops_replayed: int
    crashed: bool
    banner: str
    final_digest: str
    #: True when a strict replay matched the recording end to end.
    faithful: bool
    #: Outcome of each op as observed during replay (probe mode keeps
    #: these so triage can report what the minimized ops did).
    op_outcomes: List[dict] = field(default_factory=list)


def _digest_diff(
    expected: Dict[str, str], actual: Dict[str, str]
) -> List[str]:
    diff: List[str] = []
    for key in sorted(set(expected) | set(actual), key=int):
        want = expected.get(key)
        got = actual.get(key)
        if want == got:
            continue
        if want is None:
            diff.append(f"frame {key}: dirtied on replay but not in recording ({got})")
        elif got is None:
            diff.append(f"frame {key}: dirtied in recording but not on replay ({want})")
        else:
            diff.append(f"frame {key}: recorded {want} != replayed {got}")
    return diff


class TraceReplayer:
    """Drives one trace through a fresh testbed."""

    def __init__(
        self,
        trace: TraceData,
        strict: bool = True,
        testbed_factory: Callable = build_testbed,
        bed_hook: Optional[Callable] = None,
    ):
        self.trace = trace
        self.strict = strict
        self.testbed_factory = testbed_factory
        #: Called with the freshly prepared testbed before any op runs
        #: (the triage re-recorder subscribes to the probe bus here;
        #: checkpoint/recover probes of the lazily created
        #: RecoveryManager fire on the same bus, so no extra hook is
        #: needed for recovery ops).
        self.bed_hook = bed_hook
        self.bed: Optional[TestBed] = None
        self._ctx: Optional[DecodeContext] = None
        self._domains: Dict[int, object] = {}
        self._tap: Optional[MachineTap] = None
        self._recovery: Optional["RecoveryManager"] = None

    # -- setup ----------------------------------------------------------

    def _build(self) -> TestBed:
        header = self.trace.header
        try:
            version = version_by_name(header.get("version", ""))
        except KeyError as exc:
            raise TraceVersionError(
                f"trace {self.trace.path!r} was recorded on Xen "
                f"{header.get('version')!r}, which this build does not ship: {exc}"
            ) from None
        topology_json = header.get("topology", "")
        if topology_json and self.testbed_factory is build_testbed:
            # Cross-domain recordings carry their scenario shape in the
            # header; replay must boot the same shape or the initial
            # digest check would reject a perfectly good trace.
            from repro.core.topology import ScenarioTopology

            bed = build_testbed(
                version, topology=ScenarioTopology.from_json(topology_json)
            )
        else:
            bed = self.testbed_factory(version)
        use_case_name = header.get("use_case", "")
        if use_case_name:
            # Registry lookup covers real XSAs and synthetic corpus ids
            # alike, so traces of synthetic-vulnerability runs replay too.
            from repro.core.injections import resolve

            try:
                use_case_cls = resolve(use_case_name)
            except KeyError:
                raise TraceVersionError(
                    f"trace {self.trace.path!r} needs unknown use case "
                    f"{use_case_name!r}"
                ) from None
            use_case_cls().prepare(bed)
        return bed

    def _remember_domains(self) -> None:
        # Hold every domain ever seen: a recorded op may target a
        # domain that was destroyed (and dropped from xen.domains)
        # earlier in the trial while the script kept its reference.
        assert self.bed is not None
        for domain in self.bed.all_domains():
            self._domains[domain.id] = domain
        for domid, domain in self.bed.xen.domains.items():
            self._domains[domid] = domain

    def _domain(self, domid: int):
        domain = self._domains.get(domid)
        if domain is None:
            raise TraceDecodeError(f"trace references unknown domain d{domid}")
        return domain

    # -- op execution ---------------------------------------------------

    def _execute(self, op: str, data: dict):
        assert self.bed is not None
        bed = self.bed
        ctx = self._ctx
        if op == OP_HYPERCALL:
            domain = self._domain(data["domain"])
            args = [decode_value(a, ctx) for a in data["args"]]
            return bed.xen.hypercall(domain, data["number"], *args)
        if op == OP_PAGE_FAULT:
            domain = self._domain(data["domain"])
            fault = GuestFault(data["va"], data["access"], data["reason"])
            return bed.xen.deliver_page_fault(domain, fault)
        if op == OP_SOFT_IRQ:
            domain = self._domain(data["domain"])
            return bed.xen.software_interrupt(domain, data["vector"])
        if op == OP_SCHED_TICK:
            return bed.xen.scheduler.tick(data.get("ticks", 1))
        if op == OP_USER_WORK:
            domain = self._domain(data["domain"])
            if domain.kernel is None:
                raise TraceDecodeError(
                    f"domain d{data['domain']} has no kernel to run user work"
                )
            return domain.kernel.run_user_work()
        if op == OP_WRITE_WORD:
            value = decode_value(data["value"], ctx)
            return bed.xen.machine.write_word(data["mfn"], data["word"], value)
        if op == OP_ATTACH_BLOB:
            blob = decode_value(data["blob"], ctx)
            return bed.xen.machine.attach_blob(data["mfn"], data["word"], blob)
        if op == OP_CHECKPOINT:
            return self._recovery_manager(data.get("max_reboots", 1)).checkpoint()
        if op == OP_RECOVER:
            manager = self._recovery_manager(1)
            offender_id = data.get("offender")
            offender = None if offender_id is None else self._domain(offender_id)
            return manager.recover(offender=offender)
        raise TraceDecodeError(f"unknown op kind {op!r}")

    def _recovery_manager(self, max_reboots: int) -> "RecoveryManager":
        if self._recovery is None:
            from repro.resilience.recovery import RecoveryManager

            self._recovery = RecoveryManager(self.bed, max_reboots=max_reboots)
        return self._recovery

    # -- the run --------------------------------------------------------

    def run(self) -> ReplayOutcome:
        trace = self.trace
        self.bed = self._build()
        self._ctx = DecodeContext(bed=self.bed)
        self._remember_domains()
        if self.bed_hook is not None:
            self.bed_hook(self.bed)

        if self.strict:
            recorded_initial = trace.header.get("initial", "")
            actual_initial = machine_digest(self.bed.xen.machine)
            if recorded_initial and recorded_initial != actual_initial:
                raise ReplayDivergence(
                    trace.path,
                    -1,
                    "freshly prepared testbed does not match the recording "
                    "(was the trace recorded on a different build?)",
                    recorded_initial,
                    actual_initial,
                )
            self._tap = MachineTap(self.bed.xen.machine)

        op_outcomes: List[dict] = []
        try:
            for record in trace.ops:
                op_outcomes.append(self._replay_one(record))
        finally:
            if self._tap is not None:
                self._tap.detach()
                self._tap = None

        xen = self.bed.xen
        final_digest = machine_digest(xen.machine)
        faithful = self.strict
        if self.strict and trace.end is not None:
            self._check_end(trace, final_digest)
        return ReplayOutcome(
            path=trace.path,
            ops_replayed=len(trace.ops),
            crashed=xen.crashed,
            banner=xen.crash_banner or "",
            final_digest=final_digest,
            faithful=faithful,
            op_outcomes=op_outcomes,
        )

    def _replay_one(self, record: dict) -> dict:
        index = record.get("i", -1)
        op = record.get("op", "")
        data = record.get("data", {})
        self._remember_domains()
        if self._tap is not None:
            self._tap.clear()
        outcome = run_classified(lambda: self._execute(op, data))
        if not self.strict:
            return outcome

        expected_outcome = record.get("outcome", {})
        if outcome != expected_outcome:
            raise ReplayDivergence(
                self.trace.path,
                index,
                f"outcome of {op} differs",
                expected_outcome,
                outcome,
            )
        assert self.bed is not None and self._tap is not None
        machine = self.bed.xen.machine
        actual_digest = {
            str(mfn): frame_digest(machine, mfn)
            for mfn in sorted(self._tap.dirty)
        }
        expected_digest = record.get("digest", {})
        if actual_digest != expected_digest:
            raise ReplayDivergence(
                self.trace.path,
                index,
                f"dirty-frame digest of {op} differs",
                expected_digest,
                actual_digest,
                diff=_digest_diff(expected_digest, actual_digest),
            )
        expected_full = record.get("full")
        if expected_full is not None:
            actual_full = machine_digest(machine)
            if actual_full != expected_full:
                raise ReplayDivergence(
                    self.trace.path,
                    index,
                    f"full machine digest after {op} differs",
                    expected_full,
                    actual_full,
                )
        return outcome

    def _check_end(self, trace: TraceData, final_digest: str) -> None:
        assert self.bed is not None
        end = trace.end or {}
        xen = self.bed.xen
        index = len(trace.ops)
        if bool(end.get("crashed")) != xen.crashed:
            raise ReplayDivergence(
                trace.path,
                index,
                "terminal crash state differs",
                {"crashed": end.get("crashed"), "banner": end.get("banner")},
                {"crashed": xen.crashed, "banner": xen.crash_banner or ""},
            )
        if end.get("crashed") and end.get("banner") != (xen.crash_banner or ""):
            raise ReplayDivergence(
                trace.path,
                index,
                "crash banner differs",
                end.get("banner"),
                xen.crash_banner or "",
            )
        if end.get("final") and end["final"] != final_digest:
            raise ReplayDivergence(
                trace.path,
                index,
                "final machine digest differs",
                end["final"],
                final_digest,
            )


def replay_trace(
    trace: Union[str, TraceData],
    strict: bool = True,
    testbed_factory: Callable = build_testbed,
) -> ReplayOutcome:
    """Replay a trace (by path or pre-parsed) and return its outcome.

    Strict replays raise :class:`ReplayDivergence` on the first
    departure; probe replays (``strict=False``) always run to the end.
    """
    data = read_trace(trace) if isinstance(trace, str) else trace
    return TraceReplayer(data, strict=strict, testbed_factory=testbed_factory).run()
