"""The trace file format: typed, versioned, append-only JSON lines.

A trace is one trial's executable history.  The file layout is a
sequence of JSON objects, one per line, written append-only with a
flush after every record so that a crash (of the worker process, not
the simulated hypervisor) leaves at worst one torn final line:

* line 1 — the **header**: format version, the trial coordinates
  (use case, Xen version, mode, recover flag) and the full machine
  digest at attach time, so a replay can verify its freshly built
  testbed matches the recording before applying a single operation;
* then **op records**: the operation kind, its encoded inputs (see
  :mod:`repro.trace.codec`), the observed outcome, and a digest of
  every machine frame the operation dirtied — with a full machine
  digest folded in periodically and at every recovery boundary;
* finally an **end record**: the trial's terminal outcome (crashed?
  banner?) and the final full machine digest.

Nothing in a trace depends on wall-clock time, process IDs or
scheduling: the same trial recorded serially and under the parallel
runner produces byte-identical files, which is the invariant the chaos
harness checks.

Reading is tolerant exactly where crash-safety demands it: an
undecodable *final* line is a torn write and is dropped (the record it
held was never acknowledged anywhere); an undecodable line anywhere
else means the file was damaged after the fact and raises the typed
:class:`TraceCorrupt`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional

from repro.errors import HypervisorCrash, SimulationError

#: Trace format version; bumped whenever the record layout changes.
TRACE_FORMAT = 1

#: How often (in op records) a full machine digest is embedded, so a
#: replay can fail fast instead of only at the end record.
FULL_DIGEST_EVERY = 25

#: The recognised operation kinds.
OP_HYPERCALL = "hypercall"
OP_PAGE_FAULT = "page_fault"
OP_SOFT_IRQ = "soft_irq"
OP_SCHED_TICK = "sched_tick"
OP_USER_WORK = "user_work"
OP_WRITE_WORD = "write_word"
OP_ATTACH_BLOB = "attach_blob"
OP_CHECKPOINT = "checkpoint"
OP_RECOVER = "recover"

OP_KINDS = (
    OP_HYPERCALL,
    OP_PAGE_FAULT,
    OP_SOFT_IRQ,
    OP_SCHED_TICK,
    OP_USER_WORK,
    OP_WRITE_WORD,
    OP_ATTACH_BLOB,
    OP_CHECKPOINT,
    OP_RECOVER,
)


class TraceError(RuntimeError):
    """Base class for every trace subsystem error."""


class TraceCorrupt(TraceError):
    """A trace file is damaged somewhere other than its final line.

    A torn *final* line is the expected residue of a crashed writer
    and is tolerated; damage anywhere else means the file was modified
    after recording and cannot be trusted as a reproducer.
    """

    def __init__(self, path: str, line_no: int, detail: str):
        self.path = path
        self.line_no = line_no
        self.detail = detail
        super().__init__(
            f"trace {path!r} is corrupt at line {line_no} ({detail}); "
            "only the final line of a trace may be torn"
        )


class TraceVersionError(TraceError):
    """The trace was recorded by an incompatible format or Xen build."""


class TraceDecodeError(TraceError):
    """A recorded value cannot be rebuilt into a live object."""


# ----------------------------------------------------------------------
# Outcome classification (shared by the recorder and the replayer)
# ----------------------------------------------------------------------


def outcome_of_exception(exc: BaseException) -> dict:
    """The recordable outcome of an operation that raised."""
    if isinstance(exc, HypervisorCrash):
        return {"crash": str(exc)}
    return {"error": type(exc).__name__, "detail": str(exc)}


def outcome_of_result(result: object) -> dict:
    """The recordable outcome of an operation that returned."""
    if isinstance(result, bool) or result is None:
        return {"ok": True}
    if isinstance(result, int):
        return {"rc": result}
    outcome = getattr(result, "outcome", None)
    if isinstance(outcome, str):
        return {"outcome": outcome}
    return {"ok": True}


def run_classified(fn) -> dict:
    """Execute ``fn`` and classify what happened, swallowing the
    simulation-level exceptions a replay must survive."""
    try:
        result = fn()
    except SimulationError as exc:
        return outcome_of_exception(exc)
    except TraceDecodeError as exc:
        return {"error": type(exc).__name__, "detail": str(exc)}
    return outcome_of_result(result)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------


class TraceWriter:
    """Append-only, flush-per-record trace emitter."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w")
        self.records_written = 0

    def _write(self, record: dict) -> None:
        if self._handle is None:
            raise TraceError(f"trace writer for {self.path!r} is closed")
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        self.records_written += 1

    def write_header(
        self,
        use_case: str,
        version: str,
        mode: str,
        recover: bool,
        initial_digest: str,
        topology: Optional[str] = None,
    ) -> None:
        """Write the trial-coordinates record.

        ``topology`` is the canonical JSON of a non-default scenario
        topology; the key is omitted entirely for the paper default so
        default-topology traces stay byte-identical to format-1 files
        recorded before topologies existed.
        """
        record = {
            "kind": "header",
            "format": TRACE_FORMAT,
            "use_case": use_case,
            "version": version,
            "mode": mode,
            "recover": recover,
            "initial": initial_digest,
        }
        if topology:
            record["topology"] = topology
        self._write(record)

    def write_op(
        self,
        index: int,
        op: str,
        data: dict,
        outcome: dict,
        digest: Dict[str, str],
        full_digest: Optional[str] = None,
    ) -> None:
        record = {
            "kind": "op",
            "i": index,
            "op": op,
            "data": data,
            "outcome": outcome,
            "digest": digest,
        }
        if full_digest is not None:
            record["full"] = full_digest
        self._write(record)

    def write_end(self, crashed: bool, banner: str, final_digest: str, ops: int) -> None:
        self._write(
            {
                "kind": "end",
                "crashed": crashed,
                "banner": banner,
                "final": final_digest,
                "ops": ops,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------


@dataclass
class TraceData:
    """One parsed trace: header, ops, and (when present) the end record."""

    path: str
    header: dict
    ops: List[dict] = field(default_factory=list)
    end: Optional[dict] = None
    #: True when the final line was torn (undecodable) and dropped.
    torn: bool = False

    @property
    def complete(self) -> bool:
        """Did the recording reach its end record?"""
        return self.end is not None

    @property
    def crash_banner(self) -> Optional[str]:
        """The crash banner this trace reproduces, if it crashes.

        Prefers the end record; falls back to the last crashing op for
        traces torn before finalization.
        """
        if self.end is not None and self.end.get("crashed"):
            return self.end.get("banner", "")
        for op in reversed(self.ops):
            if "crash" in op.get("outcome", {}):
                return op["outcome"]["crash"]
        return None


def read_trace(path: str) -> TraceData:
    """Parse a trace file, tolerating only a torn final line."""
    with open(path) as handle:
        lines = handle.read().splitlines()
    records: List[dict] = []
    torn = False
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if line_no == len(lines):
                torn = True  # a torn final write; the record was never used
                break
            raise TraceCorrupt(path, line_no, f"undecodable line: {exc}") from exc
        if not isinstance(record, dict) or "kind" not in record:
            if line_no == len(lines):
                torn = True
                break
            raise TraceCorrupt(path, line_no, "record is not a trace object")
        records.append(record)

    if not records:
        raise TraceCorrupt(path, 1, "no records (empty trace)")
    header = records[0]
    if header.get("kind") != "header":
        raise TraceCorrupt(path, 1, "first record is not a header")
    fmt = header.get("format")
    if fmt != TRACE_FORMAT:
        raise TraceVersionError(
            f"trace {path!r} uses format {fmt!r}; this build reads format "
            f"{TRACE_FORMAT}"
        )

    ops: List[dict] = []
    end: Optional[dict] = None
    for offset, record in enumerate(records[1:], start=2):
        kind = record.get("kind")
        if kind == "op":
            if end is not None:
                raise TraceCorrupt(path, offset, "op record after the end record")
            ops.append(record)
        elif kind == "end":
            end = record
        else:
            raise TraceCorrupt(path, offset, f"unknown record kind {kind!r}")
    return TraceData(path=path, header=header, ops=ops, end=end, torn=torn)


def trace_filename(
    use_case: str,
    version: str,
    mode: str,
    recover: bool = False,
    topology=None,
) -> str:
    """The deterministic artefact name for one campaign cell's trace.

    A non-default :class:`~repro.core.topology.ScenarioTopology` adds
    its content hash to the stem, so the same cell run under two
    topologies into one ``trace_dir`` never collides; the default
    topology keeps the historical name.
    """
    stem = f"{use_case}_{version}_{mode}" + ("_recover" if recover else "")
    if topology is not None and not topology.is_default:
        stem += f"_t{topology.topology_hash}"
    return stem.replace("/", "-").replace(" ", "-") + ".trace"


def remove_if_exists(path: str) -> None:
    """Best-effort removal of an abandoned trace artefact."""
    if os.path.exists(path):
        os.remove(path)
