"""Encoding recorded operation inputs to JSON and back to live objects.

Hypercall arguments in the simulator are Python values: ints, lists
(including out-parameter buffers), the injector's action enum, the
ABI argument dataclasses, and :class:`~repro.xen.payload.Payload`
blobs standing in for machine code.  A trace must round-trip all of
them through JSON without ambiguity, so every non-primitive value is
wrapped in a marker object ``{"t": <type tag>, ...}``:

===========  ==========================================================
tag          meaning
===========  ==========================================================
``list``     a ``list`` or ``tuple`` (replayed as a fresh ``list``)
``dict``     a mapping, stored as a key/value pair list
``enum``     a registered enum member, by class and value
``struct``   a registered ABI dataclass, by class and field dict
``payload``  a registered payload blob, by class and constructor args
``opaque``   anything unrecognised — recorded lossily for the report;
             decoding raises :class:`TraceDecodeError`
===========  ==========================================================

Opacity is deliberate: a generic :class:`Payload` carrying a live
``action`` callable has no faithful serial form, so the recorder keeps
its repr for humans and the replayer reports honestly that it cannot
rebuild it instead of silently substituting a different object.

Decoding runs against a :class:`DecodeContext` so payloads that need
live testbed resources (the vDSO backdoor holds the simulated
network) are reconstructed wired into the *replay* testbed.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.core.injector import ArbitraryAccessAction
from repro.trace.format import TraceDecodeError
from repro.xen.hypercalls import (
    EventChannelOpArgs,
    ExchangeArgs,
    GrantTableOpArgs,
    MmuExtOp,
    MmuUpdate,
)
from repro.xen.payload import Payload, RootShellPayload, SpinPayload, XenStub

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed


@dataclasses.dataclass
class DecodeContext:
    """Live resources a decoded value may need to attach to."""

    bed: Optional["TestBed"] = None


#: Enums whose members may appear as hypercall arguments.
_ENUMS: Dict[str, Any] = {
    "ArbitraryAccessAction": ArbitraryAccessAction,
}

#: ABI argument dataclasses (field-wise encodable/decodable).
_STRUCTS: Dict[str, Any] = {
    "MmuUpdate": MmuUpdate,
    "MmuExtOp": MmuExtOp,
    "ExchangeArgs": ExchangeArgs,
    "GrantTableOpArgs": GrantTableOpArgs,
    "EventChannelOpArgs": EventChannelOpArgs,
}


def _encode_vdso(payload: object) -> dict:
    return {
        "attacker_host": payload.attacker_host,
        "attacker_port": payload.attacker_port,
    }


def _decode_vdso(args: dict, ctx: DecodeContext) -> object:
    from repro.guest.vdso import VdsoBackdoorPayload

    if ctx.bed is None:
        raise TraceDecodeError(
            "VdsoBackdoorPayload needs a testbed network to rebuild against"
        )
    return VdsoBackdoorPayload(
        network=ctx.bed.network,
        attacker_host=args["attacker_host"],
        attacker_port=args["attacker_port"],
    )


#: Payload classes with a faithful serial form: class name → (encode
#: the constructor arguments, decode them back into a live instance).
_PAYLOADS: Dict[str, Any] = {
    "XenStub": (
        lambda blob: {"name": blob.name},
        lambda args, ctx: XenStub(name=args["name"]),
    ),
    "SpinPayload": (
        lambda blob: {"cpu": blob.cpu},
        lambda args, ctx: SpinPayload(cpu=args["cpu"]),
    ),
    "RootShellPayload": (
        lambda blob: {
            "command_output": blob.command_output,
            "log_path": blob.log_path,
        },
        lambda args, ctx: RootShellPayload(
            command_output=args["command_output"], log_path=args["log_path"]
        ),
    ),
    "VdsoBackdoorPayload": (_encode_vdso, _decode_vdso),
}


def register_payload(
    cls_name: str,
    encode: Callable[[object], dict],
    decode: Callable[[dict, DecodeContext], object],
) -> None:
    """Extension point: teach the codec a new payload class."""
    _PAYLOADS[cls_name] = (encode, decode)


def encode_value(value: Any) -> Any:
    """Encode one operation input into its JSON-safe form.

    Never raises — values with no faithful serial form become
    ``opaque`` markers so recording cannot perturb the trial.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return {"t": "list", "v": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {
            "t": "dict",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    cls_name = type(value).__name__
    if cls_name in _ENUMS and isinstance(value, _ENUMS[cls_name]):
        return {"t": "enum", "cls": cls_name, "v": value.value}
    if cls_name in _STRUCTS and isinstance(value, _STRUCTS[cls_name]):
        fields = {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"t": "struct", "cls": cls_name, "v": fields}
    if cls_name in _PAYLOADS:
        encoder, _ = _PAYLOADS[cls_name]
        return {"t": "payload", "cls": cls_name, "v": encoder(value)}
    if isinstance(value, (Payload, XenStub)):
        # A payload subclass the codec does not know (e.g. one built
        # around a live callable) — keep the repr for the report.
        return {"t": "opaque", "cls": cls_name, "repr": repr(value)}
    return {"t": "opaque", "cls": cls_name, "repr": repr(value)}


def decode_value(encoded: Any, ctx: Optional[DecodeContext] = None) -> Any:
    """Rebuild a live value from its encoded form.

    Raises :class:`TraceDecodeError` for ``opaque`` markers and
    malformed encodings — honest failure beats a wrong replay.
    """
    ctx = ctx or DecodeContext()
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if not isinstance(encoded, dict):
        raise TraceDecodeError(f"unencodable trace value of type {type(encoded).__name__}")
    tag = encoded.get("t")
    if tag == "list":
        return [decode_value(item, ctx) for item in encoded["v"]]
    if tag == "dict":
        return {decode_value(k, ctx): decode_value(v, ctx) for k, v in encoded["v"]}
    if tag == "enum":
        cls = _ENUMS.get(encoded.get("cls", ""))
        if cls is None:
            raise TraceDecodeError(f"unknown enum class {encoded.get('cls')!r}")
        return cls(encoded["v"])
    if tag == "struct":
        cls = _STRUCTS.get(encoded.get("cls", ""))
        if cls is None:
            raise TraceDecodeError(f"unknown struct class {encoded.get('cls')!r}")
        fields = {
            name: decode_value(field_value, ctx)
            for name, field_value in encoded["v"].items()
        }
        return cls(**fields)
    if tag == "payload":
        entry = _PAYLOADS.get(encoded.get("cls", ""))
        if entry is None:
            raise TraceDecodeError(f"unknown payload class {encoded.get('cls')!r}")
        _, decoder = entry
        return decoder(encoded["v"], ctx)
    if tag == "opaque":
        raise TraceDecodeError(
            f"value of class {encoded.get('cls')!r} was recorded opaquely "
            f"({encoded.get('repr')}) and cannot be replayed"
        )
    raise TraceDecodeError(f"unknown trace value tag {tag!r}")
