"""Automatic crash triage: delta-debug a trace to a minimal reproducer.

A crashing trace from a real campaign carries every operation the
trial performed — scheduler ticks, benign setup hypercalls, user work
— of which usually only a handful matter.  The minimizer runs
Zeller-style ddmin over the trace's op list: each candidate subset is
probe-replayed (``strict=False``) against a fresh testbed, and a
subset *reproduces* when the replay ends with the hypervisor crashed
under the recorded banner.

The surviving 1-minimal op subset is then **re-recorded**: the ops are
executed once more on a fresh testbed with a live
:class:`~repro.trace.recorder.TraceRecorder` attached, producing a
standalone, fully replayable artefact (fresh digests, fresh end
record) rather than a filtered copy of the original file.  A filtered
copy would carry digests of frames the dropped ops had touched and
fail strict replay; re-recording restores the invariant that every
trace on disk replays faithfully.

Everything here is deterministic: ddmin's probe order is a function of
the op list alone, so triaging the same trace twice yields
byte-identical minimized artefacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.core.testbed import build_testbed
from repro.trace.format import TraceData, TraceError, read_trace
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import TraceReplayer

#: Probe budget: ddmin on campaign-sized traces converges in far fewer
#: probes; the cap bounds pathological inputs.
DEFAULT_MAX_PROBES = 400


@dataclass
class TriageReport:
    """What the minimizer established about one crashing trace."""

    source_path: str
    minimized_path: str
    banner: str
    original_ops: int
    minimized_ops: int
    probes: int
    final_digest: str
    #: Human-oriented one-liners for each op kept in the reproducer.
    kept: List[str] = field(default_factory=list)
    report_path: Optional[str] = None

    @property
    def reduction(self) -> float:
        """Fraction of ops removed (0.0 when nothing could be dropped)."""
        if self.original_ops == 0:
            return 0.0
        return 1.0 - self.minimized_ops / self.original_ops

    def render(self) -> str:
        lines = [
            "# Trace triage report",
            "",
            f"- source trace: `{self.source_path}` ({self.original_ops} ops)",
            f"- minimal reproducer: `{self.minimized_path}` "
            f"({self.minimized_ops} ops, {self.reduction:.0%} removed)",
            f"- crash banner: `{self.banner}`",
            f"- probe replays spent: {self.probes}",
            f"- reproducer final digest: `{self.final_digest}`",
            "",
            "## Minimal reproducing operations",
            "",
        ]
        lines.extend(f"{index + 1}. {entry}" for index, entry in enumerate(self.kept))
        lines.append("")
        lines.append(
            "Replay the reproducer with "
            f"`repro replay {os.path.basename(self.minimized_path)}`."
        )
        return "\n".join(lines) + "\n"


def _describe_op(record: dict) -> str:
    data = record.get("data", {})
    outcome = record.get("outcome", {})
    return (
        f"op #{record.get('i')}: {record.get('op')} "
        f"{json.dumps(data, sort_keys=True)} -> {json.dumps(outcome, sort_keys=True)}"
    )


def _probe(
    trace: TraceData,
    ops: List[dict],
    banner: str,
    testbed_factory: Callable,
) -> bool:
    """Does this op subset still crash the hypervisor with the banner?"""
    candidate = TraceData(path=trace.path, header=trace.header, ops=ops)
    outcome = TraceReplayer(
        candidate, strict=False, testbed_factory=testbed_factory
    ).run()
    return outcome.crashed and outcome.banner == banner


def _ddmin(
    ops: List[dict],
    test: Callable[[List[dict]], bool],
    max_probes: int,
) -> tuple:
    """Classic ddmin over the op list; returns (minimal subset, probes)."""
    probes = 0
    current = list(ops)
    granularity = 2
    while len(current) >= 2 and probes < max_probes:
        chunk_size = max(1, len(current) // granularity)
        chunks = [
            current[start : start + chunk_size]
            for start in range(0, len(current), chunk_size)
        ]
        reduced = False
        for index, chunk in enumerate(chunks):
            if probes >= max_probes:
                break
            probes += 1
            if test(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
            complement = [
                record
                for other, candidate in enumerate(chunks)
                if other != index
                for record in candidate
            ]
            if complement and len(complement) < len(current):
                probes += 1
                if test(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(granularity * 2, len(current))
    return current, probes


def write_minimized(
    trace: TraceData,
    ops: List[dict],
    out_path: str,
    testbed_factory: Callable = build_testbed,
) -> dict:
    """Re-record an op subset as a standalone replayable trace."""
    candidate = TraceData(path=trace.path, header=trace.header, ops=ops)
    holder: dict = {}

    def attach_recorder(bed) -> None:
        header = trace.header
        recorder = TraceRecorder(
            bed,
            out_path,
            use_case=header.get("use_case", ""),
            version=header.get("version", ""),
            mode=header.get("mode", ""),
            recover=bool(header.get("recover", False)),
        )
        recorder.attach()
        holder["recorder"] = recorder

    replayer = TraceReplayer(
        candidate,
        strict=False,
        testbed_factory=testbed_factory,
        bed_hook=attach_recorder,
    )
    replayer.run()
    return holder["recorder"].finalize()


def minimize_trace(
    trace: Union[str, TraceData],
    out_path: Optional[str] = None,
    report_path: Optional[str] = None,
    testbed_factory: Callable = build_testbed,
    max_probes: int = DEFAULT_MAX_PROBES,
) -> TriageReport:
    """Delta-debug a crashing trace down to a minimal reproducer.

    Writes the minimized trace to ``out_path`` (default:
    ``<trace>.min.trace`` beside the input) and a human-readable
    markdown report to ``report_path`` (default:
    ``<trace>.triage.md``).  Raises :class:`TraceError` when the input
    trace does not crash — there is nothing to triage.
    """
    data = read_trace(trace) if isinstance(trace, str) else trace
    banner = data.crash_banner
    if banner is None:
        raise TraceError(
            f"trace {data.path!r} does not end in a hypervisor crash; "
            "triage minimizes crashing traces only"
        )
    stem = data.path[: -len(".trace")] if data.path.endswith(".trace") else data.path
    out_path = out_path or stem + ".min.trace"
    report_path = report_path or stem + ".triage.md"

    def test(ops: List[dict]) -> bool:
        return _probe(data, ops, banner, testbed_factory)

    if not test(list(data.ops)):
        raise TraceError(
            f"trace {data.path!r} no longer reproduces its recorded crash "
            f"({banner!r}) when probe-replayed; cannot minimize"
        )
    minimal, probes = _ddmin(data.ops, test, max_probes)
    probes += 1  # the initial whole-trace probe above

    summary = write_minimized(data, minimal, out_path, testbed_factory)
    report = TriageReport(
        source_path=data.path,
        minimized_path=out_path,
        banner=banner,
        original_ops=len(data.ops),
        minimized_ops=len(minimal),
        probes=probes,
        final_digest=summary.get("final_digest", ""),
        kept=[_describe_op(record) for record in minimal],
        report_path=report_path,
    )
    with open(report_path, "w") as handle:
        handle.write(report.render())
    return report
