"""Recording a trial: semantic-operation capture via instance hooks.

The recorder attaches to one live :class:`~repro.core.testbed.TestBed`
and intercepts every entry point through which a trial perturbs the
simulated machine:

* :meth:`Xen.hypercall` — the guest→hypervisor gate (arguments are
  encoded *before* dispatch, because buffers are out-parameters the
  handlers mutate in place);
* :meth:`Xen.deliver_page_fault` / :meth:`Xen.software_interrupt` —
  trap delivery, including the double-fault-to-panic path;
* :meth:`Scheduler.tick` and every guest kernel's ``run_user_work`` —
  the scheduler decisions that make deferred effects (vDSO calls)
  happen;
* raw :meth:`Machine.write_word` / :meth:`Machine.attach_blob` calls
  made directly from attack scripts (guest-kernel memory setup);
* :meth:`RecoveryManager.checkpoint` / ``recover`` when a trial runs
  under ``--recover`` (via :meth:`TraceRecorder.attach_recovery`).

Hooks are installed as *instance* attributes over the bound methods, so
detaching is simply deleting the attribute — the class is never
touched, and concurrently running testbeds in the same process are
unaffected.

A depth counter makes recording semantic rather than mechanical: a
hypercall that internally writes a hundred words records as ONE op;
the nested machine writes only feed the dirty-frame set whose digests
the op record carries.  That is what lets the replayer compare state
op-by-op without recording every word.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.trace.codec import encode_value
from repro.trace.format import (
    FULL_DIGEST_EVERY,
    OP_ATTACH_BLOB,
    OP_CHECKPOINT,
    OP_HYPERCALL,
    OP_PAGE_FAULT,
    OP_RECOVER,
    OP_SCHED_TICK,
    OP_SOFT_IRQ,
    OP_USER_WORK,
    OP_WRITE_WORD,
    TraceWriter,
    outcome_of_exception,
    outcome_of_result,
)
from repro.xen.snapshot import frame_digest, machine_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed
    from repro.resilience.recovery import RecoveryManager


class MachineTap:
    """Tracks which machine frames a stretch of execution dirties.

    Used standalone by the replayer; the recorder embeds the same
    bookkeeping in its own hooks.  Patch/unpatch is instance-local.
    """

    def __init__(self, machine):
        self.machine = machine
        self.dirty: Set[int] = set()
        write_word = machine.write_word
        attach_blob = machine.attach_blob
        zero_frame = machine.zero_frame
        copy_frame = machine.copy_frame

        def tapped_write_word(mfn: int, index: int, value: int) -> None:
            self.dirty.add(mfn)
            return write_word(mfn, index, value)

        def tapped_attach_blob(mfn: int, index: int, blob: object) -> None:
            self.dirty.add(mfn)
            return attach_blob(mfn, index, blob)

        def tapped_zero_frame(mfn: int) -> None:
            self.dirty.add(mfn)
            return zero_frame(mfn)

        def tapped_copy_frame(src_mfn: int, dst_mfn: int) -> None:
            self.dirty.add(dst_mfn)
            return copy_frame(src_mfn, dst_mfn)

        machine.write_word = tapped_write_word
        machine.attach_blob = tapped_attach_blob
        machine.zero_frame = tapped_zero_frame
        machine.copy_frame = tapped_copy_frame

    def clear(self) -> None:
        self.dirty = set()

    def detach(self) -> None:
        for name in ("write_word", "attach_blob", "zero_frame", "copy_frame"):
            if name in self.machine.__dict__:
                delattr(self.machine, name)


class TraceRecorder:
    """Records one trial's operations into an append-only trace file."""

    def __init__(
        self,
        bed: "TestBed",
        path: str,
        use_case: str = "",
        version: str = "",
        mode: str = "",
        recover: bool = False,
    ):
        self.bed = bed
        self.path = path
        self.use_case = use_case
        self.version = version or bed.xen.version.name
        self.mode = mode
        self.recover = recover
        self.writer: Optional[TraceWriter] = None
        self.ops_recorded = 0
        self.final_digest: Optional[str] = None
        self._depth = 0
        self._dirty: Set[int] = set()
        self._patched: List[Tuple[object, str]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return bool(self._patched)

    def attach(self) -> "TraceRecorder":
        """Open the trace, write the header, install the hooks."""
        if self.writer is not None:
            raise RuntimeError("recorder already attached")
        self.writer = TraceWriter(self.path)
        self.writer.write_header(
            use_case=self.use_case,
            version=self.version,
            mode=self.mode,
            recover=self.recover,
            initial_digest=machine_digest(self.bed.xen.machine),
        )
        self._hook_machine()
        self._hook_xen()
        self._hook_scheduler()
        self._hook_kernels()
        return self

    def detach(self) -> None:
        """Remove every instance hook; the testbed behaves natively again."""
        for obj, name in reversed(self._patched):
            if name in obj.__dict__:
                delattr(obj, name)
        self._patched = []

    def finalize(self) -> dict:
        """Write the end record and close; returns the artefact summary."""
        self.detach()
        if self.writer is None:
            raise RuntimeError("recorder was never attached")
        xen = self.bed.xen
        self.final_digest = machine_digest(xen.machine)
        self.writer.write_end(
            crashed=xen.crashed,
            banner=xen.crash_banner or "",
            final_digest=self.final_digest,
            ops=self.ops_recorded,
        )
        self.writer.close()
        self.writer = None
        return {
            "file": os.path.basename(self.path),
            "ops": self.ops_recorded,
            "final_digest": self.final_digest,
        }

    def abandon(self) -> None:
        """Detach, close, and delete the (unwanted) trace file."""
        self.detach()
        if self.writer is not None:
            self.writer.close()
            self.writer = None
        if os.path.exists(self.path):
            os.remove(self.path)

    # ------------------------------------------------------------------
    # Hook installation
    # ------------------------------------------------------------------

    def _patch(self, obj: object, name: str, wrapper: Callable) -> None:
        self._patched.append((obj, name))
        setattr(obj, name, wrapper)

    def _hook_machine(self) -> None:
        machine = self.bed.xen.machine
        write_word = machine.write_word
        attach_blob = machine.attach_blob
        zero_frame = machine.zero_frame
        copy_frame = machine.copy_frame

        def hooked_write_word(mfn: int, index: int, value: int) -> None:
            if self._depth:
                self._dirty.add(mfn)
                return write_word(mfn, index, value)
            return self._record(
                OP_WRITE_WORD,
                {"mfn": mfn, "word": index, "value": encode_value(value)},
                lambda: write_word(mfn, index, value),
                pre_dirty=(mfn,),
            )

        def hooked_attach_blob(mfn: int, index: int, blob: object) -> None:
            if self._depth:
                self._dirty.add(mfn)
                return attach_blob(mfn, index, blob)
            return self._record(
                OP_ATTACH_BLOB,
                {"mfn": mfn, "word": index, "blob": encode_value(blob)},
                lambda: attach_blob(mfn, index, blob),
                pre_dirty=(mfn,),
            )

        def hooked_zero_frame(mfn: int) -> None:
            self._dirty.add(mfn)
            return zero_frame(mfn)

        def hooked_copy_frame(src_mfn: int, dst_mfn: int) -> None:
            self._dirty.add(dst_mfn)
            return copy_frame(src_mfn, dst_mfn)

        self._patch(machine, "write_word", hooked_write_word)
        self._patch(machine, "attach_blob", hooked_attach_blob)
        self._patch(machine, "zero_frame", hooked_zero_frame)
        self._patch(machine, "copy_frame", hooked_copy_frame)

    def _hook_xen(self) -> None:
        xen = self.bed.xen
        hypercall = xen.hypercall
        deliver_page_fault = xen.deliver_page_fault
        software_interrupt = xen.software_interrupt

        def hooked_hypercall(domain, number: int, *args) -> int:
            if self._depth:
                return hypercall(domain, number, *args)
            # Encode BEFORE dispatch: read buffers are out-parameters
            # and struct args (ExchangeArgs) mutate during handling.
            data = {
                "domain": domain.id,
                "number": number,
                "args": [encode_value(a) for a in args],
            }
            return self._record(
                OP_HYPERCALL, data, lambda: hypercall(domain, number, *args)
            )

        def hooked_deliver_page_fault(domain, fault) -> None:
            if self._depth:
                return deliver_page_fault(domain, fault)
            data = {
                "domain": domain.id,
                "va": fault.va,
                "access": fault.access,
                "reason": fault.reason,
            }
            return self._record(
                OP_PAGE_FAULT, data, lambda: deliver_page_fault(domain, fault)
            )

        def hooked_software_interrupt(domain, vector: int) -> None:
            if self._depth:
                return software_interrupt(domain, vector)
            data = {"domain": domain.id, "vector": vector}
            return self._record(
                OP_SOFT_IRQ, data, lambda: software_interrupt(domain, vector)
            )

        self._patch(xen, "hypercall", hooked_hypercall)
        self._patch(xen, "deliver_page_fault", hooked_deliver_page_fault)
        self._patch(xen, "software_interrupt", hooked_software_interrupt)

    def _hook_scheduler(self) -> None:
        scheduler = self.bed.xen.scheduler
        tick = scheduler.tick

        def hooked_tick(ticks: int = 1):
            if self._depth:
                return tick(ticks)
            return self._record(OP_SCHED_TICK, {"ticks": ticks}, lambda: tick(ticks))

        self._patch(scheduler, "tick", hooked_tick)

    def _hook_kernels(self) -> None:
        for domain in self.bed.all_domains():
            kernel = domain.kernel
            if kernel is None:
                continue
            self._hook_one_kernel(domain.id, kernel)

    def _hook_one_kernel(self, domain_id: int, kernel) -> None:
        run_user_work = kernel.run_user_work

        def hooked_run_user_work():
            if self._depth:
                return run_user_work()
            return self._record(
                OP_USER_WORK, {"domain": domain_id}, run_user_work
            )

        self._patch(kernel, "run_user_work", hooked_run_user_work)

    def attach_recovery(self, manager: "RecoveryManager") -> None:
        """Also record the microreboot lifecycle of ``manager``.

        Checkpoint and recover records carry *full* machine digests:
        a rollback rewrites frames wholesale (bypassing the write
        hooks), so the dirty-set digest cannot see its footprint.
        """
        checkpoint = manager.checkpoint
        recover = manager.recover

        def hooked_checkpoint():
            if self._depth:
                return checkpoint()
            return self._record(
                OP_CHECKPOINT,
                {"max_reboots": manager.max_reboots},
                checkpoint,
                force_full=True,
            )

        def hooked_recover(offender=None):
            if self._depth:
                return recover(offender)
            data = {"offender": None if offender is None else offender.id}
            return self._record(
                OP_RECOVER, data, lambda: recover(offender), force_full=True
            )

        self._patch(manager, "checkpoint", hooked_checkpoint)
        self._patch(manager, "recover", hooked_recover)

    # ------------------------------------------------------------------
    # The record step
    # ------------------------------------------------------------------

    def _record(
        self,
        op: str,
        data: Dict[str, Any],
        fn: Callable[[], Any],
        pre_dirty: tuple = (),
        force_full: bool = False,
    ):
        self._depth += 1
        self._dirty = set(pre_dirty)
        try:
            try:
                result = fn()
            except SimulationError as exc:
                self._emit(op, data, outcome_of_exception(exc), force_full)
                raise
        finally:
            self._depth -= 1
        self._emit(op, data, outcome_of_result(result), force_full)
        return result

    def _emit(self, op: str, data: dict, outcome: dict, force_full: bool) -> None:
        if self.writer is None:  # detached mid-op (e.g. abandon during crash)
            return
        machine = self.bed.xen.machine
        index = self.ops_recorded
        self.ops_recorded += 1
        digests = {
            str(mfn): frame_digest(machine, mfn) for mfn in sorted(self._dirty)
        }
        full: Optional[str] = None
        if force_full or index % FULL_DIGEST_EVERY == FULL_DIGEST_EVERY - 1:
            full = machine_digest(machine)
        self.writer.write_op(index, op, data, outcome, digests, full)
