"""Recording a trial: semantic-operation capture via the probe bus.

The recorder is a :class:`~repro.probes.bus.ProbeBus` subscriber: it
attaches to one live :class:`~repro.core.testbed.TestBed` and observes
every entry point through which a trial perturbs the simulated machine
(see :mod:`repro.probes.points` for the registry):

* ``hypercall`` — the guest→hypervisor gate (arguments are encoded at
  *enter*, before dispatch, because buffers are out-parameters the
  handlers mutate in place);
* ``page_fault`` / ``soft_irq`` — trap delivery, including the
  double-fault-to-panic path;
* ``sched_tick`` and every guest kernel's ``user_work`` — the
  scheduler decisions that make deferred effects (vDSO calls) happen;
* raw ``write_word`` / ``attach_blob`` probes fired by calls made
  directly from attack scripts (guest-kernel memory setup);
* ``checkpoint`` / ``recover`` when a trial runs a
  :class:`~repro.resilience.recovery.RecoveryManager` — these records
  carry *full* machine digests, because a rollback rewrites frames
  wholesale (bypassing the machine's write probes) and the dirty-set
  digest cannot see its footprint.

Attachment is all-or-nothing: the batch subscribe either installs
every subscription or none (:meth:`ProbeBus.attach`), and a failure
while opening the trace deletes the partial file.  Detaching is one
:meth:`~repro.probes.bus.Attachment.detach` — no instance attribute
of any simulator object is ever touched (staticcheck rule R6 keeps it
that way), and concurrently running testbeds in the same process are
unaffected because the bus is per-machine.

An operation-frame stack makes recording semantic rather than
mechanical: a hypercall that internally writes a hundred words records
as ONE op; the nested machine-write probes only feed the dirty-frame
set whose digests the op record carries.  That is what lets the
replayer compare state op-by-op without recording every word.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.probes import points as P
from repro.probes.bus import Attachment
from repro.trace.codec import encode_value
from repro.trace.format import (
    FULL_DIGEST_EVERY,
    OP_ATTACH_BLOB,
    OP_CHECKPOINT,
    OP_HYPERCALL,
    OP_PAGE_FAULT,
    OP_RECOVER,
    OP_SCHED_TICK,
    OP_SOFT_IRQ,
    OP_USER_WORK,
    OP_WRITE_WORD,
    TraceWriter,
    outcome_of_exception,
    outcome_of_result,
)
from repro.xen.snapshot import frame_digest, machine_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed


class MachineTap:
    """Tracks which machine frames a stretch of execution dirties.

    Used standalone by the replayer; the recorder embeds the same
    bookkeeping in its own subscriber.  Subscribes to the machine's
    four mutation probes; ``detach`` removes the whole batch.
    """

    def __init__(self, machine):
        self.machine = machine
        self.dirty: Set[int] = set()
        self._attachment = machine.probes.attach(
            [
                (P.WRITE_WORD, self),
                (P.ATTACH_BLOB, self),
                (P.ZERO_FRAME, self),
                (P.COPY_FRAME, self),
            ]
        )

    def op_enter(self, name: str, args: Tuple[Any, ...]) -> None:
        self.dirty.add(args[1] if name == P.COPY_FRAME else args[0])

    def op_exit(self, name, args, result, exc) -> None:
        pass

    def clear(self) -> None:
        self.dirty = set()

    def detach(self) -> None:
        self._attachment.detach()


#: Which op points the recorder subscribes, and the trace op code each
#: one records as.  ``zero_frame``/``copy_frame`` are subscribed too
#: but never produce records — they only feed the dirty set.
_OP_CODES = {
    P.HYPERCALL: OP_HYPERCALL,
    P.PAGE_FAULT: OP_PAGE_FAULT,
    P.SOFT_IRQ: OP_SOFT_IRQ,
    P.SCHED_TICK: OP_SCHED_TICK,
    P.USER_WORK: OP_USER_WORK,
    P.WRITE_WORD: OP_WRITE_WORD,
    P.ATTACH_BLOB: OP_ATTACH_BLOB,
    P.CHECKPOINT: OP_CHECKPOINT,
    P.RECOVER: OP_RECOVER,
}

#: Stack sentinel for probe enters that do not open an op record
#: (nested ops, and the dirty-only frame mutations).
_PASSTHROUGH = None


class TraceRecorder:
    """Records one trial's operations into an append-only trace file."""

    def __init__(
        self,
        bed: "TestBed",
        path: str,
        use_case: str = "",
        version: str = "",
        mode: str = "",
        recover: bool = False,
        topology=None,
    ):
        self.bed = bed
        self.path = path
        self.use_case = use_case
        self.version = version or bed.xen.version.name
        self.mode = mode
        self.recover = recover
        #: Scenario topology recorded in the header; defaults to the
        #: bed's own (``None`` → take it from the testbed).
        self.topology = topology if topology is not None else bed.topology
        self.writer: Optional[TraceWriter] = None
        self.ops_recorded = 0
        self.final_digest: Optional[str] = None
        self._depth = 0
        self._dirty: Set[int] = set()
        #: One entry per in-flight probed op: either ``_PASSTHROUGH``
        #: or ``(op_code, data, force_full)`` for a recording frame.
        self._stack: List[Optional[Tuple[str, dict, bool]]] = []
        self._attachment: Optional[Attachment] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._attachment is not None

    def attach(self) -> "TraceRecorder":
        """Open the trace, write the header, subscribe to the bus.

        All-or-nothing: if the header write or the batch subscribe
        fails, nothing stays installed and the partial file is
        deleted.
        """
        if self.writer is not None:
            raise RuntimeError("recorder already attached")
        self.writer = TraceWriter(self.path)
        try:
            self.writer.write_header(
                use_case=self.use_case,
                version=self.version,
                mode=self.mode,
                recover=self.recover,
                initial_digest=machine_digest(self.bed.xen.machine),
                topology=(
                    None
                    if self.topology.is_default
                    else self.topology.canonical_json()
                ),
            )
            self._attachment = self.bed.xen.probes.attach(
                [
                    (P.WRITE_WORD, self),
                    (P.ATTACH_BLOB, self),
                    (P.ZERO_FRAME, self),
                    (P.COPY_FRAME, self),
                    (P.HYPERCALL, self),
                    (P.PAGE_FAULT, self),
                    (P.SOFT_IRQ, self),
                    (P.SCHED_TICK, self),
                    (P.USER_WORK, self),
                    (P.CHECKPOINT, self),
                    (P.RECOVER, self),
                ]
            )
        except BaseException:
            self.writer.close()
            self.writer = None
            if os.path.exists(self.path):
                os.remove(self.path)
            raise
        return self

    def detach(self) -> None:
        """Unsubscribe; the testbed behaves natively again."""
        if self._attachment is not None:
            self._attachment.detach()
            self._attachment = None

    def finalize(self) -> dict:
        """Write the end record and close; returns the artefact summary."""
        self.detach()
        if self.writer is None:
            raise RuntimeError("recorder was never attached")
        xen = self.bed.xen
        self.final_digest = machine_digest(xen.machine)
        self.writer.write_end(
            crashed=xen.crashed,
            banner=xen.crash_banner or "",
            final_digest=self.final_digest,
            ops=self.ops_recorded,
        )
        self.writer.close()
        self.writer = None
        return {
            "file": os.path.basename(self.path),
            "ops": self.ops_recorded,
            "final_digest": self.final_digest,
        }

    def abandon(self) -> None:
        """Detach, close, and delete the (unwanted) trace file."""
        self.detach()
        if self.writer is not None:
            self.writer.close()
            self.writer = None
        if os.path.exists(self.path):
            os.remove(self.path)

    # ------------------------------------------------------------------
    # Probe subscriber
    # ------------------------------------------------------------------

    def op_enter(self, name: str, args: Tuple[Any, ...]) -> None:
        if name == P.ZERO_FRAME:
            self._dirty.add(args[0])
            self._stack.append(_PASSTHROUGH)
            return
        if name == P.COPY_FRAME:
            self._dirty.add(args[1])
            self._stack.append(_PASSTHROUGH)
            return
        if self._depth:
            # Nested inside a recorded op: machine mutations feed the
            # enclosing op's dirty set, everything else passes through.
            if name == P.WRITE_WORD or name == P.ATTACH_BLOB:
                self._dirty.add(args[0])
            self._stack.append(_PASSTHROUGH)
            return
        op, data, pre_dirty, force_full = self._describe(name, args)
        self._depth += 1
        self._dirty = set(pre_dirty)
        self._stack.append((op, data, force_full))

    def op_exit(
        self,
        name: str,
        args: Tuple[Any, ...],
        result: Any,
        exc: Optional[BaseException],
    ) -> None:
        frame = self._stack.pop() if self._stack else _PASSTHROUGH
        if frame is _PASSTHROUGH:
            return
        self._depth -= 1
        op, data, force_full = frame
        if exc is None:
            self._emit(op, data, outcome_of_result(result), force_full)
        elif isinstance(exc, SimulationError):
            self._emit(op, data, outcome_of_exception(exc), force_full)
        # Non-simulation exceptions (harness bugs, interrupts) abort
        # the op without a record, exactly as before the refactor.

    def _describe(self, name: str, args: Tuple[Any, ...]):
        """Build the op record for a top-level probe enter.

        Runs at *enter* time: hypercall buffers are out-parameters and
        struct args (ExchangeArgs) mutate during handling, so encoding
        after dispatch would capture the wrong values.
        """
        if name == P.HYPERCALL:
            domain, number, hargs = args
            data = {
                "domain": domain.id,
                "number": number,
                "args": [encode_value(a) for a in hargs],
            }
            return OP_HYPERCALL, data, (), False
        if name == P.WRITE_WORD:
            mfn, index, value = args
            data = {"mfn": mfn, "word": index, "value": encode_value(value)}
            return OP_WRITE_WORD, data, (mfn,), False
        if name == P.ATTACH_BLOB:
            mfn, index, blob = args
            data = {"mfn": mfn, "word": index, "blob": encode_value(blob)}
            return OP_ATTACH_BLOB, data, (mfn,), False
        if name == P.PAGE_FAULT:
            domain, fault = args
            data = {
                "domain": domain.id,
                "va": fault.va,
                "access": fault.access,
                "reason": fault.reason,
            }
            return OP_PAGE_FAULT, data, (), False
        if name == P.SOFT_IRQ:
            domain, vector = args
            return OP_SOFT_IRQ, {"domain": domain.id, "vector": vector}, (), False
        if name == P.SCHED_TICK:
            return OP_SCHED_TICK, {"ticks": args[0]}, (), False
        if name == P.USER_WORK:
            return OP_USER_WORK, {"domain": args[0]}, (), False
        if name == P.CHECKPOINT:
            (manager,) = args
            data = {"max_reboots": manager.max_reboots}
            return OP_CHECKPOINT, data, (), True
        if name == P.RECOVER:
            _manager, offender = args
            data = {"offender": None if offender is None else offender.id}
            return OP_RECOVER, data, (), True
        raise RuntimeError(f"recorder subscribed to unexpected point {name!r}")

    # ------------------------------------------------------------------
    # The emit step
    # ------------------------------------------------------------------

    def _emit(self, op: str, data: dict, outcome: dict, force_full: bool) -> None:
        if self.writer is None:  # detached mid-op (e.g. abandon during crash)
            return
        machine = self.bed.xen.machine
        index = self.ops_recorded
        self.ops_recorded += 1
        digests = {
            str(mfn): frame_digest(machine, mfn) for mfn in sorted(self._dirty)
        }
        full: Optional[str] = None
        if force_full or index % FULL_DIGEST_EVERY == FULL_DIGEST_EVERY - 1:
            full = machine_digest(machine)
        self.writer.write_op(index, op, data, outcome, digests, full)


#: Re-exported for introspection/tests: the op-code mapping is part of
#: the recorder's contract with the replayer.
OP_CODES_BY_POINT: Dict[str, str] = dict(_OP_CODES)
