"""repro.trace — deterministic record/replay with divergence detection.

The robustness backbone the campaign machinery plugs into:

* :class:`TraceRecorder` hooks a live testbed and appends typed,
  versioned records (with machine-state digests) to a crash-safe
  append-only trace file;
* :func:`replay_trace` re-executes a trace against a fresh machine and
  raises :class:`ReplayDivergence` the moment it departs;
* :func:`minimize_trace` delta-debugs a crashing trace to a minimal
  standalone reproducer plus a human-readable triage report.
"""

from repro.trace.codec import DecodeContext, decode_value, encode_value, register_payload
from repro.trace.format import (
    TRACE_FORMAT,
    TraceCorrupt,
    TraceData,
    TraceDecodeError,
    TraceError,
    TraceVersionError,
    TraceWriter,
    read_trace,
    trace_filename,
)
from repro.trace.recorder import MachineTap, TraceRecorder
from repro.trace.replay import (
    ReplayDivergence,
    ReplayOutcome,
    TraceReplayer,
    replay_trace,
)
from repro.trace.triage import TriageReport, minimize_trace

__all__ = [
    "TRACE_FORMAT",
    "DecodeContext",
    "MachineTap",
    "ReplayDivergence",
    "ReplayOutcome",
    "TraceCorrupt",
    "TraceData",
    "TraceDecodeError",
    "TraceError",
    "TraceRecorder",
    "TraceReplayer",
    "TraceVersionError",
    "TraceWriter",
    "TriageReport",
    "decode_value",
    "encode_value",
    "minimize_trace",
    "read_trace",
    "register_payload",
    "replay_trace",
    "trace_filename",
]
