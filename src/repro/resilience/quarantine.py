"""Poison-job quarantine and the worker-death circuit breaker.

Two small, deterministic guards the hardened :class:`WorkerPool` uses
to keep infrastructure faults from burning the whole campaign:

* :class:`PoisonTracker` — a job that repeatedly kills its worker
  (crash, SIGKILL, heartbeat loss) is *poisonous*: retrying it forever
  burns the retry budget and a fresh worker per attempt.  After
  ``threshold`` worker deaths attributable to one job, the tracker
  quarantines it — the job fails with a recorded verdict instead of
  being re-dispatched.
* :class:`CircuitBreaker` — worker deaths that are *not* attributable
  to a single job (the machine is swapping, the container is dying)
  show up as consecutive deaths across jobs.  After ``threshold``
  consecutive deaths with no intervening success, the breaker opens
  and the pool halts dispatch, failing the remaining jobs with an
  explicit verdict so a later ``--resume`` can pick them back up.

Both are plain counters — no clocks, no randomness — so chaos runs
replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class QuarantineVerdict:
    """Why a job was quarantined, for events and the result store."""

    job_id: str
    deaths: int
    threshold: int

    def render(self) -> str:
        return (
            f"quarantined: job killed {self.deaths} workers "
            f"(threshold {self.threshold})"
        )


@dataclass
class PoisonTracker:
    """Counts worker deaths per job and quarantines repeat offenders."""

    #: Worker deaths attributable to one job before it is quarantined.
    threshold: int = 3
    _deaths: Dict[str, int] = field(default_factory=dict)
    _quarantined: Dict[str, QuarantineVerdict] = field(default_factory=dict)

    def record_death(self, job_id: str) -> Optional[QuarantineVerdict]:
        """Attribute one worker death to ``job_id``.

        Returns the quarantine verdict when this death crosses the
        threshold (exactly once per job), ``None`` otherwise.
        """
        count = self._deaths.get(job_id, 0) + 1
        self._deaths[job_id] = count
        if count >= self.threshold and job_id not in self._quarantined:
            verdict = QuarantineVerdict(
                job_id=job_id, deaths=count, threshold=self.threshold
            )
            self._quarantined[job_id] = verdict
            return verdict
        return None

    def deaths_of(self, job_id: str) -> int:
        return self._deaths.get(job_id, 0)

    def is_quarantined(self, job_id: str) -> bool:
        return job_id in self._quarantined

    def verdicts(self) -> List[QuarantineVerdict]:
        """All quarantine verdicts, in quarantine order."""
        return list(self._quarantined.values())


@dataclass
class CircuitBreaker:
    """Opens after ``threshold`` consecutive worker deaths."""

    #: Consecutive worker deaths (no success in between) before dispatch halts.
    threshold: int = 8
    consecutive: int = 0
    opened: bool = False

    def record_death(self) -> bool:
        """Record one worker death; returns True when this opens the breaker."""
        self.consecutive += 1
        if not self.opened and self.consecutive >= self.threshold:
            self.opened = True
            return True
        return False

    def record_success(self) -> None:
        """Any completed job proves workers can live; close the window."""
        self.consecutive = 0

    def render(self) -> str:
        return (
            f"circuit breaker open after {self.consecutive} consecutive "
            "worker deaths"
        )
