"""``repro.resilience`` — recover from faults in the system *and* the tooling.

The paper's thesis is that a system's worth shows in how it behaves
*after* an erroneous state lands.  This package applies that standard
to the reproduction itself, on two layers:

* **Simulator layer** (:mod:`~repro.resilience.recovery`,
  :mod:`~repro.resilience.watchdog`): ReHype-style microreboot of the
  simulated hypervisor after a :class:`~repro.errors.HypervisorCrash`
  — checkpoint, rollback, quarantine the offender, re-validate — so a
  crash becomes a *crash-then-recovered* / *crash-unrecoverable*
  campaign outcome instead of the end of the trial (``--recover``).
* **Runner layer** (:mod:`~repro.resilience.quarantine`,
  :mod:`~repro.resilience.chaos`): deterministic infrastructure fault
  injection against the campaign runner — worker SIGKILL, hangs,
  duplicated/delayed messages, store tear, SIGINT — asserting the
  invariant *serial == parallel == chaos-parallel* on final store
  contents (``repro chaos``).

:mod:`~repro.resilience.chaos` is intentionally not imported here: it
wraps :mod:`repro.runner.pool`, which itself imports the quarantine
guards from this package — import it as a submodule.
"""

from repro.resilience.quarantine import (
    CircuitBreaker,
    PoisonTracker,
    QuarantineVerdict,
)
from repro.resilience.recovery import (
    DEGRADED,
    OUTCOME_CLASSES,
    RECOVERED,
    UNRECOVERABLE,
    HypervisorCheckpoint,
    RecoveryManager,
    RecoveryReport,
    frame_type_census,
)
from repro.resilience.watchdog import CrashWatchdog, WatchdogVerdict

__all__ = [
    "DEGRADED",
    "OUTCOME_CLASSES",
    "RECOVERED",
    "UNRECOVERABLE",
    "CircuitBreaker",
    "CrashWatchdog",
    "HypervisorCheckpoint",
    "PoisonTracker",
    "QuarantineVerdict",
    "RecoveryManager",
    "RecoveryReport",
    "WatchdogVerdict",
    "frame_type_census",
]
