"""Deterministic infrastructure fault injection for the campaign runner.

The runner promises that a campaign's durable results do not depend on
*how* it executed: serial, parallel, crashed-and-resumed — the final
store contents are identical.  This module turns that promise into a
checkable invariant by running campaigns under seeded infrastructure
faults:

* **worker kill** — the worker SIGKILLs itself mid-job (a simulated
  OOM kill or hypervisor panic taking the process down);
* **worker hang** — the job wedges until the pool's timeout fires;
* **message duplication** — a result is delivered twice (at-least-once
  queue semantics);
* **message delay** — a result is delivered late;
* **store tear** — the SQLite store file is truncated between
  episodes (a torn write at the worst moment), recovered from the
  last good copy;
* **interruption** — SIGINT/SIGTERM between episodes (exercised by
  the test-suite's subprocess driver rather than in-process, so the
  harness itself never races a stray signal);
* **snapshot corruption** (fork-server mode) — a cached
  :class:`~repro.core.checkpoint.TestbedCheckpoint`'s snapshot bytes
  are flipped before a restore, so the digest check must catch the
  rot and the trial must cold-boot to the identical result;
* **restore wedge** (fork-server mode) — a restore stalls until the
  pool's batch-progress timeout kills the worker.

Fork-server faults are selected with ``pool_mode="fork-server"`` in
:func:`run_chaos_campaign`; the invariant is then three-way — serial,
chaos spawn-pool and chaos fork-server executions must all leave the
same store bytes.

Every fault decision is a pure function of ``(seed, episode, job)`` —
no global RNG state — so a chaos run is exactly replayable.
:func:`run_chaos_campaign` drives episodes (run, maybe tear, resume)
until the store is complete, then asserts the invariant:
*serial == chaos-parallel*, byte for byte, through the same
from-store report rendering the real campaign artefacts use.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import signal
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.forkserver import ForkServerPool, execute_job_cached
from repro.runner.jobs import CAMPAIGN_RUN, JobSpec, execute_job
from repro.runner.pool import JobFn, SerialRunner, WorkerPool
from repro.runner.store import ResultStore, StoreCorrupt


def chaos_roll(seed: int, episode: int, salt: str, key: str) -> float:
    """A deterministic uniform draw in [0, 1) for one fault decision."""
    blob = f"{seed}:{episode}:{salt}:{key}".encode("ascii")
    digest = hashlib.sha1(blob).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded fault-injection configuration for one chaos campaign."""

    seed: int
    #: Probability a job's first attempt SIGKILLs its worker.
    kill_rate: float = 0.25
    #: Probability a job's first attempt hangs until the pool timeout.
    hang_rate: float = 0.1
    #: Probability a result message is delivered twice.
    dup_rate: float = 0.2
    #: Probability a result message is delayed before delivery.
    delay_rate: float = 0.2
    #: Probability the store file is torn between incomplete episodes.
    tear_rate: float = 0.4
    #: How long a hanging job sleeps (must exceed the pool timeout).
    hang_seconds: float = 30.0
    #: Upper bound on an injected message delay, seconds.
    max_delay: float = 0.05
    #: Probability a cached snapshot's bytes are corrupted before a
    #: restore (fork-server mode; exercises digest verification and
    #: the cold-boot fallback).
    corrupt_rate: float = 0.0
    #: Probability a cached restore wedges until the batch-progress
    #: timeout fires (fork-server mode).
    wedge_rate: float = 0.0

    def kills(self, episode: int, job_id: str) -> bool:
        return chaos_roll(self.seed, episode, "kill", job_id) < self.kill_rate

    def hangs(self, episode: int, job_id: str) -> bool:
        if self.kills(episode, job_id):
            return False  # the kill fires first; don't double-charge
        return chaos_roll(self.seed, episode, "hang", job_id) < self.hang_rate

    def duplicates(self, episode: int, job_id: str) -> bool:
        return chaos_roll(self.seed, episode, "dup", job_id) < self.dup_rate

    def delays(self, episode: int, job_id: str) -> float:
        """Injected delivery delay in seconds (0.0 = deliver on time)."""
        if chaos_roll(self.seed, episode, "delay", job_id) >= self.delay_rate:
            return 0.0
        return self.max_delay * chaos_roll(
            self.seed, episode, "delay-len", job_id
        )

    def tears(self, episode: int) -> bool:
        return chaos_roll(self.seed, episode, "tear", "store") < self.tear_rate

    def corrupts(self, episode: int, job_id: str) -> bool:
        return (
            chaos_roll(self.seed, episode, "corrupt", job_id)
            < self.corrupt_rate
        )

    def wedges(self, episode: int, job_id: str) -> bool:
        if self.corrupts(episode, job_id):
            return False  # the corruption fires first; don't double-charge
        return chaos_roll(self.seed, episode, "wedge", job_id) < self.wedge_rate


@dataclass
class ChaosJobFn:
    """Worker-side fault injector wrapping the real job function.

    A plain picklable dataclass: it crosses the ``spawn`` boundary as
    a :class:`~repro.runner.pool.WorkerPool` ``job_fn``.  Faults fire
    only on attempt 0, so the runner's own retry machinery (not the
    harness) is what brings the job home.
    """

    plan: ChaosPlan
    episode: int = 1
    job_fn: JobFn = execute_job

    def __call__(self, spec: JobSpec, attempt: int) -> dict:
        if attempt == 0:
            if self.plan.kills(self.episode, spec.job_id):
                os.kill(os.getpid(), signal.SIGKILL)
            if self.plan.hangs(self.episode, spec.job_id):
                time.sleep(self.plan.hang_seconds)
        return self.job_fn(spec, attempt)


class ChaosOutbox:
    """Result-channel wrapper injecting delivery delays and duplicates.

    Wraps a worker's private result channel (see
    :class:`~repro.runner.pool.WorkerPool`'s per-worker transport).
    Delays are *time-only* — the message order within a worker's pipe
    is untouched, because the parent drops results whose job does not
    match the worker's current assignment (at-least-once delivery is
    safe; reordering across assignments is not a fault this transport
    can exhibit).  Duplicates exercise exactly that drop path.
    """

    def __init__(self, inner, plan: ChaosPlan, episode: int = 1):
        self._inner = inner
        self._plan = plan
        self._episode = episode

    def put(self, message) -> None:
        job_id = message[1]
        delay = self._plan.delays(self._episode, job_id)
        if delay:
            time.sleep(delay)
        self._inner.put(message)
        if self._plan.duplicates(self._episode, job_id):
            self._inner.put(message)


class ChaosPool(WorkerPool):
    """A :class:`WorkerPool` whose workers and transport misbehave."""

    def __init__(
        self,
        plan: ChaosPlan,
        episode: int = 1,
        base_job_fn: JobFn = execute_job,
        **kwargs,
    ):
        kwargs.setdefault(
            "job_fn", ChaosJobFn(plan=plan, episode=episode, job_fn=base_job_fn)
        )
        super().__init__(**kwargs)
        self.plan = plan
        self.episode = episode

    def _wrap_outbox(self, channel):
        return ChaosOutbox(channel, self.plan, self.episode)


@dataclass
class ForkChaos:
    """Worker-side snapshot-cache fault injector (fork-server mode).

    A picklable dataclass handed to workers through
    :meth:`~repro.runner.forkserver.ForkServerPool._restore_chaos`; it
    runs immediately before each cached checkpoint restore.  Faults
    fire on first attempts only, like :class:`ChaosJobFn`'s:

    * **corrupt** — flip one word of the cached snapshot's frame
      bytes.  The restore writes the rotten word into the machine, the
      digest check catches it, the entry is evicted and the trial
      cold-boots: the result must come out identical anyway.
    * **wedge** — stall the restore past the pool's batch-progress
      timeout; the worker is killed and the job retried elsewhere.
    """

    plan: ChaosPlan
    episode: int = 1

    def before_restore(self, entry, job_id: str, attempt: int) -> None:
        if attempt != 0:
            return
        if self.plan.corrupts(self.episode, job_id):
            frames = entry.checkpoint.snapshot._frames  # noqa: SLF001
            mfn = min(frames)
            word = int(
                chaos_roll(self.plan.seed, self.episode, "corrupt-word", job_id)
                * len(frames[mfn])
            )
            frames[mfn][word] ^= type(frames[mfn][word])(0x1)
        elif self.plan.wedges(self.episode, job_id):
            time.sleep(self.plan.hang_seconds)


class ChaosForkPool(ForkServerPool):
    """A :class:`ForkServerPool` under the full chaos fault set.

    Workers still get killed and hung mid-batch through
    :class:`ChaosJobFn` and the transport still duplicates and delays
    through :class:`ChaosOutbox`; on top, the snapshot cache itself
    misbehaves through :class:`ForkChaos`.
    """

    def __init__(
        self,
        plan: ChaosPlan,
        episode: int = 1,
        base_job_fn: JobFn = execute_job_cached,
        **kwargs,
    ):
        kwargs.setdefault(
            "job_fn", ChaosJobFn(plan=plan, episode=episode, job_fn=base_job_fn)
        )
        super().__init__(**kwargs)
        self.plan = plan
        self.episode = episode

    def _wrap_outbox(self, channel):
        return ChaosOutbox(channel, self.plan, self.episode)

    def _restore_chaos(self):
        return ForkChaos(plan=self.plan, episode=self.episode)


# ----------------------------------------------------------------------
# Store tear/restore helpers
# ----------------------------------------------------------------------


def tear_file(path: str, keep_fraction: float = 0.6) -> int:
    """Truncate a file to simulate a torn write; returns bytes dropped."""
    size = os.path.getsize(path)
    keep = max(1, int(size * keep_fraction))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return size - keep


def _open_store_restoring(path: str, good_copy: str) -> tuple:
    """Open the store, falling back to the last good copy if torn.

    Returns ``(store, restored)`` — ``restored`` is True when the
    typed :class:`StoreCorrupt` fired and the good copy was used.
    """
    try:
        return ResultStore(path), False
    except StoreCorrupt:
        if not os.path.exists(good_copy):
            raise
        shutil.copyfile(good_copy, path)
        return ResultStore(path), True


# ----------------------------------------------------------------------
# The invariant driver
# ----------------------------------------------------------------------


@dataclass
class ChaosReport:
    """What one chaos campaign did, and whether the invariant held."""

    seed: int
    total_jobs: int
    episodes: int = 0
    #: Fault counters: kills scheduled, tears applied, tears recovered.
    faults: Dict[str, int] = field(default_factory=dict)
    #: Did the chaos store match the serial reference byte-for-byte
    #: (and, when traces were recorded, the trace artefacts too)?
    identical: bool = False
    serial_json: str = ""
    chaos_json: str = ""
    #: Trace files compared between the serial and chaos directories
    #: (0 when the campaign ran without ``trace_dir``).
    traces_compared: int = 0
    #: Human-readable descriptions of trace artefact divergences.
    trace_mismatches: List[str] = field(default_factory=list)

    def render(self) -> str:
        verdict = "IDENTICAL" if self.identical else "DIVERGED"
        fault_text = ", ".join(
            f"{name}={count}" for name, count in sorted(self.faults.items())
        ) or "none"
        line = (
            f"chaos seed {self.seed}: {self.total_jobs} jobs over "
            f"{self.episodes} episode(s), faults [{fault_text}] -> "
            f"store vs serial: {verdict}"
        )
        if self.traces_compared or self.trace_mismatches:
            trace_verdict = (
                "byte-identical"
                if not self.trace_mismatches
                else f"{len(self.trace_mismatches)} mismatch(es)"
            )
            line += (
                f"\nchaos seed {self.seed}: {self.traces_compared} trace "
                f"artefact(s) vs serial: {trace_verdict}"
            )
            for mismatch in self.trace_mismatches:
                line += f"\n  trace divergence: {mismatch}"
        return line


def _store_fingerprint(store: ResultStore, specs: Sequence[JobSpec]) -> str:
    """The comparable artefact for a completed store.

    Campaign stores compare through the exact JSON rendering the real
    ``--json`` artefact uses; mixed-kind job sets fall back to the
    ordered payload dump (same determinism, no report semantics).
    """
    if specs and all(spec.kind == CAMPAIGN_RUN for spec in specs):
        from repro.analysis.report import results_json_from_store

        return results_json_from_store(store)
    return json.dumps(
        [store.payload(spec.job_id) for spec in specs], indent=2
    )


def _compare_trace_dirs(serial_dir: str, chaos_dir: str) -> List[str]:
    """Byte-compare two trace directories; returns mismatch descriptions.

    Trace files carry no timestamps, pids or ordering artefacts, so a
    chaos run — workers killed mid-record, jobs retried, results
    duplicated — must leave *exactly* the bytes a serial run leaves.
    A torn trace from a SIGKILLed worker is overwritten whole by the
    retry (the writer opens ``"w"``), so survivors are never torn.
    """
    serial_files = sorted(os.listdir(serial_dir)) if os.path.isdir(serial_dir) else []
    chaos_files = sorted(os.listdir(chaos_dir)) if os.path.isdir(chaos_dir) else []
    mismatches = []
    for name in serial_files:
        if name not in chaos_files:
            mismatches.append(f"{name}: recorded serially but missing under chaos")
    for name in chaos_files:
        if name not in serial_files:
            mismatches.append(f"{name}: recorded under chaos but not serially")
    for name in serial_files:
        if name not in chaos_files:
            continue
        with open(os.path.join(serial_dir, name), "rb") as handle:
            serial_bytes = handle.read()
        with open(os.path.join(chaos_dir, name), "rb") as handle:
            chaos_bytes = handle.read()
        if serial_bytes != chaos_bytes:
            mismatches.append(
                f"{name}: differs ({len(serial_bytes)} vs {len(chaos_bytes)} bytes)"
            )
    return mismatches


def run_chaos_campaign(
    specs: Sequence[JobSpec],
    seed: int,
    store_path: str,
    jobs: int = 2,
    timeout: float = 10.0,
    plan: Optional[ChaosPlan] = None,
    base_job_fn: JobFn = execute_job,
    max_episodes: int = 10,
    on_event: Optional[Callable] = None,
    trace_dir: Optional[str] = None,
    pool_mode: str = "spawn",
) -> ChaosReport:
    """Run ``specs`` under seeded chaos and check the store invariant.

    The reference is a plain serial run of the same specs.  The chaos
    side runs episodes of a :class:`ChaosPool` against a durable store
    — each episode may kill workers, hang jobs, duplicate and delay
    messages; between incomplete episodes the store file may be torn
    and is then restored from the last good copy — until every job is
    done.  Faults fire on first attempts only and jobs run with no
    in-episode retries, so recovery always flows through the store's
    resume path, the property under test.

    ``pool_mode="fork-server"`` runs the episodes on a
    :class:`ChaosForkPool` instead: the same kill/hang/dup/delay/tear
    fault set, plus snapshot-cache corruption and restore wedges (the
    plan's ``corrupt_rate``/``wedge_rate``, bumped to a quarter each
    when the caller left them at zero).  The invariant is unchanged —
    the fork-server must leave exactly the bytes the serial reference
    leaves, no matter how its cache misbehaved.

    With ``trace_dir`` the serial reference records under
    ``trace_dir/serial`` and the chaos side under ``trace_dir/chaos``;
    the directories must come out byte-identical (trace determinism
    under infrastructure faults), folded into ``report.identical``.
    """
    if pool_mode not in ("spawn", "fork-server"):
        raise ValueError(
            f"unknown pool_mode {pool_mode!r}; known: spawn, fork-server"
        )
    specs = list(specs)
    plan = plan or ChaosPlan(seed=seed, hang_seconds=max(timeout * 3, 1.0))
    if (
        pool_mode == "fork-server"
        and plan.corrupt_rate == 0.0
        and plan.wedge_rate == 0.0
    ):
        plan = replace(plan, corrupt_rate=0.25, wedge_rate=0.25)
    report = ChaosReport(seed=seed, total_jobs=len(specs))

    serial_trace_dir = chaos_trace_dir = None
    serial_specs = specs
    if trace_dir is not None:
        serial_trace_dir = os.path.join(trace_dir, "serial")
        chaos_trace_dir = os.path.join(trace_dir, "chaos")
        os.makedirs(serial_trace_dir, exist_ok=True)
        os.makedirs(chaos_trace_dir, exist_ok=True)
        # trace_dir is excluded from job identity, so both variants
        # plan the same job_ids and resume against the same store.
        serial_specs = [replace(s, trace_dir=serial_trace_dir) for s in specs]
        specs = [replace(s, trace_dir=chaos_trace_dir) for s in specs]

    with ResultStore() as reference:
        serial = SerialRunner(retries=0, job_fn=base_job_fn)
        serial.run(serial_specs, store=reference)
        report.serial_json = _store_fingerprint(reference, serial_specs)

    good_copy = store_path + ".good"
    complete = False
    for episode in range(1, max_episodes + 1):
        report.episodes = episode
        store, restored = _open_store_restoring(store_path, good_copy)
        if restored:
            report.faults["tears-recovered"] = (
                report.faults.get("tears-recovered", 0) + 1
            )
        # Snapshot the (verified-healthy) store before the episode
        # misbehaves — this is the "known-good copy" a torn store is
        # restored from.
        shutil.copyfile(store_path, good_copy)
        if pool_mode == "fork-server":
            pool: WorkerPool = ChaosForkPool(
                plan=plan,
                episode=episode,
                base_job_fn=(
                    execute_job_cached
                    if base_job_fn is execute_job
                    else base_job_fn
                ),
                jobs=jobs,
                timeout=timeout,
                retries=0,
                on_event=on_event,
            )
        else:
            pool = ChaosPool(
                plan=plan,
                episode=episode,
                base_job_fn=base_job_fn,
                jobs=jobs,
                timeout=timeout,
                retries=0,
                on_event=on_event,
            )
        try:
            pool.run(specs, store=store)
            planned_kills = sum(
                1 for spec in specs if plan.kills(episode, spec.job_id)
            )
            report.faults["kills"] = (
                report.faults.get("kills", 0) + planned_kills
            )
            if pool_mode == "fork-server":
                for name, decide in (
                    ("corrupts", plan.corrupts),
                    ("wedges", plan.wedges),
                ):
                    planned = sum(
                        1 for spec in specs if decide(episode, spec.job_id)
                    )
                    report.faults[name] = (
                        report.faults.get(name, 0) + planned
                    )
            summary = store.summary()
            complete = summary.done == len(specs)
        finally:
            store.close()
        if complete:
            break
        if plan.tears(episode):
            tear_file(store_path)
            report.faults["tears"] = report.faults.get("tears", 0) + 1

    final, restored = _open_store_restoring(store_path, good_copy)
    if restored:
        report.faults["tears-recovered"] = (
            report.faults.get("tears-recovered", 0) + 1
        )
    try:
        if final.summary().done != len(specs):
            # A tear may have eaten completed episodes; one clean
            # (fault-free) pass over the restored store finishes the
            # stragglers through the ordinary resume path.
            SerialRunner(
                retries=2, job_fn=base_job_fn, on_event=on_event
            ).run(specs, store=final)
        report.chaos_json = _store_fingerprint(final, specs)
    finally:
        final.close()
    if os.path.exists(good_copy):
        os.remove(good_copy)
    report.identical = report.chaos_json == report.serial_json
    if serial_trace_dir is not None and chaos_trace_dir is not None:
        report.trace_mismatches = _compare_trace_dirs(
            serial_trace_dir, chaos_trace_dir
        )
        report.traces_compared = len(os.listdir(serial_trace_dir))
        if report.trace_mismatches:
            report.identical = False
    return report


# ----------------------------------------------------------------------
# Service-level chaos: kill-and-restart the whole front-end
# ----------------------------------------------------------------------


@dataclass
class ServiceChaosReport:
    """One service lifetime under chaos, and whether the invariant held.

    The invariant is end-to-end: a service that was SIGKILLed
    mid-campaign, had its journal and a shard store torn, was
    restarted and drained must compact to the *byte-identical*
    aggregate store of an uninterrupted in-process run of the same
    plans — and the tenant that blew its quota must have been shed
    with 429 while the other tenants completed unimpeded.
    """

    seed: int
    total_jobs: int = 0
    #: Jobs observed complete when the SIGKILL landed.
    done_at_kill: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    identical: bool = False
    quota_shed: bool = False
    tenants_done: bool = False
    drained_cleanly: bool = False
    sha_reference: str = ""
    sha_chaos: str = ""

    @property
    def passed(self) -> bool:
        return (
            self.identical
            and self.quota_shed
            and self.tenants_done
            and self.drained_cleanly
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "total_jobs": self.total_jobs,
            "done_at_kill": self.done_at_kill,
            "faults": dict(sorted(self.faults.items())),
            "identical": self.identical,
            "quota_shed": self.quota_shed,
            "tenants_done": self.tenants_done,
            "drained_cleanly": self.drained_cleanly,
            "sha_reference": self.sha_reference,
            "sha_chaos": self.sha_chaos,
            "passed": self.passed,
        }

    def render(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        fault_text = ", ".join(
            f"{name}={count}" for name, count in sorted(self.faults.items())
        ) or "none"
        return (
            f"service chaos seed {self.seed}: {self.total_jobs} jobs, "
            f"killed at {self.done_at_kill} done, faults [{fault_text}]\n"
            f"  compaction: {'IDENTICAL' if self.identical else 'DIVERGED'} "
            f"(ref {self.sha_reference[:12]}, chaos {self.sha_chaos[:12]})\n"
            f"  quota shed 429: {self.quota_shed}, tenants done: "
            f"{self.tenants_done}, clean drain: {self.drained_cleanly} "
            f"-> {verdict}"
        )


#: The deterministic multi-tenant workload every service chaos seed
#: runs: big enough that a seeded kill lands mid-campaign, made only
#: of deterministic-payload jobs so compactions can be compared by
#: sha256.
def _service_chaos_plans() -> List[tuple]:
    return [
        (
            "alice",
            {
                "kind": "campaign",
                "use_cases": ["XSA-212-crash", "XSA-182-test"],
                "versions": ["4.6", "4.8", "4.13"],
                "modes": ["exploit", "injection"],
            },
        ),
        ("bob", {"kind": "fuzz", "version": "4.6", "runs": 30, "seed": 7}),
        ("charlie", {"kind": "testcase", "version": "4.13"}),
    ]


#: The over-quota probe: charlie's *second* plan, submitted while his
#: token bucket is empty — it must be shed with 429 and never run.
_OVER_QUOTA_PLAN = {"kind": "testcase", "version": "4.6"}


def _wait_ready(ready_file: str, process, timeout: float = 30.0):
    """Wait for the server's ready file; returns a ServiceClient."""
    from repro.service.client import ServiceClient

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"service exited early with code {process.returncode}"
            )
        if os.path.exists(ready_file):
            try:
                return ServiceClient.from_ready_file(ready_file, timeout=10.0)
            except (ValueError, KeyError):
                pass  # torn ready file mid-write; retry
        time.sleep(0.02)
    raise RuntimeError("service did not become ready in time")


def _spawn_service(data_dir: str, ready_file: str):
    import subprocess
    import sys

    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--data-dir", data_dir,
            "--ready-file", ready_file,
            "--quota-burst", "1",
            "--quota-rate", "0.02",
            "--max-active", "2",
            "--ack-every", "4",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_service_chaos(
    seed: int, workdir: str, timeout: float = 240.0
) -> ServiceChaosReport:
    """One kill-and-restart chaos lifetime against a real subprocess.

    Reference and chaos run the same plans; the chaos side goes over
    HTTP against a ``repro serve`` subprocess that is SIGKILLed at a
    seeded completion fraction, has its journal (and possibly a shard
    store) torn, is restarted, re-submitted to (idempotently), drained
    with SIGTERM — and must compact byte-identically.
    """
    from repro.service import ServiceConfig, Supervisor, compact_data_dir
    from repro.service.quotas import QuotaConfig

    report = ServiceChaosReport(seed=seed)
    plans = _service_chaos_plans()

    # --- reference: uninterrupted, in-process, same plans -------------
    ref_dir = os.path.join(workdir, "reference")
    ref = Supervisor(
        ServiceConfig(
            data_dir=ref_dir, quota=QuotaConfig(rate=1000, burst=1000)
        )
    )
    try:
        for tenant, plan in plans:
            status, payload = ref.submit(dict(plan), tenant)
            assert status == 202, (status, payload)
            report.total_jobs += payload["total"]
        if not ref.run_until_idle(timeout):
            raise RuntimeError("reference supervisor did not finish")
    finally:
        ref.close()
    report.sha_reference = compact_data_dir(ref_dir).sha256

    # --- chaos: subprocess service, seeded kill + tears ---------------
    chaos_dir = os.path.join(workdir, "chaos")
    ready_file = os.path.join(workdir, "service-ready.json")
    process = _spawn_service(chaos_dir, ready_file)
    killed_mid_flight = False
    try:
        client = _wait_ready(ready_file, process)
        cids = []
        for tenant, plan in plans:
            status, payload = client.submit(dict(plan), tenant)
            assert status == 202, (status, payload)
            cids.append(payload["id"])
        # The over-quota probe: charlie's bucket (burst 1, refill
        # 0.02/s) is already empty.
        status, payload = client.submit(dict(_OVER_QUOTA_PLAN), "charlie")
        if status == 429:
            report.quota_shed = True
            report.faults["quota-429"] = 1

        # Client disconnect mid-stream: read a few SSE frames off the
        # first campaign, then drop the connection on the floor.
        frames = list(client.stream(cids[0], limit=3, timeout=10.0))
        if frames:
            report.faults["client-disconnect"] = 1

        # Seeded kill point: SIGKILL once this fraction of all jobs is
        # complete (always mid-flight: between 10% and 50%).
        fraction = 0.1 + 0.4 * chaos_roll(seed, 1, "svc", "killpoint")
        threshold = max(3, int(report.total_jobs * fraction))
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            statuses = [client.status(cid) for cid in cids]
            done = sum(s["ok"] + s["failed"] for s in statuses)
            if done >= threshold:
                killed_mid_flight = any(
                    s["state"] in ("queued", "running") for s in statuses
                )
                report.done_at_kill = done
                break
            time.sleep(0.01)
        process.kill()
        process.wait(timeout=30)
        report.faults["sigkill"] = 1

        # Tear durable state while the service is down.
        if chaos_roll(seed, 2, "svc", "journal-tear") < 0.5:
            journal_path = os.path.join(chaos_dir, "journal.jsonl")
            if os.path.exists(journal_path):
                tear_file(journal_path, keep_fraction=0.7)
                report.faults["journal-tear"] = 1
        if chaos_roll(seed, 3, "svc", "shard-tear") < 0.4:
            from repro.service.shards import iter_shards

            shard_list = iter_shards(chaos_dir)
            if shard_list:
                index = int(
                    chaos_roll(seed, 4, "svc", "shard-pick") * len(shard_list)
                )
                tear_file(shard_list[index][2], keep_fraction=0.5)
                report.faults["shard-tear"] = 1

        # Restart: the journal (+ registry safety net) must resume
        # every in-flight campaign; resubmission is idempotent cover
        # for submissions the tear may have eaten.
        os.remove(ready_file)
        process = _spawn_service(chaos_dir, ready_file)
        client = _wait_ready(ready_file, process)
        for tenant, plan in plans:
            status, payload = client.submit(dict(plan), tenant)
            assert status in (200, 202), (status, payload)
        states = [
            client.wait(cid, timeout=timeout)["state"] for cid in cids
        ]
        report.tenants_done = all(state == "done" for state in states)

        # Graceful drain: first SIGTERM must exit 0 on its own.
        process.send_signal(signal.SIGTERM)
        report.drained_cleanly = process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    report.sha_chaos = compact_data_dir(chaos_dir).sha256
    report.identical = report.sha_chaos == report.sha_reference
    if killed_mid_flight:
        report.faults["killed-mid-campaign"] = 1
    return report
