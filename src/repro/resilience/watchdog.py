"""The crash watchdog: intercept a hypervisor crash, microreboot, go on.

:class:`CrashWatchdog` sits between a campaign trial and the testbed:
the attack (or injection) script runs under :meth:`guard`, and when it
dies with :class:`~repro.errors.HypervisorCrash` or
:class:`~repro.errors.DoubleFault` the watchdog drives the
:class:`~repro.resilience.recovery.RecoveryManager` through a bounded
microreboot and reports what happened instead of letting the crash end
the trial.  Any other exception passes through untouched — the
watchdog only handles the crash class the recovery subsystem exists
for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import DoubleFault, HypervisorCrash
from repro.resilience.recovery import RecoveryManager, RecoveryReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed
    from repro.xen.domain import Domain


@dataclass
class WatchdogVerdict:
    """Outcome of one guarded trial phase."""

    #: Did the guarded callable crash the hypervisor?
    crashed: bool
    #: The recovery report, when a crash triggered a microreboot.
    recovery: Optional[RecoveryReport] = None

    @property
    def recovered(self) -> bool:
        return self.recovery is not None and self.recovery.recovered


class CrashWatchdog:
    """Runs trial phases, converting crashes into recovery attempts."""

    def __init__(
        self,
        bed: "TestBed",
        manager: Optional[RecoveryManager] = None,
        max_reboots: int = 1,
    ):
        self.bed = bed
        self.manager = manager or RecoveryManager(bed, max_reboots=max_reboots)

    def checkpoint(self) -> None:
        """Record the last-known-good state to microreboot back to."""
        self.manager.checkpoint()

    def guard(
        self,
        phase: Callable[[], None],
        offender: Optional["Domain"] = None,
        on_crash: Optional[Callable[[], None]] = None,
    ) -> WatchdogVerdict:
        """Run ``phase``; on a hypervisor crash, microreboot and report.

        ``on_crash`` runs *between* the crash and the rollback — the
        campaign uses it to audit the erroneous state while the
        corrupted memory is still in place.
        """
        try:
            phase()
        except (HypervisorCrash, DoubleFault):
            if on_crash is not None:
                on_crash()
            offender = offender if offender is not None else self._offender()
            report = self.manager.recover(offender=offender)
            return WatchdogVerdict(crashed=True, recovery=report)
        return WatchdogVerdict(crashed=False)

    def _offender(self) -> Optional["Domain"]:
        """Default quarantine target: the attacker-controlled guest."""
        return self.bed.attacker_domain
