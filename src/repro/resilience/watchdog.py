"""The crash watchdog: intercept a hypervisor crash, microreboot, go on.

:class:`CrashWatchdog` sits between a campaign trial and the testbed:
the attack (or injection) script runs under :meth:`guard`, and when it
dies with :class:`~repro.errors.HypervisorCrash` or
:class:`~repro.errors.DoubleFault` the watchdog drives the
:class:`~repro.resilience.recovery.RecoveryManager` through a bounded
microreboot and reports what happened instead of letting the crash end
the trial.  Any other exception passes through untouched — the
watchdog only handles the crash class the recovery subsystem exists
for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import DoubleFault, HypervisorCrash
from repro.resilience.recovery import RecoveryManager, RecoveryReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed
    from repro.xen.domain import Domain


@dataclass
class WatchdogVerdict:
    """Outcome of one guarded trial phase."""

    #: Did the guarded callable crash the hypervisor?
    crashed: bool
    #: The recovery report, when a crash triggered a microreboot.
    recovery: Optional[RecoveryReport] = None
    #: An exception the ``on_crash`` hook raised, chained to the crash
    #: it was observing (``hook_error.__cause__``).  Never aborts the
    #: recovery — a broken observer must not mask the crash outcome.
    hook_error: Optional[Exception] = None

    @property
    def recovered(self) -> bool:
        return self.recovery is not None and self.recovery.recovered


class CrashWatchdog:
    """Runs trial phases, converting crashes into recovery attempts.

    The watchdog also subscribes to the testbed's ``crash`` notify
    probe, so every panic banner it lived through is on
    ``observed_crashes`` — including crashes swallowed by guest
    double-fault handling that never propagate to :meth:`guard`.  The
    probe fires *inside* ``panic()`` (before the exception unwinds),
    so it is observation only; the recovery decision stays in
    :meth:`guard`, which must run after the hypervisor's own crash
    bookkeeping (audit append, console banner) completes.
    """

    def __init__(
        self,
        bed: "TestBed",
        manager: Optional[RecoveryManager] = None,
        max_reboots: int = 1,
    ):
        from repro.probes import points as probe_points

        self.bed = bed
        self.manager = manager or RecoveryManager(bed, max_reboots=max_reboots)
        #: Panic banners observed via the crash probe, oldest first.
        self.observed_crashes: list = []
        self._attachment = bed.xen.probes.attach(
            [(probe_points.CRASH, self.observed_crashes.append)]
        )

    def detach(self) -> None:
        """Stop observing the crash probe (idempotent)."""
        self._attachment.detach()

    def checkpoint(self) -> None:
        """Record the last-known-good state to microreboot back to."""
        self.manager.checkpoint()

    def guard(
        self,
        phase: Callable[[], None],
        offender: Optional["Domain"] = None,
        on_crash: Optional[Callable[[], None]] = None,
    ) -> WatchdogVerdict:
        """Run ``phase``; on a hypervisor crash, microreboot and report.

        ``on_crash`` runs *between* the crash and the rollback — the
        campaign uses it to audit the erroneous state while the
        corrupted memory is still in place.  A hook that itself raises
        must not mask the crash it was called to observe: the hook's
        exception is captured on the verdict (chained to the crash as
        its ``__cause__``) and recovery proceeds regardless.
        """
        try:
            phase()
        except (HypervisorCrash, DoubleFault) as crash:
            hook_error: Optional[Exception] = None
            if on_crash is not None:
                try:
                    on_crash()
                except Exception as exc:
                    exc.__cause__ = crash
                    hook_error = exc
                    self.bed.xen.log(
                        f"watchdog: on_crash hook failed "
                        f"({type(exc).__name__}: {exc}); proceeding with "
                        "recovery"
                    )
            offender = offender if offender is not None else self._offender()
            report = self.manager.recover(offender=offender)
            return WatchdogVerdict(
                crashed=True, recovery=report, hook_error=hook_error
            )
        return WatchdogVerdict(crashed=False)

    def _offender(self) -> Optional["Domain"]:
        """Default quarantine target: the attacker-controlled guest."""
        return self.bed.attacker_domain
