"""ReHype-style microreboot recovery for the simulated hypervisor.

ReHype (Le & Tamir, 2014) recovers a failed hypervisor *in place*: the
hypervisor is rebooted while the state of in-flight VMs is preserved,
then reintegrated and re-validated.  The simulator's analogue: a
:class:`RecoveryManager` checkpoints the machine (memory words, code
blobs, allocator) plus the hypervisor's bookkeeping (frame table,
per-domain p2m), and after a :class:`~repro.errors.HypervisorCrash`
performs a bounded microreboot —

1. **park** — the offending domain is quarantined (marked dead and
   pulled from the scheduler) so it cannot re-trigger the crash;
2. **reboot** — machine memory is rolled back to the last good
   checkpoint and the crash flag is cleared;
3. **reintegrate** — frame-table records and p2m maps are restored to
   the checkpointed view, so surviving domains keep their memory;
4. **re-validate** — the frame type census is compared against the
   checkpoint and the IDT/page-table integrity monitors re-run; a
   mismatch downgrades the outcome to *degraded*.

The resulting :class:`RecoveryReport` is a first-class campaign
outcome (*crash-then-recovered* / *crash-then-degraded* /
*crash-unrecoverable*) — a strictly richer reproduction of the
paper's "system handles the erroneous state" axis.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.core.monitor import (
    IdtIntegrityMonitor,
    PageTableIntegrityMonitor,
)
from repro.probes import points as probe_points
from repro.xen.snapshot import MachineSnapshot, machine_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import TestBed
    from repro.xen.domain import Domain
    from repro.xen.frames import PageInfo

#: Recovery outcomes, from best to worst.
RECOVERED = "recovered"
DEGRADED = "degraded"
UNRECOVERABLE = "unrecoverable"

#: Campaign outcome classes the monitors and reports surface.
OUTCOME_CLASSES = {
    RECOVERED: "crash-then-recovered",
    DEGRADED: "crash-then-degraded",
    UNRECOVERABLE: "crash-unrecoverable",
}


@dataclass
class RecoveryReport:
    """What one microreboot attempt achieved."""

    outcome: str
    crash_banner: str = ""
    #: Wall-clock cost of the microreboot, in seconds.
    wall_time: float = 0.0
    #: Memory words the rollback had to rewrite.
    restored_words: int = 0
    #: Did the post-reboot integrity re-check pass?
    integrity_ok: bool = False
    #: Did the frame type census match the checkpoint?
    census_ok: bool = False
    #: Domain IDs quarantined during recovery.
    quarantined: List[int] = field(default_factory=list)
    #: Microreboots consumed so far in this trial (this one included).
    reboots: int = 0
    #: Post-rollback machine digest (see
    #: :func:`repro.xen.snapshot.machine_digest`) — the same digest a
    #: trace replay computes, so a recovery can be cross-checked
    #: against its recorded trace.  Empty for unrecoverable outcomes.
    state_digest: str = ""
    evidence: List[str] = field(default_factory=list)

    @property
    def outcome_class(self) -> str:
        """The campaign-level outcome class, e.g. ``crash-then-recovered``."""
        return OUTCOME_CLASSES[self.outcome]

    @property
    def recovered(self) -> bool:
        return self.outcome == RECOVERED

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "crash_banner": self.crash_banner,
            "wall_time": self.wall_time,
            "restored_words": self.restored_words,
            "integrity_ok": self.integrity_ok,
            "census_ok": self.census_ok,
            "quarantined": list(self.quarantined),
            "reboots": self.reboots,
            "state_digest": self.state_digest,
            "evidence": list(self.evidence),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryReport":
        return cls(
            outcome=data["outcome"],
            crash_banner=data.get("crash_banner", ""),
            wall_time=data.get("wall_time", 0.0),
            restored_words=data.get("restored_words", 0),
            integrity_ok=data.get("integrity_ok", False),
            census_ok=data.get("census_ok", False),
            quarantined=list(data.get("quarantined", ())),
            reboots=data.get("reboots", 0),
            state_digest=data.get("state_digest", ""),
            evidence=list(data.get("evidence", ())),
        )


@dataclass
class HypervisorCheckpoint:
    """One consistent view of the machine and the hypervisor's books."""

    snapshot: MachineSnapshot
    frame_info: Dict[int, "PageInfo"]
    p2m: Dict[int, list]
    domain_ids: Set[int]
    census: Dict[str, int]
    #: Machine digest at capture time — what a faithful rollback must
    #: reproduce, and what a trace replay of the same checkpoint op
    #: computes.
    digest: str = ""


def frame_type_census(xen) -> Dict[str, int]:
    """Count frames by page type — the invariant the microreboot
    re-validates (a lost or gained typed frame means the reintegration
    desynchronised the frame table from memory)."""
    census: Dict[str, int] = {}
    for _mfn, record in sorted(xen.frames._info.items()):  # noqa: SLF001
        key = record.type.value
        census[key] = census.get(key, 0) + 1
    return census


class RecoveryManager:
    """Checkpoint/restore driver for one testbed's hypervisor."""

    def __init__(
        self,
        bed: "TestBed",
        max_reboots: int = 1,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.bed = bed
        self.max_reboots = max_reboots
        self.clock = clock
        self.reboots = 0
        self._checkpoint: Optional[HypervisorCheckpoint] = None
        #: The most recent report, exposed for monitors.
        self.last_report: Optional[RecoveryReport] = None
        probes = bed.xen.probes
        self._p_checkpoint = probes.point(probe_points.CHECKPOINT)
        self._p_recover = probes.point(probe_points.RECOVER)
        self._p_phase = probes.point(probe_points.RECOVERY_PHASE)

    # -- checkpoint -----------------------------------------------------

    def checkpoint(self) -> HypervisorCheckpoint:
        """Capture a last-known-good state to microreboot back to."""
        point = self._p_checkpoint
        if point.subs:
            return point.run(self._checkpoint_impl, (), (self,))
        return self._checkpoint_impl()

    def _checkpoint_impl(self) -> HypervisorCheckpoint:
        xen = self.bed.xen
        checkpoint = HypervisorCheckpoint(
            snapshot=MachineSnapshot.capture(xen.machine),
            frame_info=copy.deepcopy(xen.frames._info),  # noqa: SLF001
            p2m={d.id: list(d.p2m) for d in self.bed.all_domains()},
            domain_ids={d.id for d in self.bed.all_domains()},
            census=frame_type_census(xen),
            digest=machine_digest(xen.machine),
        )
        self._checkpoint = checkpoint
        return checkpoint

    # -- recovery -------------------------------------------------------

    def recover(self, offender: Optional["Domain"] = None) -> RecoveryReport:
        """Attempt one bounded microreboot after a hypervisor crash."""
        point = self._p_recover
        if point.subs:
            return point.run(self._recover_impl, (offender,), (self, offender))
        return self._recover_impl(offender)

    def _recover_impl(self, offender: Optional["Domain"] = None) -> RecoveryReport:
        xen = self.bed.xen
        banner = xen.crash_banner or ""
        started = self.clock()
        self.reboots += 1

        if self._checkpoint is None or self.reboots > self.max_reboots:
            reason = (
                "no checkpoint to microreboot to"
                if self._checkpoint is None
                else f"microreboot budget exhausted ({self.max_reboots})"
            )
            report = RecoveryReport(
                outcome=UNRECOVERABLE,
                crash_banner=banner,
                wall_time=self.clock() - started,
                reboots=self.reboots,
                evidence=[reason],
            )
            self.last_report = report
            return report

        evidence: List[str] = []
        quarantined: List[int] = []
        phases = self._p_phase

        # Phase 1 — park: quarantine the offender before touching state.
        if phases.subs:
            phases.fire("park")
        if offender is not None and not offender.dead:
            offender.dead = True
            xen.scheduler.unregister_domain(offender)
            quarantined.append(offender.id)
            evidence.append(
                f"quarantined offending domain d{offender.id} ({offender.name})"
            )

        # Phase 2 — reboot: roll memory back, clear the crash.
        if phases.subs:
            phases.fire("reboot")
        checkpoint = self._checkpoint
        restored_words = checkpoint.snapshot.restore(xen.machine)
        xen.crashed = False
        xen.crash_banner = None
        evidence.append(f"rolled back {restored_words} memory words")

        # Phase 3 — reintegrate: frame table and p2m follow the memory.
        if phases.subs:
            phases.fire("reintegrate")
        xen.frames._info = copy.deepcopy(checkpoint.frame_info)  # noqa: SLF001
        domains_changed = False
        for domain in self.bed.all_domains():
            saved = checkpoint.p2m.get(domain.id)
            if saved is None:
                domains_changed = True
                continue
            domain.p2m = list(saved)
        if {d.id for d in self.bed.all_domains()} != checkpoint.domain_ids:
            domains_changed = True
        if domains_changed:
            evidence.append("domain set changed since checkpoint")

        xen.log("*** MICROREBOOT ***")
        xen.log(f"recovered from: {banner}")

        # Phase 4 — re-validate: census, integrity monitors, and the
        # replay-grade digest check: a faithful rollback must leave the
        # machine at exactly the checkpointed digest (the same value a
        # trace replay of the checkpoint op computes).
        if phases.subs:
            phases.fire("revalidate")
        census = frame_type_census(xen)
        census_ok = census == checkpoint.census
        if not census_ok:
            evidence.append(
                f"frame type census drifted: {checkpoint.census} -> {census}"
            )
        integrity_ok = True
        for monitor in (IdtIntegrityMonitor(), PageTableIntegrityMonitor()):
            verdict = monitor.observe(self.bed)
            if verdict.occurred:
                integrity_ok = False
                evidence.append(
                    f"{monitor.name} re-check failed: {verdict.kind}"
                )
        state_digest = machine_digest(xen.machine)
        digest_ok = not checkpoint.digest or state_digest == checkpoint.digest
        if not digest_ok:
            evidence.append(
                "post-rollback digest mismatch: checkpoint "
                f"{checkpoint.digest[:12]} vs machine {state_digest[:12]}"
            )
        intact = census_ok and integrity_ok and digest_ok and not domains_changed

        report = RecoveryReport(
            outcome=RECOVERED if intact else DEGRADED,
            crash_banner=banner,
            wall_time=self.clock() - started,
            restored_words=restored_words,
            integrity_ok=integrity_ok,
            census_ok=census_ok,
            quarantined=quarantined,
            reboots=self.reboots,
            state_digest=state_digest,
            evidence=evidence,
        )
        self.last_report = report
        return report
