"""Per-tenant admission control: token buckets, budgets, a governor.

Three independent gates decide whether a submission is admitted, in
escalating scope:

1. **Global governor** — the whole service accepts only so many
   campaigns in flight (active + queued).  Past that, everyone is
   shed with 429 regardless of tenant: protecting the host beats
   fairness.
2. **Per-tenant token bucket** — submissions refill at ``rate`` per
   second up to ``burst``; an empty bucket yields 429 with a
   ``Retry-After`` computed from the refill rate, so a well-behaved
   client can sleep exactly long enough.
3. **Per-tenant job budget** — a tenant may hold at most
   ``max_tenant_jobs`` unfinished jobs across its campaigns, which
   stops one tenant's giant plans from starving the pool even when it
   submits slowly enough to pass the bucket.

All gates are advisory-free: a rejected submission changes no state,
so retrying after ``Retry-After`` is exactly as good as having been
admitted later.  Campaigns resumed from the journal at boot bypass
the bucket (they were already admitted once) but still count against
the governor and budgets.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class QuotaConfig:
    """Admission limits; the CLI exposes each knob on ``repro serve``."""

    #: Token-bucket refill, submissions per second per tenant.
    rate: float = 2.0
    #: Token-bucket capacity (burst size) per tenant.
    burst: int = 8
    #: Max unfinished jobs a tenant may hold across campaigns.
    max_tenant_jobs: int = 10000
    #: Campaign slots executing concurrently.
    max_active: int = 2
    #: Admitted-but-waiting campaigns beyond the active slots; past
    #: this the governor sheds load.
    queue_depth: int = 16
    #: Retry-After hint when the governor (not a tenant gate) sheds.
    shed_retry_after: float = 5.0


class TokenBucket:
    """Classic token bucket; monotonic-clock based, lock provided by caller."""

    def __init__(self, rate: float, burst: int, clock=time.monotonic):
        self.rate = max(rate, 1e-9)
        self.burst = max(burst, 1)
        self._clock = clock
        self._tokens = float(self.burst)
        self._stamp = clock()

    def try_take(self) -> float:
        """Take one token; returns 0.0 on success, else seconds to wait."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass(frozen=True)
class Admission:
    """The verdict on one submission."""

    ok: bool
    status: int = 202
    retry_after: float = 0.0
    reason: str = ""


class AdmissionController:
    """Thread-safe composition of the three gates."""

    def __init__(self, config: QuotaConfig, clock=time.monotonic):
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._tenant_jobs: Dict[str, int] = {}
        self._in_flight = 0

    def admit(self, tenant: str, jobs: int) -> Admission:
        cfg = self.config
        with self._lock:
            if self._in_flight >= cfg.max_active + cfg.queue_depth:
                return Admission(
                    ok=False,
                    status=429,
                    retry_after=cfg.shed_retry_after,
                    reason="service at capacity",
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    cfg.rate, cfg.burst, clock=self._clock
                )
            wait = bucket.try_take()
            if wait > 0.0:
                return Admission(
                    ok=False,
                    status=429,
                    retry_after=wait,
                    reason=f"tenant {tenant!r} submission rate exceeded",
                )
            held = self._tenant_jobs.get(tenant, 0)
            if held + jobs > cfg.max_tenant_jobs:
                # Bucket token already spent; that is fine — budget
                # rejections should cost rate, or a tenant could probe
                # the budget for free.
                return Admission(
                    ok=False,
                    status=429,
                    retry_after=cfg.shed_retry_after,
                    reason=(
                        f"tenant {tenant!r} job budget exceeded "
                        f"({held}+{jobs} > {cfg.max_tenant_jobs})"
                    ),
                )
            self._accept(tenant, jobs)
            return Admission(ok=True)

    def admit_resumed(self, tenant: str, jobs: int) -> None:
        """Count a journal-recovered campaign without gating it.

        Resumed campaigns were admitted in a previous life; refusing
        them now would turn a crash into data loss.  They still occupy
        governor and budget capacity so fresh submissions see honest
        pressure.
        """
        with self._lock:
            self._accept(tenant, jobs)

    def _accept(self, tenant: str, jobs: int) -> None:
        self._in_flight += 1
        self._tenant_jobs[tenant] = self._tenant_jobs.get(tenant, 0) + jobs

    def release(self, tenant: str, jobs: int) -> None:
        """Return capacity when a campaign reaches a terminal state."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            held = self._tenant_jobs.get(tenant, 0)
            remaining = max(0, held - jobs)
            if remaining:
                self._tenant_jobs[tenant] = remaining
            else:
                self._tenant_jobs.pop(tenant, None)

    def snapshot(self) -> Dict[str, object]:
        """Current pressure figures for ``/healthz``."""
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "tenants": dict(sorted(self._tenant_jobs.items())),
                "max_active": self.config.max_active,
                "queue_depth": self.config.queue_depth,
            }
