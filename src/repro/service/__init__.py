"""``repro.service`` — campaign-as-a-service front-end.

A crash-safe asyncio HTTP service (stdlib-only) that accepts campaign
submissions per tenant, executes them on the existing runner pools,
streams progress as SSE, and survives SIGKILL: the fsynced journal
plus content-derived job IDs make every acknowledged campaign resume
exactly where it stopped.  ``repro serve`` starts it; ``repro service
compact`` folds the per-campaign shard stores into one byte-stable
aggregate whose sha256 is the service's end-to-end integrity check.
"""

from repro.service.journal import (
    CampaignRecord,
    CampaignRegistry,
    ServiceJournal,
    boot,
    read_jsonl,
)
from repro.service.plans import (
    PlanError,
    campaign_id_for,
    canonical_plan,
    expand_plan,
)
from repro.service.quotas import Admission, AdmissionController, QuotaConfig, TokenBucket
from repro.service.shards import (
    CompactReport,
    compact,
    compact_data_dir,
    file_sha256,
    iter_shards,
)
from repro.service.supervisor import EventStream, ServiceConfig, Supervisor

__all__ = [
    "Admission",
    "AdmissionController",
    "CampaignRecord",
    "CampaignRegistry",
    "CompactReport",
    "EventStream",
    "PlanError",
    "QuotaConfig",
    "ServiceConfig",
    "ServiceJournal",
    "Supervisor",
    "TokenBucket",
    "boot",
    "campaign_id_for",
    "canonical_plan",
    "compact",
    "compact_data_dir",
    "expand_plan",
    "file_sha256",
    "iter_shards",
    "read_jsonl",
]
