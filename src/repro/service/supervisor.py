"""The campaign supervisor: admission, execution, durability, drain.

One :class:`Supervisor` owns everything below the HTTP layer:

* **Admission** — quota gates first, then a durable journal append;
  a campaign is only acknowledged once its submission record has
  been fsynced, so an acked campaign survives any crash.
* **Execution** — campaigns run on a small thread pool; each thread
  drives one of the existing runners (serial / spawn pool / fork
  server) against the campaign's own shard store.  Content-derived
  job IDs make every pass resumable: after a SIGKILL the restarted
  supervisor re-runs only what the shard store has not recorded.
* **Events** — every runner event is appended to the campaign's
  per-shard event log with a monotonically increasing sequence
  number; the server streams them as SSE (``id:`` = seq) and
  replays from any acked seq on reconnect.
* **Degradation ladder** — a circuit-open does not fail the
  campaign: the supervisor marks it *degraded* and re-runs the
  unfinished remainder on a fresh fallback pool, a bounded number
  of times.  Only exhausted ladders report failure.
* **Drain** — ``begin_drain()`` flips submissions to 503 and asks
  every active runner to stop cooperatively; batches in flight are
  acked and flushed, and interrupted campaigns resume on next boot.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.runner import events as ev
from repro.runner.pool import make_runner
from repro.runner.store import ResultStore, StoreBusy, StoreCorrupt
from repro.service import journal as jn
from repro.service import shards
from repro.service.journal import CampaignRecord
from repro.service.plans import PlanError, campaign_id_for, canonical_plan, expand_plan
from repro.service.quotas import AdmissionController, QuotaConfig

#: Event kinds that advance the batch-ack counter.
_TERMINAL_JOB_KINDS = frozenset(
    {ev.JOB_FINISHED, ev.JOB_FAILED, ev.JOB_SKIPPED, ev.JOB_QUARANTINED}
)
#: Runner pass-end kinds that are NOT forwarded to event streams: a
#: degraded campaign runs several passes, and only the supervisor
#: knows which end is final.
_PASS_END_KINDS = frozenset({ev.CAMPAIGN_FINISHED, ev.CAMPAIGN_INTERRUPTED})

#: Tenant names become directory components; keep them boring.
_TENANT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    data_dir: str
    #: Worker processes per campaign runner.
    jobs: int = 1
    fork_server: bool = False
    timeout: Optional[float] = None
    retries: int = 1
    max_backoff: float = 5.0
    #: Heartbeat grace before a worker counts as wedged.
    liveness_grace: Optional[float] = 30.0
    #: Fork-server dispatch batch size.
    batch: int = 8
    #: Journal a batch ack every this many completed jobs.
    ack_every: int = 8
    #: Consecutive worker deaths before the circuit opens.
    circuit_threshold: int = 8
    #: How many fallback passes a degraded campaign gets.
    degrade_limit: int = 2
    quota: QuotaConfig = field(default_factory=QuotaConfig)


class EventStream:
    """One campaign's durable, seq-numbered event log with live fanout.

    Events are advisory (the store is the source of truth), so appends
    flush but do not fsync; a torn tail costs a progress line, never a
    result.  Sequence numbers continue across restarts, which is what
    makes SSE ``Last-Event-ID`` reconnection exact.
    """

    def __init__(self, path: str, loop_ref: Callable[[], Optional[asyncio.AbstractEventLoop]]):
        self._loop_ref = loop_ref
        self._lock = threading.Lock()
        records, good = jn.read_jsonl(path)
        self._records: List[dict] = records
        self._next = max((int(r.get("seq", 0)) for r in records), default=0) + 1
        self._handle = jn.open_append(path, good)
        self._subscribers: List[asyncio.Queue] = []

    def append(self, event: Dict[str, object]) -> int:
        import json

        with self._lock:
            seq = self._next
            self._next += 1
            record = {"seq": seq, "event": event}
            self._records.append(record)
            self._handle.write((json.dumps(record, sort_keys=True) + "\n").encode())
            self._handle.flush()
        loop = self._loop_ref()
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._fanout, record)
            except RuntimeError:
                pass  # loop shut down mid-append; subscribers are gone
        return seq

    def _fanout(self, record: dict) -> None:
        for queue in list(self._subscribers):
            queue.put_nowait(record)

    def read(self, after: int = 0) -> List[dict]:
        with self._lock:
            return [r for r in self._records if int(r.get("seq", 0)) > after]

    def subscribe(self) -> "asyncio.Queue[dict]":
        """Loop-thread only."""
        queue: "asyncio.Queue[dict]" = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue[dict]") -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except OSError:
                pass


class Supervisor:
    """Owns campaign state from admission to terminal journal record."""

    def __init__(self, config: ServiceConfig, clock=time.time):
        self.config = config
        self._clock = clock
        os.makedirs(config.data_dir, exist_ok=True)
        state = jn.boot(
            os.path.join(config.data_dir, "journal.jsonl"),
            os.path.join(config.data_dir, "registry.sqlite"),
            clock=clock,
        )
        self.journal = state.journal
        self.registry = state.registry
        self.records: Dict[str, CampaignRecord] = state.records
        self.admission = AdmissionController(config.quota)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._streams: Dict[str, EventStream] = {}
        self._runners: Dict[str, object] = {}
        self._circuit: Dict[str, str] = {}
        self._since_ack: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.quota.max_active),
            thread_name_prefix="repro-campaign",
        )

    # -- wiring ---------------------------------------------------------

    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Let event streams fan out to asyncio subscribers."""
        self._loop = loop

    def stream(self, campaign_id: str) -> Optional[EventStream]:
        record = self.records.get(campaign_id)
        if record is None:
            return None
        return self._stream_for(record)

    def _stream_for(self, record: CampaignRecord) -> EventStream:
        with self._lock:
            stream = self._streams.get(record.campaign_id)
            if stream is None:
                path = shards.event_log_path(
                    self.config.data_dir, record.tenant, record.campaign_id
                )
                stream = EventStream(path, lambda: self._loop)
                self._streams[record.campaign_id] = stream
            return stream

    @property
    def draining(self) -> bool:
        return self._draining

    # -- admission ------------------------------------------------------

    def submit(self, plan: Dict[str, object], tenant: str) -> Tuple[int, dict]:
        """Admit one submission; returns ``(http_status, payload)``."""
        if not tenant or any(c not in _TENANT_OK for c in tenant):
            return 400, {"error": f"invalid tenant name {tenant!r}"}
        if self._draining:
            return 503, {"error": "service is draining", "retry_after": 10}
        try:
            canonical = canonical_plan(plan)
            specs = expand_plan(canonical)
        except PlanError as exc:
            return 400, {"error": str(exc)}
        campaign_id = campaign_id_for(tenant, canonical)
        with self._lock:
            existing = self.records.get(campaign_id)
            if existing is not None:
                # Idempotent resubmission: same tenant + same plan is
                # the same campaign; report its current state.
                return 200, existing.status()
            verdict = self.admission.admit(tenant, len(specs))
            if not verdict.ok:
                return verdict.status, {
                    "error": verdict.reason,
                    "retry_after": verdict.retry_after,
                }
            record = CampaignRecord(
                campaign_id=campaign_id,
                tenant=tenant,
                plan=canonical,
                total_jobs=len(specs),
                state=jn.QUEUED,
                submitted_at=self._clock(),
            )
            # Durable-before-ack: the journal append fsyncs, so once
            # the client sees 202 the campaign survives any crash.
            self.journal.append("submitted", campaign=record.to_dict())
            self.registry.upsert(record)
            self.records[campaign_id] = record
        self._emit(record, ev.CAMPAIGN_SUBMITTED, total=record.total_jobs)
        self._schedule(campaign_id)
        return 202, record.status()

    def resume_pending(self) -> List[str]:
        """Reschedule every campaign whose work is not durably complete.

        That is every non-terminal campaign, plus any *terminal* one
        whose shard store no longer backs its claim (torn, corrupt or
        missing while the journal says done): the journal records
        intent, the store holds the results, and when they disagree
        the store wins — the jobs are deterministic, so re-running
        converges to the same bytes.
        """
        resumed = []
        with self._lock:
            ordered = sorted(
                self.records.values(),
                key=lambda r: (r.submitted_at, r.campaign_id),
            )
            survivors = []
            for record in ordered:
                if record.state in jn.TERMINAL_STATES:
                    if self._shard_backs(record):
                        continue
                    record.detail = "shard store lost; re-running"
                survivors.append(record)
            for record in survivors:
                self.admission.admit_resumed(record.tenant, record.total_jobs)
                record.state = jn.QUEUED
                record.detail = "resumed after restart"
                self.journal.append(
                    "state", id=record.campaign_id, state=jn.QUEUED,
                    detail=record.detail,
                )
                self.registry.upsert(record)
        for record in survivors:
            self._schedule(record.campaign_id)
            resumed.append(record.campaign_id)
        return resumed

    def _shard_backs(self, record: CampaignRecord) -> bool:
        """Does the shard store actually hold what the journal claims?"""
        path = shards.shard_store_path(
            self.config.data_dir, record.tenant, record.campaign_id
        )
        if not os.path.exists(path):
            return record.total_jobs == 0
        try:
            with ResultStore(path) as store:
                summary = store.summary()
        except (StoreBusy, StoreCorrupt):
            return False
        if record.state == jn.DONE:
            return summary.done >= record.total_jobs
        return True

    def _schedule(self, campaign_id: str) -> None:
        with self._idle:
            self._pending += 1
        self._executor.submit(self._run_campaign_guarded, campaign_id)

    # -- execution ------------------------------------------------------

    def _run_campaign_guarded(self, campaign_id: str) -> None:
        record = self.records[campaign_id]
        try:
            self._run_campaign(record)
        except Exception as exc:  # defensive: a crash must journal
            self._finish(record, jn.FAILED, f"supervisor error: {exc}")
        finally:
            self.admission.release(record.tenant, record.total_jobs)
            with self._idle:
                self._runners.pop(campaign_id, None)
                self._pending -= 1
                self._idle.notify_all()

    def _run_campaign(self, record: CampaignRecord) -> None:
        cid = record.campaign_id
        if self._draining:
            self._finish(record, jn.INTERRUPTED, "drained before start")
            return
        cdir = shards.campaign_dir(self.config.data_dir, record.tenant, cid)
        os.makedirs(cdir, exist_ok=True)
        trace_dir = None
        if record.plan.get("trace"):
            trace_dir = shards.trace_dir_path(self.config.data_dir, record.tenant, cid)
            os.makedirs(trace_dir, exist_ok=True)
        specs = expand_plan(record.plan, trace_dir=trace_dir)

        store_path = shards.shard_store_path(self.config.data_dir, record.tenant, cid)
        try:
            store = ResultStore(store_path)
        except StoreCorrupt:
            # A torn shard loses that campaign's progress, nothing
            # else; the jobs are deterministic, so a fresh shard
            # converges to the same results.
            os.replace(store_path, store_path + ".corrupt")
            store = ResultStore(store_path)
        try:
            store.register(specs)
            record.state = jn.RUNNING
            record.detail = ""
            self.journal.append("state", id=cid, state=jn.RUNNING, detail="")
            self.registry.upsert(record)
            self._emit(record, ev.CAMPAIGN_STARTED, total=record.total_jobs)

            stream = self._stream_for(record)
            self._since_ack[cid] = 0
            degrades = 0
            fallback = False
            while True:
                self._circuit[cid] = ""
                runner = self._make_runner(record, store, stream, fallback)
                with self._lock:
                    # Publish the runner before running so a drain
                    # arriving mid-pass can reach request_stop(); a
                    # drain that already happened skips the pass.
                    drained = self._draining
                    if not drained:
                        self._runners[cid] = runner
                if drained:
                    self._ack(record, store)
                    self._finish(record, jn.INTERRUPTED, "drained")
                    return
                outcome = runner.run(specs, store=store)
                if outcome.interrupted:
                    self._ack(record, store)
                    self._finish(
                        record, jn.INTERRUPTED,
                        outcome.interrupt_signal or "stopped",
                    )
                    return
                tripped = self._circuit.get(cid, "")
                if tripped and degrades < self.config.degrade_limit:
                    degrades += 1
                    record.degraded = True
                    record.detail = tripped
                    self.journal.append("degraded", id=cid, detail=tripped)
                    self.registry.upsert(record)
                    self._emit(record, ev.CAMPAIGN_DEGRADED, detail=tripped)
                    fallback = True
                    continue
                break

            self._ack(record, store)
            summary = store.summary()
            failed = summary.total - summary.done
            state = jn.DONE if failed == 0 else jn.FAILED
            detail = "" if failed == 0 else f"{failed} job(s) failed"
            self._finish(record, state, detail)
        finally:
            store.close()

    def _make_runner(self, record, store, stream, fallback: bool):
        cfg = self.config
        callback = self._callback_for(record, store, stream)
        if fallback:
            # Degraded pass: a fresh spawn-per-job pool with a roomier
            # circuit and extra retries — the point is to finish, not
            # to be fast.
            return make_runner(
                jobs=max(cfg.jobs, 2),
                timeout=cfg.timeout,
                retries=max(cfg.retries, 2),
                on_event=callback,
                max_backoff=cfg.max_backoff,
                circuit_threshold=max(cfg.circuit_threshold * 2, 16),
                liveness_grace=cfg.liveness_grace,
            )
        return make_runner(
            jobs=cfg.jobs,
            timeout=cfg.timeout,
            retries=cfg.retries,
            on_event=callback,
            max_backoff=cfg.max_backoff,
            circuit_threshold=cfg.circuit_threshold,
            liveness_grace=cfg.liveness_grace,
            fork_server=cfg.fork_server,
            batch=cfg.batch,
        )

    def _callback_for(self, record, store, stream):
        cid = record.campaign_id

        def on_event(event) -> None:
            if event.kind == ev.CIRCUIT_OPEN:
                self._circuit[cid] = event.detail or "circuit open"
            if event.kind in _PASS_END_KINDS:
                return  # the supervisor emits the real campaign ends
            payload = event.to_dict()
            payload["campaign"] = cid
            stream.append(payload)
            if event.kind in _TERMINAL_JOB_KINDS:
                self._since_ack[cid] = self._since_ack.get(cid, 0) + 1
                if self._since_ack[cid] >= self.config.ack_every:
                    self._since_ack[cid] = 0
                    self._ack(record, store)

        return on_event

    def _ack(self, record: CampaignRecord, store: ResultStore) -> None:
        """Journal a progress checkpoint (advisory; store is truth)."""
        summary = store.summary()
        record.ok_jobs = summary.done
        record.failed_jobs = summary.failed
        self.journal.append(
            "batch", id=record.campaign_id, ok=summary.done, failed=summary.failed
        )
        self.registry.upsert(record)

    def _finish(self, record: CampaignRecord, state: str, detail: str) -> None:
        record.state = state
        record.detail = detail
        self.journal.append(
            "state", id=record.campaign_id, state=state, detail=detail
        )
        self.registry.upsert(record)
        kind = (
            ev.CAMPAIGN_INTERRUPTED
            if state == jn.INTERRUPTED
            else ev.CAMPAIGN_FINISHED
        )
        self._emit(record, kind, final=True, state=state, detail=detail)

    def _emit(self, record: CampaignRecord, kind: str, final: bool = False, **fields):
        stream = self._stream_for(record)
        event: Dict[str, object] = {
            "kind": kind,
            "campaign": record.campaign_id,
            "final": final,
        }
        event.update(fields)
        stream.append(event)

    # -- queries --------------------------------------------------------

    def status(self, campaign_id: str) -> Optional[dict]:
        record = self.records.get(campaign_id)
        return None if record is None else record.status()

    def list_campaigns(self, tenant: Optional[str] = None) -> List[dict]:
        records = sorted(
            self.records.values(), key=lambda r: (r.submitted_at, r.campaign_id)
        )
        return [
            r.status() for r in records if tenant is None or r.tenant == tenant
        ]

    def health(self) -> dict:
        by_state: Dict[str, int] = {}
        for record in self.records.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "state": "draining" if self._draining else "ok",
            "campaigns": by_state,
            "admission": self.admission.snapshot(),
        }

    # -- lifecycle ------------------------------------------------------

    def run_until_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no campaign is queued or running (headless mode)."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0, timeout)

    def begin_drain(self) -> None:
        """Stop accepting work and cooperatively stop active runners."""
        with self._lock:
            self._draining = True
            runners = list(self._runners.values())
        for runner in runners:
            stop = getattr(runner, "request_stop", None)
            if stop is not None:
                stop()

    def drain(self, timeout: Optional[float] = None) -> bool:
        self.begin_drain()
        return self.run_until_idle(timeout)

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        for stream in self._streams.values():
            stream.close()
        self.journal.close()
        self.registry.close()
