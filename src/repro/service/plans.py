"""Plan documents: the JSON campaign descriptions clients submit.

A plan is a small JSON object selecting one of the repository's
experiment families and its matrix; :func:`expand_plan` turns it into
the same :class:`~repro.runner.jobs.JobSpec` lists the CLI planners
produce, so a campaign submitted over HTTP runs *identical jobs* (and
therefore identical content-derived job IDs) to one launched with
``repro campaign`` — that identity is what lets CI compare a service
compaction byte-for-byte against a CLI store.

Canonicalization matters for two reasons: the campaign ID is a
content hash of ``(tenant, canonical plan)``, making resubmission
idempotent, and defaults are materialized so the journal records the
plan the service will actually run, not whatever the client omitted.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.runner.jobs import (
    JobSpec,
    SELFTEST,
    plan_benchmark,
    plan_campaign,
    plan_fuzz,
    plan_testcases,
)


class PlanError(ValueError):
    """A submitted plan that cannot be expanded (HTTP 400)."""


_KINDS = ("campaign", "fuzz", "testcase", "benchmark", "selftest")


def _all_version_names() -> List[str]:
    from repro.xen.versions import ALL_VERSIONS

    return [v.name for v in ALL_VERSIONS]


def _check_versions(names: Sequence[str]) -> List[str]:
    from repro.xen.versions import version_by_name

    versions = [str(name) for name in names]
    if not versions:
        raise PlanError("plan selects no versions")
    for name in versions:
        try:
            version_by_name(name)
        except KeyError as exc:
            raise PlanError(f"unknown Xen version {name!r}") from exc
    return versions


def _str_list(value: object, what: str) -> List[str]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise PlanError(f"{what} must be a list of strings")
    return list(value)


def _check_topology(value: object) -> str:
    """Validate a plan's scenario topology; returns its spec value
    (``""`` when omitted or explicitly the paper default)."""
    if value is None:
        return ""
    if not isinstance(value, dict):
        raise PlanError("topology must be a JSON object")
    from repro.core.topology import ScenarioTopology, TopologyError

    try:
        topology = ScenarioTopology.from_dict(value)
    except TopologyError as exc:
        raise PlanError(f"invalid topology: {exc}") from exc
    return topology.spec_value()


def canonical_plan(plan: Dict[str, object]) -> Dict[str, object]:
    """Validate a plan document and materialize its defaults."""
    if not isinstance(plan, dict):
        raise PlanError("plan must be a JSON object")
    kind = plan.get("kind")
    if kind not in _KINDS:
        raise PlanError(f"plan kind must be one of {_KINDS}, got {kind!r}")

    if kind == "campaign":
        from repro.core.injections.registry import is_registered, registered_names

        use_cases = _str_list(
            plan.get("use_cases", list(registered_names())), "use_cases"
        )
        for name in use_cases:
            if not is_registered(name):
                raise PlanError(f"unknown use case {name!r}")
        modes = _str_list(plan.get("modes", ["exploit", "injection"]), "modes")
        for mode in modes:
            if mode not in ("exploit", "injection"):
                raise PlanError(f"unknown campaign mode {mode!r}")
        canonical: Dict[str, object] = {
            "kind": "campaign",
            "use_cases": use_cases,
            "versions": _check_versions(plan.get("versions", _all_version_names())),
            "modes": modes,
            "recover": bool(plan.get("recover", False)),
            "metrics": bool(plan.get("metrics", False)),
            "trace": bool(plan.get("trace", False)),
        }
        topology = _check_topology(plan.get("topology"))
        if topology:
            # Only non-default shapes enter the canonical plan: an
            # explicitly spelled-out default is the same campaign as an
            # omitted one (same campaign ID, same job IDs as every
            # pre-topology submission).
            canonical["topology"] = json.loads(topology)
        return canonical

    if kind == "fuzz":
        from repro.core.fuzz import default_components

        known = [component.name for component in default_components()]
        components = _str_list(plan.get("components", known), "components")
        for name in components:
            if name not in known:
                raise PlanError(f"unknown fuzz component {name!r}")
        try:
            runs = int(plan.get("runs", 5))
            seed = int(plan.get("seed", 42))
        except (TypeError, ValueError) as exc:
            raise PlanError("fuzz runs/seed must be integers") from exc
        if runs < 1:
            raise PlanError("fuzz runs must be >= 1")
        versions = _check_versions([plan.get("version", "4.6")])
        return {
            "kind": "fuzz",
            "version": versions[0],
            "components": components,
            "runs": runs,
            "seed": seed,
        }

    if kind == "testcase":
        from repro.core.testcases import list_test_cases

        known = [case.name for case in list_test_cases()]
        names = _str_list(plan.get("names", known), "names")
        for name in names:
            if name not in known:
                raise PlanError(f"unknown test case {name!r}")
        versions = _check_versions([plan.get("version", "4.13")])
        return {"kind": "testcase", "version": versions[0], "names": names}

    if kind == "benchmark":
        from repro.core.benchmarking import default_suite

        known = [item.name for item in default_suite()]
        items = _str_list(plan.get("items", known), "items")
        for name in items:
            if name not in known:
                raise PlanError(f"unknown benchmark item {name!r}")
        return {
            "kind": "benchmark",
            "items": items,
            "versions": _check_versions(plan.get("versions", _all_version_names())),
        }

    # selftest: pool-exercising behaviours, used by the service's own
    # tests and chaos harness (payloads are nondeterministic — never
    # use in byte-identity comparisons).
    behaviours = _str_list(plan.get("behaviours", ["ok"]), "behaviours")
    if not behaviours:
        raise PlanError("selftest plan selects no behaviours")
    return {"kind": "selftest", "behaviours": behaviours}


def campaign_id_for(tenant: str, canonical: Dict[str, object]) -> str:
    """Content-derived campaign ID: resubmission is idempotent."""
    blob = json.dumps([tenant, canonical], sort_keys=True).encode()
    return "c-" + hashlib.sha1(blob).hexdigest()[:16]


def expand_plan(
    canonical: Dict[str, object], trace_dir: Optional[str] = None
) -> List[JobSpec]:
    """Expand a canonical plan into job specs, in plan order.

    ``trace_dir`` is where campaign-run trace artefacts land when the
    plan asked for tracing; it is deliberately outside the plan (and
    outside job identity) so shard placement never changes what the
    campaign *is*.
    """
    kind = canonical["kind"]
    if kind == "campaign":
        topology = canonical.get("topology")
        return plan_campaign(
            canonical["use_cases"],  # type: ignore[arg-type]
            canonical["versions"],  # type: ignore[arg-type]
            modes=canonical["modes"],  # type: ignore[arg-type]
            recover=bool(canonical["recover"]),
            trace_dir=trace_dir if canonical.get("trace") else None,
            metrics=bool(canonical["metrics"]),
            topology=(
                json.dumps(topology, sort_keys=True, separators=(",", ":"))
                if topology
                else ""
            ),
        )
    if kind == "fuzz":
        return plan_fuzz(
            str(canonical["version"]),
            canonical["components"],  # type: ignore[arg-type]
            int(canonical["runs"]),  # type: ignore[call-overload]
            int(canonical["seed"]),  # type: ignore[call-overload]
        )
    if kind == "testcase":
        return plan_testcases(
            canonical["names"],  # type: ignore[arg-type]
            str(canonical["version"]),
        )
    if kind == "benchmark":
        return plan_benchmark(
            canonical["items"],  # type: ignore[arg-type]
            canonical["versions"],  # type: ignore[arg-type]
        )
    # selftest: the version field disambiguates duplicate behaviours so
    # every job keeps a unique content-derived ID.
    return [
        JobSpec(kind=SELFTEST, use_case=behaviour, version=str(index))
        for index, behaviour in enumerate(canonical["behaviours"])  # type: ignore[arg-type]
    ]
