"""Crash-safe service journal and campaign registry.

The service's durability story has two layers with different jobs:

* :class:`ServiceJournal` — an append-only JSONL write-ahead log.
  Every accepted state change (submission, start, batch ack,
  degradation, terminal state) is appended, flushed and fsynced
  **before** the client sees an acknowledgement.  Replaying the
  journal from the top reconstructs every campaign the service ever
  accepted, which is what makes a SIGKILL survivable: the restarted
  service re-admits in-flight campaigns and resumes them through the
  result store's content-derived job IDs.

* :class:`CampaignRegistry` — a SQLite mirror of the *current* state,
  rebuilt from the journal on every boot.  The journal is the truth;
  the registry is the queryable view (and the safety net when the
  journal itself loses its tail to a torn write).

Torn writes are expected, not exceptional: a JSONL file killed
mid-append ends with a partial line.  :func:`read_jsonl` stops at the
first undecodable line and reports how many bytes were good, and
:func:`open_append` truncates the tear before appending — the same
discipline the chaos harness enforces on result stores.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, IO, List, Optional, Tuple

#: Campaign lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
INTERRUPTED = "interrupted"  # stopped mid-flight; resumable

#: States that need no further work.
TERMINAL_STATES = frozenset({DONE, FAILED})


@dataclass
class CampaignRecord:
    """Everything the service knows about one campaign."""

    campaign_id: str
    tenant: str
    #: The submitted plan document (canonical form).
    plan: Dict[str, object]
    total_jobs: int
    state: str = QUEUED
    #: True once execution fell back past a circuit-open — the
    #: campaign still completes, on a degraded pool.
    degraded: bool = False
    ok_jobs: int = 0
    failed_jobs: int = 0
    submitted_at: float = 0.0
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignRecord":
        return cls(**data)  # type: ignore[arg-type]

    def status(self) -> Dict[str, object]:
        """The public status document served over HTTP."""
        return {
            "id": self.campaign_id,
            "tenant": self.tenant,
            "state": self.state,
            "degraded": self.degraded,
            "total": self.total_jobs,
            "ok": self.ok_jobs,
            "failed": self.failed_jobs,
            "detail": self.detail,
        }


def read_jsonl(path: str) -> Tuple[List[dict], int]:
    """Parse a JSONL file, tolerating a torn tail.

    Returns ``(records, good_bytes)`` where ``good_bytes`` is the
    offset just past the last complete, decodable line.  Everything
    after the first bad line is presumed lost to the tear.
    """
    records: List[dict] = []
    good = 0
    if not os.path.exists(path):
        return records, good
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break  # torn final line
            try:
                value = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            if not isinstance(value, dict):
                break
            records.append(value)
            good += len(raw)
    return records, good


def open_append(path: str, good_bytes: int) -> IO[bytes]:
    """Open ``path`` for appending after truncating any torn tail."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    handle = open(path, "ab")
    try:
        if handle.tell() > good_bytes:
            handle.truncate(good_bytes)
            handle.seek(good_bytes)
    except OSError:
        handle.close()
        raise
    return handle


class ServiceJournal:
    """Append-only, fsynced JSONL write-ahead log.

    Record shape: ``{"seq": n, "type": ..., **fields}``.  Sequence
    numbers continue across restarts so the log totally orders every
    accepted state change in the service's life.
    """

    def __init__(self, path: str, clock=time.time):
        self.path = path
        self._clock = clock
        self._lock = threading.Lock()
        self.replayed, good = read_jsonl(path)
        self._seq = max((int(r.get("seq", 0)) for r in self.replayed), default=0)
        self._handle = open_append(path, good)

    def append(self, record_type: str, **fields) -> dict:
        """Durably append one record; returns it with its seq."""
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "type": record_type, "at": self._clock()}
            record.update(fields)
            line = json.dumps(record, sort_keys=True) + "\n"
            self._handle.write(line.encode("utf-8"))
            self._handle.flush()
            os.fsync(self._handle.fileno())
            return record

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()


def replay_records(entries: List[dict]) -> Dict[str, CampaignRecord]:
    """Fold journal entries into the latest per-campaign state."""
    records: Dict[str, CampaignRecord] = {}
    for entry in entries:
        kind = entry.get("type")
        if kind == "submitted":
            data = entry.get("campaign")
            if isinstance(data, dict):
                try:
                    record = CampaignRecord.from_dict(data)
                except TypeError:
                    continue
                records[record.campaign_id] = record
            continue
        cid = entry.get("id")
        record = records.get(cid) if isinstance(cid, str) else None
        if record is None:
            continue
        if kind == "state":
            record.state = str(entry.get("state", record.state))
            record.detail = str(entry.get("detail", record.detail))
        elif kind == "degraded":
            record.degraded = True
            record.detail = str(entry.get("detail", record.detail))
        elif kind == "batch":
            record.ok_jobs = int(entry.get("ok", record.ok_jobs))
            record.failed_jobs = int(entry.get("failed", record.failed_jobs))
    return records


class CampaignRegistry:
    """SQLite mirror of current campaign state (the queryable view)."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS campaigns (
        campaign_id TEXT PRIMARY KEY,
        tenant TEXT NOT NULL,
        plan TEXT NOT NULL,
        total_jobs INTEGER NOT NULL,
        state TEXT NOT NULL,
        degraded INTEGER NOT NULL DEFAULT 0,
        ok_jobs INTEGER NOT NULL DEFAULT 0,
        failed_jobs INTEGER NOT NULL DEFAULT 0,
        submitted_at REAL NOT NULL DEFAULT 0,
        detail TEXT NOT NULL DEFAULT ''
    );
    """

    def __init__(self, path: str):
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(path, check_same_thread=False)
            self._conn.executescript(self._SCHEMA)
            self._conn.commit()
        except sqlite3.DatabaseError:
            # The registry is derived state: a corrupt mirror is moved
            # aside and rebuilt from the journal, never fatal.
            try:
                self._conn.close()
            except Exception:
                pass
            os.replace(path, path + ".corrupt")
            self._conn = sqlite3.connect(path, check_same_thread=False)
            self._conn.executescript(self._SCHEMA)
            self._conn.commit()

    def upsert(self, record: CampaignRecord) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO campaigns VALUES (?,?,?,?,?,?,?,?,?,?)",
                (
                    record.campaign_id,
                    record.tenant,
                    json.dumps(record.plan, sort_keys=True),
                    record.total_jobs,
                    record.state,
                    int(record.degraded),
                    record.ok_jobs,
                    record.failed_jobs,
                    record.submitted_at,
                    record.detail,
                ),
            )
            self._conn.commit()

    def _from_row(self, row) -> CampaignRecord:
        return CampaignRecord(
            campaign_id=row[0],
            tenant=row[1],
            plan=json.loads(row[2]),
            total_jobs=row[3],
            state=row[4],
            degraded=bool(row[5]),
            ok_jobs=row[6],
            failed_jobs=row[7],
            submitted_at=row[8],
            detail=row[9],
        )

    def all(self) -> List[CampaignRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM campaigns ORDER BY submitted_at, campaign_id"
            ).fetchall()
        return [self._from_row(row) for row in rows]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


@dataclass
class BootState:
    """Durable state reconstructed at service boot."""

    journal: ServiceJournal
    registry: CampaignRegistry
    records: Dict[str, CampaignRecord] = field(default_factory=dict)


def boot(journal_path: str, registry_path: str, clock=time.time) -> BootState:
    """Recover durable state: journal is truth, registry the net.

    A campaign present only in the registry means the journal lost its
    tail (tear past that campaign's submission): we keep the registry
    row, re-journal it, and mark it interrupted if it was in flight —
    the supervisor will resume it like any other survivor.
    """
    journal = ServiceJournal(journal_path, clock=clock)
    registry = CampaignRegistry(registry_path)
    records = replay_records(journal.replayed)
    for record in registry.all():
        if record.campaign_id in records:
            continue
        if record.state not in TERMINAL_STATES:
            record.state = INTERRUPTED
            record.detail = "recovered from registry after journal tear"
        journal.append("submitted", campaign=record.to_dict())
        records[record.campaign_id] = record
    for record in records.values():
        registry.upsert(record)
    return BootState(journal=journal, registry=registry, records=records)
