"""A small stdlib client for the campaign service.

Used by the service's own tests, the chaos harness, and CI — one
shared implementation of submit / status / events / SSE so every
consumer exercises the same wire format a human with ``curl`` sees.
"""

from __future__ import annotations

import json
import socket
import time
from http.client import HTTPConnection
from typing import Dict, Iterator, List, Optional, Tuple


class ServiceError(RuntimeError):
    """A non-2xx response; carries status and decoded payload."""

    def __init__(self, status: int, payload: object):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class ServiceClient:
    """Blocking HTTP client for one campaign-service endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_ready_file(cls, path: str, timeout: float = 30.0) -> "ServiceClient":
        with open(path) as handle:
            info = json.load(handle)
        return cls(info["host"], info["port"], timeout=timeout)

    # -- plumbing -------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], dict]:
        """One round trip; JSON in, JSON out, never raises on 4xx/5xx."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload, headers=headers or {})
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"raw": raw.decode("latin-1")}
            return response.status, dict(response.getheaders()), decoded
        finally:
            conn.close()

    def _ok(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        status, _headers, payload = self.request(method, path, body)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -- API ------------------------------------------------------------

    def submit(self, plan: dict, tenant: str = "default") -> Tuple[int, dict]:
        """Submit a plan; returns ``(status, payload)`` — 429s included."""
        body = dict(plan)
        body["tenant"] = tenant
        status, _headers, payload = self.request("POST", "/v1/campaigns", body)
        return status, payload

    def status(self, campaign_id: str) -> dict:
        return self._ok("GET", f"/v1/campaigns/{campaign_id}")

    def list(self, tenant: Optional[str] = None) -> List[dict]:
        path = "/v1/campaigns"
        if tenant is not None:
            path += f"?tenant={tenant}"
        return self._ok("GET", path)["campaigns"]

    def results(self, campaign_id: str, kind: Optional[str] = None) -> List[dict]:
        path = f"/v1/campaigns/{campaign_id}/results"
        if kind is not None:
            path += f"?kind={kind}"
        return self._ok("GET", path)["results"]

    def metrics(self, campaign_id: str) -> dict:
        return self._ok("GET", f"/v1/campaigns/{campaign_id}/metrics")

    def events(self, campaign_id: str, after: int = 0, wait: float = 0.0) -> dict:
        return self._ok(
            "GET", f"/v1/campaigns/{campaign_id}/events?after={after}&wait={wait}"
        )

    def health(self) -> dict:
        return self._ok("GET", "/healthz")

    def wait(
        self, campaign_id: str, timeout: float = 120.0, poll: float = 0.2
    ) -> dict:
        """Poll until the campaign reaches a terminal/interrupted state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status["state"] in ("done", "failed", "interrupted"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {status['state']} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    # -- SSE ------------------------------------------------------------

    def stream(
        self,
        campaign_id: str,
        after: int = 0,
        limit: Optional[int] = None,
        timeout: float = 60.0,
    ) -> Iterator[dict]:
        """Yield ``{"seq": n, "event": {...}}`` frames from a live SSE
        stream until the final event, ``limit`` frames, or timeout."""
        conn = HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            conn.request(
                "GET",
                f"/v1/campaigns/{campaign_id}/events",
                headers={
                    "Accept": "text/event-stream",
                    "Last-Event-ID": str(after),
                },
            )
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(response.status, response.read().decode("latin-1"))
            yielded = 0
            seq = after
            data_lines: List[str] = []
            while True:
                try:
                    raw = response.fp.readline()
                except (socket.timeout, OSError):
                    return
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("id: "):
                    seq = int(line[4:])
                elif line.startswith("data: "):
                    data_lines.append(line[6:])
                elif line == "" and data_lines:
                    event = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield {"seq": seq, "event": event}
                    yielded += 1
                    if event.get("final") or (limit and yielded >= limit):
                        return
        finally:
            conn.close()
