"""The asyncio front-end: routes, SSE streaming, graceful shutdown.

The server is a thin, stdlib-only shell around the
:class:`~repro.service.supervisor.Supervisor`: HTTP parsing lives in
:mod:`repro.service.http`, state and durability in the supervisor,
and this module only maps routes to supervisor calls and manages the
two shutdown ladders:

* **SIGTERM/SIGINT (first)** — graceful drain: new submissions get
  503 + Retry-After, active runners stop cooperatively at the next
  batch boundary, journals flush, open SSE streams are allowed to
  deliver their final (interrupted or finished) event, then the
  process exits 0.
* **Second signal** — the operator means it: immediate ``os._exit``
  after a best-effort journal flush.

Store reads (results/metrics) run in the default executor so a slow
SQLite read never stalls the accept loop.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
from typing import Optional

from repro.runner.store import ResultStore, StoreBusy, StoreCorrupt
from repro.service import http as h
from repro.service import shards
from repro.service.supervisor import ServiceConfig, Supervisor

#: How long a long-poll waits for fresh events at most, seconds.
LONG_POLL_CAP = 30.0
#: Grace given to in-flight streams after drain completes, seconds.
STREAM_GRACE = 10.0

READY_FILE = "service.json"


class _App:
    """Route table + connection handler bound to one supervisor."""

    def __init__(self, supervisor: Supervisor):
        self.sup = supervisor
        self._conn_tasks: "set[asyncio.Task]" = set()

    # -- connection plumbing -------------------------------------------

    async def handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            try:
                request = await h.read_request(reader)
            except h.ProtocolError as exc:
                writer.write(h.error_response(exc.status, exc.detail))
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            try:
                await self.route(request, writer)
            except h.ProtocolError as exc:
                writer.write(h.error_response(exc.status, exc.detail))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # route bug: report, don't die
                writer.write(h.error_response(500, f"internal error: {exc}"))
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def wait_connections(self, timeout: float) -> None:
        tasks = [t for t in self._conn_tasks if t is not asyncio.current_task()]
        if tasks:
            await asyncio.wait(tasks, timeout=timeout)

    # -- routing --------------------------------------------------------

    async def route(self, req: h.Request, writer: asyncio.StreamWriter) -> None:
        parts = [p for p in req.path.split("/") if p]
        if req.path == "/healthz" and req.method == "GET":
            writer.write(h.json_response(200, self.sup.health()))
            return
        if parts[:1] != ["v1"] or len(parts) < 2 or parts[1] != "campaigns":
            writer.write(h.error_response(404, f"no such route {req.path!r}"))
            return

        if len(parts) == 2:
            if req.method == "POST":
                await self._submit(req, writer)
            elif req.method == "GET":
                tenant = req.query.get("tenant")
                writer.write(
                    h.json_response(
                        200, {"campaigns": self.sup.list_campaigns(tenant)}
                    )
                )
            else:
                writer.write(h.error_response(405, "use GET or POST"))
            return

        campaign_id = parts[2]
        record = self.sup.records.get(campaign_id)
        if record is None:
            writer.write(h.error_response(404, f"unknown campaign {campaign_id!r}"))
            return
        tail = parts[3] if len(parts) > 3 else ""
        if req.method != "GET":
            writer.write(h.error_response(405, "campaign resources are read-only"))
            return
        if tail == "":
            writer.write(h.json_response(200, record.status()))
        elif tail == "events":
            await self._events(req, writer, campaign_id)
        elif tail == "results":
            await self._from_store(req, writer, record, self._read_results)
        elif tail == "metrics":
            await self._from_store(req, writer, record, self._read_metrics)
        elif tail == "traces":
            self._traces(req, writer, record, parts[4] if len(parts) > 4 else "")
        else:
            writer.write(h.error_response(404, f"no such resource {tail!r}"))

    async def _submit(self, req: h.Request, writer: asyncio.StreamWriter) -> None:
        body = req.json()
        tenant = str(body.pop("tenant", req.headers.get("x-tenant", "default")))
        status, payload = self.sup.submit(body, tenant)
        if status in (429, 503):
            retry = payload.get("retry_after")
            writer.write(
                h.error_response(
                    status,
                    str(payload.get("error", "rejected")),
                    retry_after=float(retry) if retry else 1.0,
                )
            )
            return
        writer.write(h.json_response(status, payload))

    # -- stores ---------------------------------------------------------

    async def _from_store(self, req, writer, record, read_fn) -> None:
        path = shards.shard_store_path(
            self.sup.config.data_dir, record.tenant, record.campaign_id
        )
        if not os.path.exists(path):
            writer.write(h.error_response(404, "campaign has no results yet"))
            return
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(None, read_fn, path, req)
        except StoreBusy:
            writer.write(h.error_response(503, "result store busy", retry_after=1.0))
            return
        except StoreCorrupt as exc:
            writer.write(h.error_response(500, f"result store corrupt: {exc}"))
            return
        writer.write(h.json_response(200, payload))

    @staticmethod
    def _read_results(path: str, req: h.Request) -> dict:
        with ResultStore(path) as store:
            pairs = store.payloads(kind=req.query.get("kind"))
            return {
                "results": [
                    {"job_id": spec.job_id, "label": spec.label, "payload": payload}
                    for spec, payload in pairs
                ]
            }

    @staticmethod
    def _read_metrics(path: str, req: h.Request) -> dict:
        del req
        with ResultStore(path) as store:
            summary = store.summary()
            by_kind: dict = {}
            for spec, _payload in store.payloads():
                by_kind[spec.kind] = by_kind.get(spec.kind, 0) + 1
            return {
                "summary": {
                    "total": summary.total,
                    "done": summary.done,
                    "failed": summary.failed,
                    "pending": summary.pending,
                },
                "completed_by_kind": by_kind,
            }

    def _traces(self, req, writer, record, name: str) -> None:
        tdir = shards.trace_dir_path(
            self.sup.config.data_dir, record.tenant, record.campaign_id
        )
        if not name:
            entries = sorted(os.listdir(tdir)) if os.path.isdir(tdir) else []
            writer.write(h.json_response(200, {"traces": entries}))
            return
        if "/" in name or name.startswith("."):
            writer.write(h.error_response(400, "invalid trace name"))
            return
        path = os.path.join(tdir, name)
        if not os.path.isfile(path):
            writer.write(h.error_response(404, f"no trace {name!r}"))
            return
        with open(path, "rb") as handle:
            writer.write(
                h.render_response(200, handle.read(), content_type="application/json")
            )

    # -- events: SSE + long-poll ---------------------------------------

    async def _events(self, req, writer, campaign_id: str) -> None:
        stream = self.sup.stream(campaign_id)
        if stream is None:
            writer.write(h.error_response(404, f"unknown campaign {campaign_id!r}"))
            return
        after = 0
        raw_after = req.headers.get("last-event-id", req.query.get("after", "0"))
        try:
            after = int(raw_after)
        except ValueError:
            raise h.ProtocolError(400, f"bad event cursor {raw_after!r}")

        if req.wants_sse():
            await self._events_sse(writer, campaign_id, stream, after)
            return

        # Long-poll fallback: return immediately when there are events
        # (or wait=0); otherwise wait up to `wait` seconds for news.
        try:
            wait = min(float(req.query.get("wait", "0")), LONG_POLL_CAP)
        except ValueError:
            raise h.ProtocolError(400, "bad wait value")
        events = stream.read(after)
        if not events and wait > 0:
            queue = stream.subscribe()
            try:
                await asyncio.wait_for(queue.get(), timeout=wait)
            except asyncio.TimeoutError:
                pass
            finally:
                stream.unsubscribe(queue)
            events = stream.read(after)
        next_cursor = events[-1]["seq"] if events else after
        writer.write(h.json_response(200, {"events": events, "next": next_cursor}))

    async def _events_sse(self, writer, campaign_id, stream, after: int) -> None:
        writer.write(h.SSE_PREAMBLE)
        queue = stream.subscribe()
        try:
            last = after
            for record in stream.read(after):
                writer.write(h.sse_frame(record["seq"], record["event"]))
                last = record["seq"]
                if record["event"].get("final"):
                    return
            await writer.drain()
            while True:
                record = await queue.get()
                if record["seq"] <= last:
                    continue
                writer.write(h.sse_frame(record["seq"], record["event"]))
                last = record["seq"]
                await writer.drain()
                if record["event"].get("final"):
                    return
        finally:
            stream.unsubscribe(queue)


async def serve_async(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_file: Optional[str] = None,
    supervisor: Optional[Supervisor] = None,
) -> int:
    """Run the service until a signal drains it; returns exit code."""
    sup = supervisor if supervisor is not None else Supervisor(config)
    loop = asyncio.get_running_loop()
    sup.attach_loop(loop)
    app = _App(sup)

    server = await asyncio.start_server(
        app.handle, host=host, port=port, family=socket.AF_INET
    )
    bound_port = server.sockets[0].getsockname()[1]

    stop = asyncio.Event()
    signal_count = 0

    def on_signal() -> None:
        nonlocal signal_count
        signal_count += 1
        if signal_count == 1:
            stop.set()
        else:
            # Second signal: the operator wants out NOW.  The journal
            # is fsynced on every append, so there is nothing to save.
            os._exit(130)

    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, on_signal)

    path = ready_file or os.path.join(config.data_dir, READY_FILE)
    with open(path, "w") as handle:
        json.dump({"host": host, "port": bound_port, "pid": os.getpid()}, handle)
    print(f"repro service listening on http://{host}:{bound_port}", flush=True)

    resumed = sup.resume_pending()
    if resumed:
        print(f"resumed {len(resumed)} campaign(s) from journal", flush=True)

    await stop.wait()
    print("draining: refusing new submissions, stopping runners", flush=True)
    sup.begin_drain()
    drained = await loop.run_in_executor(None, sup.run_until_idle, 60.0)
    # Let open SSE streams deliver their final frames before closing.
    await app.wait_connections(STREAM_GRACE)
    server.close()
    await server.wait_closed()
    sup.close()
    try:
        os.remove(path)
    except OSError:
        pass
    print("drained, exiting", flush=True)
    return 0 if drained else 1


def serve(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_file: Optional[str] = None,
) -> int:
    """Blocking entry point: run the service until drained; exit code."""
    return asyncio.run(serve_async(config, host=host, port=port, ready_file=ready_file))
