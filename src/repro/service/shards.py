"""Sharded result stores and byte-stable compaction.

Each campaign writes to its own SQLite store under the tenant's
directory::

    <data-dir>/tenants/<tenant>/<campaign-id>/store.sqlite
                                              events.jsonl
                                              traces/

One store per campaign means a hot campaign never holds the writer
lock over another tenant's results, and a torn shard loses one
campaign's progress, not the service's.

:func:`compact` folds shards into a single **byte-stable** aggregate:
building it with a pinned clock, wall times stripped, specs
normalized (trace destinations removed — they are placement, not
identity) and insertion following a canonical order makes the output
file a pure function of the logical results.  That is the property
the kill-and-restart invariant leans on: a chaos-interrupted,
resumed service compacts to the *same sha256* as an uninterrupted
run — and as a plain ``repro campaign`` CLI store of the same plan.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runner.jobs import JobSpec
from repro.runner.store import FAILED, ResultStore

STORE_NAME = "store.sqlite"
EVENTS_NAME = "events.jsonl"
TRACES_NAME = "traces"


def tenant_dir(data_dir: str, tenant: str) -> str:
    """Root of one tenant's campaign shards."""
    return os.path.join(data_dir, "tenants", tenant)


def campaign_dir(data_dir: str, tenant: str, campaign_id: str) -> str:
    """Directory holding one campaign's store, events and traces."""
    return os.path.join(tenant_dir(data_dir, tenant), campaign_id)


def shard_store_path(data_dir: str, tenant: str, campaign_id: str) -> str:
    """The campaign's private SQLite result store."""
    return os.path.join(campaign_dir(data_dir, tenant, campaign_id), STORE_NAME)


def event_log_path(data_dir: str, tenant: str, campaign_id: str) -> str:
    """The campaign's seq-numbered JSONL event log."""
    return os.path.join(campaign_dir(data_dir, tenant, campaign_id), EVENTS_NAME)


def trace_dir_path(data_dir: str, tenant: str, campaign_id: str) -> str:
    """Where the campaign's trace artefacts land when tracing is on."""
    return os.path.join(campaign_dir(data_dir, tenant, campaign_id), TRACES_NAME)


def iter_shards(data_dir: str) -> List[Tuple[str, str, str]]:
    """All ``(tenant, campaign_id, store_path)`` triples, sorted.

    The sort order — tenant, then campaign ID — is part of the
    compaction contract: it fixes aggregate insertion order no matter
    in what order campaigns ran or finished.
    """
    shards: List[Tuple[str, str, str]] = []
    root = os.path.join(data_dir, "tenants")
    if not os.path.isdir(root):
        return shards
    for tenant in sorted(os.listdir(root)):
        tenant_path = os.path.join(root, tenant)
        if not os.path.isdir(tenant_path):
            continue
        for campaign_id in sorted(os.listdir(tenant_path)):
            store_path = os.path.join(tenant_path, campaign_id, STORE_NAME)
            if os.path.exists(store_path):
                shards.append((tenant, campaign_id, store_path))
    return shards


def file_sha256(path: str) -> str:
    """The sha256 hex digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class CompactReport:
    """What a compaction produced."""

    out_path: str
    sources: int
    jobs: int
    ok: int
    failed: int
    sha256: str

    def render(self) -> str:
        return (
            f"compacted {self.sources} shard(s) -> {self.out_path}\n"
            f"  jobs {self.jobs}, ok {self.ok}, failed {self.failed}\n"
            f"  sha256 {self.sha256}"
        )


def _normalize(spec: JobSpec) -> JobSpec:
    # trace_dir is an absolute artefact path — scrubbing it keeps the
    # aggregate independent of where the data dir happened to live.
    if spec.trace_dir is None:
        return spec
    return replace(spec, trace_dir=None)


def compact(store_paths: Sequence[str], out_path: str) -> CompactReport:
    """Fold result stores into one deterministic aggregate store.

    First occurrence wins when the same job ID appears in several
    shards (identical jobs produce identical payloads, so the choice
    only matters for determinism, not content).  The aggregate is
    built with a pinned clock, no wall times, and specs inserted in
    job-ID order — a content-derived total order, so the output file
    is a pure function of the logical result *set*, independent of
    how any source happened to register its jobs.  A service shard
    and a CLI ``repro campaign`` store of the same plan therefore
    compact to byte-identical files even though their planners walk
    the matrix in different orders.
    """
    ordered_specs: List[JobSpec] = []
    payload_of: Dict[str, dict] = {}
    status_of: Dict[str, str] = {}
    seen: set = set()
    for path in store_paths:
        with ResultStore(path) as source:
            statuses = source.statuses()
            for spec in source.specs():
                job_id = spec.job_id
                if job_id not in seen:
                    seen.add(job_id)
                    ordered_specs.append(_normalize(spec))
                    status_of[job_id] = statuses.get(job_id, "")
                if job_id not in payload_of:
                    payload = source.payload(job_id)
                    if payload is not None:
                        payload_of[job_id] = payload

    ordered_specs.sort(key=lambda spec: spec.job_id)

    if os.path.exists(out_path):
        os.remove(out_path)
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    ok = failed = 0
    with ResultStore(out_path, clock=lambda: 0.0) as out:
        out.register(ordered_specs)
        for spec in ordered_specs:
            job_id = spec.job_id
            payload = payload_of.get(job_id)
            if payload is not None:
                out.record_success(job_id, payload, wall_time=None)
                ok += 1
            elif status_of.get(job_id) == FAILED:
                out.record_failure(job_id)
                failed += 1
        out.flush()
    return CompactReport(
        out_path=out_path,
        sources=len(store_paths),
        jobs=len(ordered_specs),
        ok=ok,
        failed=failed,
        sha256=file_sha256(out_path),
    )


def compact_data_dir(
    data_dir: str, out_path: Optional[str] = None
) -> CompactReport:
    """Compact every shard under a service data directory."""
    shards = iter_shards(data_dir)
    if out_path is None:
        out_path = os.path.join(data_dir, "compacted.sqlite")
    return compact([path for _, _, path in shards], out_path)
