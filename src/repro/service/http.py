"""Hand-rolled HTTP/1.1 + SSE primitives over asyncio streams.

The service speaks a deliberately small slice of HTTP: one request per
connection (``Connection: close``), JSON bodies sized by
``Content-Length``, and ``text/event-stream`` responses for progress
streaming.  Rolling it by hand keeps the server stdlib-only — the
repository's hard rule — and the slice is small enough that the parser
fits on a page.

Limits are enforced up front (request line, header count, body size)
so a misbehaving client is shed with a 4xx instead of growing buffers
unboundedly — the same backpressure philosophy as the quota layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional
from urllib.parse import parse_qs, unquote, urlsplit

#: Protocol limits: exceeding any of them is a client error, not a
#: server buffer.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_HEADERS = 100
MAX_BODY = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A malformed or over-limit request; carries the response status."""

    def __init__(self, status: int, detail: str):
        self.status = status
        self.detail = detail
        super().__init__(detail)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)  # lower-cased names
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (400 on anything else)."""
        if not self.body:
            raise ProtocolError(400, "expected a JSON body")
        try:
            value = json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(value, dict):
            raise ProtocolError(400, "body must be a JSON object")
        return value

    def wants_sse(self) -> bool:
        accept = self.headers.get("accept", "")
        return "text/event-stream" in accept or self.query.get("sse") == "1"


async def read_request(reader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a closed socket."""
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, "malformed request line")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(raw)
        if len(headers) >= MAX_HEADERS or header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(400, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise ProtocolError(400, "malformed Content-Length") from exc
    if length < 0 or length > MAX_BODY:
        raise ProtocolError(413, f"body exceeds {MAX_BODY} bytes")
    body = await reader.readexactly(length) if length else b""

    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    return Request(
        method=method,
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A complete HTTP/1.1 response (Connection: close)."""
    text = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {text}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int,
    payload: object,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A full HTTP response with a canonical-JSON body."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return render_response(status, body, extra_headers=extra_headers)


def error_response(
    status: int, detail: str, retry_after: Optional[float] = None
) -> bytes:
    """The uniform error shape; 429/503 carry ``Retry-After``."""
    headers = {}
    payload: Dict[str, object] = {"error": detail}
    if retry_after is not None:
        # Ceil to a whole second: Retry-After is integral in HTTP.
        seconds = max(1, int(retry_after) + (retry_after % 1 > 0))
        headers["Retry-After"] = str(seconds)
        payload["retry_after"] = seconds
    return json_response(status, payload, extra_headers=headers)


#: Response head opening an SSE stream (no Content-Length: the stream
#: ends when the connection closes).
SSE_PREAMBLE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-store\r\n"
    b"Connection: close\r\n\r\n"
)


def sse_frame(seq: int, data: object) -> bytes:
    """One SSE event; ``id:`` carries the ack/resume sequence number."""
    return (
        f"id: {seq}\ndata: {json.dumps(data, sort_keys=True)}\n\n".encode()
    )
