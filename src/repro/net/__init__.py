"""A minimal simulated network (listeners, connections, shells).

The XSA-148-priv use case needs one observable: a reverse shell
connecting from the compromised host to the attacker's ``nc -l``
listener, able to run commands as root (paper §VI-C.3).  This module
provides exactly that: hosts are plain strings, a listener collects
connections, and a connection carries a :class:`Shell` whose command
interpreter understands the commands the paper's transcript uses
(``whoami``, ``hostname``, ``id``, ``cat``) plus ``&&`` chaining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain


class Shell:
    """A command shell bound to a domain with fixed credentials."""

    def __init__(self, domain: "Domain", uid: int):
        self.domain = domain
        self.uid = uid

    @property
    def username(self) -> str:
        return "root" if self.uid == 0 else f"uid{self.uid}"

    def run(self, command_line: str) -> str:
        """Run a (possibly ``&&``-chained) command line."""
        outputs = []
        for command in command_line.split("&&"):
            outputs.append(self._run_one(command.strip()))
        return "\n".join(outputs)

    def _run_one(self, command: str) -> str:
        from repro.guest.filesystem import FileAccessError

        kernel = self.domain.kernel
        if command == "whoami":
            return self.username
        if command == "hostname":
            return self.domain.hostname
        if command == "id":
            from repro.guest.process import Credentials

            creds = Credentials(uid=self.uid, gid=self.uid, username=self.username)
            return creds.id_string()
        if command.startswith("cat "):
            path = command[len("cat "):].strip()
            if kernel is None:
                return f"cat: {path}: no kernel"
            try:
                return kernel.fs.read(path, uid=self.uid)
            except FileAccessError as exc:
                return f"cat: {exc}"
        if command.startswith("echo "):
            return command[len("echo "):].strip().strip('"')
        if command.startswith("xl ") or command == "xl":
            return self._run_xl(command)
        return f"sh: {command.split()[0] if command else ''}: command not found"

    def _run_xl(self, command: str) -> str:
        """The management toolstack, reachable from a root shell on the
        control domain — which is exactly what makes a dom0 compromise
        (XSA-148-priv) so consequential."""
        from repro.tools.xl import XlError, XlToolstack

        if self.uid != 0:
            return "xl: permission denied (need root)"
        if kernel := self.domain.kernel:
            toolstack = XlToolstack(kernel.xen, self.domain)
            try:
                return toolstack.run(command[len("xl "):].strip())
            except XlError as exc:
                return str(exc)
        return "xl: no kernel"


@dataclass
class Connection:
    """An established TCP-ish connection carrying a shell."""

    from_host: str
    to_host: str
    port: int
    shell: Shell
    transcript: List[Tuple[str, str]] = field(default_factory=list)

    def run(self, command_line: str) -> str:
        output = self.shell.run(command_line)
        self.transcript.append((command_line, output))
        return output


@dataclass
class Listener:
    """The attacker's ``nc -l -p <port>``."""

    host: str
    port: int
    connections: List[Connection] = field(default_factory=list)

    @property
    def connected(self) -> bool:
        return bool(self.connections)

    def latest(self) -> Optional[Connection]:
        return self.connections[-1] if self.connections else None


class Network:
    """All listeners and connections of one testbed."""

    def __init__(self):
        self._listeners: Dict[Tuple[str, int], Listener] = {}
        self.connections: List[Connection] = []

    def listen(self, host: str, port: int) -> Listener:
        listener = Listener(host=host, port=port)
        self._listeners[(host, port)] = listener
        return listener

    def connect(
        self, from_host: str, to_host: str, port: int, shell: Shell
    ) -> Optional[Connection]:
        """Attempt a connection; ``None`` if nobody is listening."""
        listener = self._listeners.get((to_host, port))
        if listener is None:
            return None
        connection = Connection(
            from_host=from_host, to_host=to_host, port=port, shell=shell
        )
        listener.connections.append(connection)
        self.connections.append(connection)
        return connection

    def listener(self, host: str, port: int) -> Optional[Listener]:
        return self._listeners.get((host, port))
