"""Domains (virtual machines) and virtual CPUs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import EINVAL, HypercallError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guest.kernel import GuestKernel


@dataclass
class VCPU:
    """One virtual CPU of a domain."""

    vcpu_id: int
    #: MFN of the currently loaded top-level page table (like CR3).
    cr3_mfn: Optional[int] = None
    #: PV trap table: vector -> guest handler tag.  Registered through
    #: the ``set_trap_table`` hypercall; the simulator stores a symbolic
    #: handler name the guest kernel dispatches on.
    trap_table: Dict[int, str] = field(default_factory=dict)


class Domain:
    """A PV guest (or the control domain, dom0)."""

    def __init__(
        self,
        domid: int,
        name: str,
        hostname: str,
        is_privileged: bool,
        num_vcpus: int = 1,
    ):
        self.id = domid
        self.name = name
        self.hostname = hostname
        self.is_privileged = is_privileged
        self.vcpus: List[VCPU] = [VCPU(vcpu_id=i) for i in range(num_vcpus)]
        #: Pseudo-physical to machine mapping (index = PFN).
        #: ``None`` entries are holes (ballooned-out pages).
        self.p2m: List[Optional[int]] = []
        self.start_info_mfn: Optional[int] = None
        self.shared_info_mfn: Optional[int] = None
        #: Set by the testbed once the guest kernel is built.
        self.kernel: Optional["GuestKernel"] = None
        #: True once the hypervisor has destroyed the domain.
        self.dead = False
        #: True while the toolstack has the domain paused.
        self.paused = False

    # -- vcpus -------------------------------------------------------------

    @property
    def current_vcpu(self) -> VCPU:
        return self.vcpus[0]

    def vcpu(self, vcpu_id: int) -> VCPU:
        if not 0 <= vcpu_id < len(self.vcpus):
            raise HypercallError(EINVAL, f"no vcpu {vcpu_id} in d{self.id}")
        return self.vcpus[vcpu_id]

    # -- pseudo-physical memory ----------------------------------------------

    @property
    def num_pages(self) -> int:
        return sum(1 for mfn in self.p2m if mfn is not None)

    def pfn_to_mfn(self, pfn: int) -> int:
        if not 0 <= pfn < len(self.p2m):
            raise HypercallError(EINVAL, f"pfn {pfn:#x} out of range for d{self.id}")
        mfn = self.p2m[pfn]
        if mfn is None:
            raise HypercallError(EINVAL, f"pfn {pfn:#x} is a hole in d{self.id}")
        return mfn

    def mfn_to_pfn(self, mfn: int) -> Optional[int]:
        for pfn, owned in enumerate(self.p2m):
            if owned == mfn:
                return pfn
        return None

    def owns_mfn(self, mfn: int) -> bool:
        return self.mfn_to_pfn(mfn) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dom0" if self.is_privileged else "domU"
        return f"<Domain d{self.id} {self.name!r} ({kind}, {self.num_pages} pages)>"
