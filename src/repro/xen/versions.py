"""Version configurations for the simulated hypervisor.

The paper evaluates three Xen releases.  In the simulator, a release is
a :class:`XenVersion`: a set of *vulnerabilities* still present in the
code base plus a set of *hardening* measures.  Every version-gated
check in the substrate consults these flags, so ablation experiments
can toggle individual fixes with :meth:`XenVersion.derive`.

The shipped configurations reproduce the paper's setting:

* **Xen 4.6** — vulnerable to XSA-148, XSA-182 and XSA-212.
* **Xen 4.8** — those three fixed; no extra hardening.
* **Xen 4.13** — fixed *and* hardened with the post-XSA-213..215
  changes (paper §VIII): the 512 GiB RWX linear-page-table alias is
  gone and guest accesses through linear/self page-table mappings are
  restricted.

The 2021 grant-table issues XSA-387/XSA-393 (used by the paper's §IV-B
intrusion-model example) post-date all three releases, so all three
carry them; the hypothetical ``XEN_4_16`` configuration has them fixed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional


class Vulnerability(enum.Enum):
    """Known defects the simulator can reproduce, by advisory id."""

    #: Missing check on L2 PTE ``_PAGE_PSE`` → guest-writable superpage
    #: over arbitrary machine memory (CVE-2015-7835).
    XSA_148 = "XSA-148"
    #: Faulty fast path for flag-only L4 updates skips re-validation →
    #: writable self-mapping L4 entries (CVE-2016-6258).
    XSA_182 = "XSA-182"
    #: ``memory_exchange()`` misses the bounds check on the output
    #: handle → arbitrary 8-byte write at a guest-chosen hypervisor
    #: linear address (CVE-2017-7228).
    XSA_212 = "XSA-212"
    #: Grant-table v2 status pages not released on version switch →
    #: guest keeps a reference to a freed Xen page (CVE-2021-28701).
    XSA_387 = "XSA-387"
    #: ``XENMEM_decrease_reservation`` after a cache-maintenance race
    #: leaves a stale mapping → guest keeps page access (Arm,
    #: CVE-2021-28700; modelled architecture-neutrally here).
    XSA_393 = "XSA-393"


class Hardening(enum.Enum):
    """Defence-in-depth measures (paper §VIII attributes them to 4.9+)."""

    #: The 512 GiB RWX alias of machine memory at 0xffff804000000000 is
    #: no longer mapped (into guests or the hypervisor).
    LINEAR_PT_ALIAS_REMOVED = "linear-pt-alias-removed"
    #: Guest linear accesses that reach a page-table frame *through* a
    #: linear/self mapping (an L4/L3 table appearing at a lower level of
    #: the walk) fault instead of being honoured.
    LINEAR_PT_RESTRICTED = "linear-pt-restricted"


@dataclass(frozen=True)
class XenVersion:
    """An immutable description of one hypervisor build."""

    name: str
    release_year: int
    vulnerabilities: FrozenSet[Vulnerability] = field(default_factory=frozenset)
    hardening: FrozenSet[Hardening] = field(default_factory=frozenset)

    def has_vuln(self, vuln: Vulnerability) -> bool:
        return vuln in self.vulnerabilities

    def has_hardening(self, measure: Hardening) -> bool:
        return measure in self.hardening

    def derive(
        self,
        name: Optional[str] = None,
        add_vulns: Iterable[Vulnerability] = (),
        remove_vulns: Iterable[Vulnerability] = (),
        add_hardening: Iterable[Hardening] = (),
        remove_hardening: Iterable[Hardening] = (),
    ) -> "XenVersion":
        """Return a modified copy — the ablation-study entry point."""
        vulns = (set(self.vulnerabilities) | set(add_vulns)) - set(remove_vulns)
        hard = (set(self.hardening) | set(add_hardening)) - set(remove_hardening)
        return XenVersion(
            name=name or f"{self.name}*",
            release_year=self.release_year,
            vulnerabilities=frozenset(vulns),
            hardening=frozenset(hard),
        )

    def __str__(self) -> str:
        return f"Xen {self.name}"


_GRANT_TABLE_VULNS = frozenset({Vulnerability.XSA_387, Vulnerability.XSA_393})

XEN_4_6 = XenVersion(
    name="4.6",
    release_year=2015,
    vulnerabilities=frozenset(
        {Vulnerability.XSA_148, Vulnerability.XSA_182, Vulnerability.XSA_212}
    )
    | _GRANT_TABLE_VULNS,
)

XEN_4_8 = XenVersion(
    name="4.8",
    release_year=2016,
    vulnerabilities=_GRANT_TABLE_VULNS,
)

#: The release where the post-XSA-213..215 hardening first shipped —
#: the paper (§VIII) traces 4.13's different behaviour to "a security
#: hardening performed on the Xen 4.9 code".  Not part of the paper's
#: evaluated set, but useful for pinpointing the behavioural boundary.
XEN_4_9 = XenVersion(
    name="4.9",
    release_year=2017,
    vulnerabilities=_GRANT_TABLE_VULNS,
    hardening=frozenset(
        {Hardening.LINEAR_PT_ALIAS_REMOVED, Hardening.LINEAR_PT_RESTRICTED}
    ),
)

XEN_4_13 = XenVersion(
    name="4.13",
    release_year=2019,
    vulnerabilities=_GRANT_TABLE_VULNS,
    hardening=frozenset(
        {Hardening.LINEAR_PT_ALIAS_REMOVED, Hardening.LINEAR_PT_RESTRICTED}
    ),
)

#: Hypothetical future release with the grant-table issues fixed too;
#: used by the grant-table intrusion-model example.
XEN_4_16 = XenVersion(
    name="4.16",
    release_year=2021,
    vulnerabilities=frozenset(),
    hardening=frozenset(
        {Hardening.LINEAR_PT_ALIAS_REMOVED, Hardening.LINEAR_PT_RESTRICTED}
    ),
)

ALL_VERSIONS = (XEN_4_6, XEN_4_8, XEN_4_13)

_BY_NAME = {
    v.name: v for v in (XEN_4_6, XEN_4_8, XEN_4_9, XEN_4_13, XEN_4_16)
}


def version_by_name(name: str) -> XenVersion:
    """Look up a shipped configuration (``"4.6"``, ``"4.8"``, ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown Xen version {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
