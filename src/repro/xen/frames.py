"""Xen's frame table: per-frame ownership, reference counts, page types.

This mirrors the mechanism at the heart of PV memory safety (and of
all three vulnerabilities the paper reproduces): every machine frame
has a *type* (none, L1..L4 page table, or writable data), a type
reference count, and a general reference count.  A frame can only be
used as a page table after *validation* promotes it to the matching
type, and a frame that is a page table can never simultaneously hold a
writable mapping — unless a validation bug lets one through, which is
exactly what XSA-148 and XSA-182 were.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import EBUSY, EINVAL, EPERM, HypercallError
from repro.probes import points as probe_points
from repro.xen.machine import Machine


class PageType(enum.Enum):
    """The usable type of a machine frame (Xen's ``PGT_*``)."""

    NONE = "none"
    L1 = "l1_page_table"
    L2 = "l2_page_table"
    L3 = "l3_page_table"
    L4 = "l4_page_table"
    WRITABLE = "writable"
    SEG_DESC = "seg_descriptor"

    @property
    def is_pagetable(self) -> bool:
        return self in _PAGETABLE_TYPES

    @property
    def level(self) -> int:
        """Page-table level (1..4); 0 for non-pagetable types."""
        return _LEVELS.get(self, 0)


_PAGETABLE_TYPES = {PageType.L1, PageType.L2, PageType.L3, PageType.L4}
_LEVELS = {PageType.L1: 1, PageType.L2: 2, PageType.L3: 3, PageType.L4: 4}

PAGETABLE_TYPE_BY_LEVEL = {
    1: PageType.L1,
    2: PageType.L2,
    3: PageType.L3,
    4: PageType.L4,
}


@dataclass
class PageInfo:
    """Book-keeping record for one machine frame."""

    mfn: int
    owner: Optional[int] = None  # domain id, DOMID_XEN, or None (free)
    count: int = 0  # general references
    type: PageType = PageType.NONE
    type_count: int = 0
    validated: bool = False
    pinned: bool = False
    #: PFN inside the owner's pseudo-physical space, if assigned.
    pfn: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)


#: Signature of the validation hook: ``validate(mfn, level)`` must raise
#: :class:`~repro.errors.HypercallError` if the frame's current contents
#: are not a legal level-``level`` page table.
Validator = Callable[[int, int], None]


class FrameTable:
    """Per-frame metadata plus the get/put type machinery."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._info: Dict[int, PageInfo] = {}
        self._p_frame_ref = machine.probes.point(probe_points.FRAME_REF)
        self._p_frame_type = machine.probes.point(probe_points.FRAME_TYPE)

    def info(self, mfn: int) -> PageInfo:
        self.machine.check_mfn(mfn)
        record = self._info.get(mfn)
        if record is None:
            record = PageInfo(mfn=mfn)
            self._info[mfn] = record
        return record

    # -- ownership -----------------------------------------------------------

    def assign(self, mfn: int, owner: int, pfn: Optional[int] = None) -> None:
        record = self.info(mfn)
        record.owner = owner
        record.pfn = pfn

    def release(self, mfn: int) -> None:
        record = self.info(mfn)
        if record.count or record.type_count:
            raise HypercallError(EBUSY, f"mfn {mfn:#x} still referenced")
        self._info[mfn] = PageInfo(mfn=mfn)

    def owner_of(self, mfn: int) -> Optional[int]:
        return self.info(mfn).owner

    # -- general references ----------------------------------------------------

    def get_page(self, mfn: int, domid: int, allow_foreign: bool = False) -> None:
        """Take a general reference on behalf of ``domid``."""
        record = self.info(mfn)
        if record.owner is None:
            raise HypercallError(EINVAL, f"mfn {mfn:#x} is unowned")
        if record.owner != domid and not allow_foreign:
            raise HypercallError(
                EPERM, f"mfn {mfn:#x} owned by d{record.owner}, not d{domid}"
            )
        record.count += 1
        point = self._p_frame_ref
        if point.subs:
            point.fire("get", mfn, record.count)

    def put_page(self, mfn: int) -> None:
        record = self.info(mfn)
        if record.count <= 0:
            raise HypercallError(EINVAL, f"mfn {mfn:#x} reference underflow")
        record.count -= 1
        point = self._p_frame_ref
        if point.subs:
            point.fire("put", mfn, record.count)

    # -- typed references --------------------------------------------------------

    def get_page_type(
        self,
        mfn: int,
        wanted: PageType,
        validator: Optional[Validator] = None,
    ) -> None:
        """Take a typed reference, validating on first use.

        Mirrors Xen's ``get_page_type()``: if the frame currently has no
        type, it is promoted to ``wanted`` (running the validator for
        page-table types); if it already has a *different* type with
        outstanding references, the request fails — that is the
        invariant that keeps page tables unwritable.
        """
        record = self.info(mfn)
        if record.type_count == 0 or record.type == PageType.NONE:
            if wanted.is_pagetable and validator is not None:
                validator(mfn, wanted.level)
            old_type = record.type
            record.type = wanted
            record.type_count = 1
            record.validated = wanted.is_pagetable
            point = self._p_frame_type
            if point.subs:
                point.fire(mfn, old_type, wanted)
            refs = self._p_frame_ref
            if refs.subs:
                refs.fire("get_type", mfn, record.type_count)
            return
        if record.type != wanted:
            raise HypercallError(
                EBUSY,
                f"mfn {mfn:#x} is {record.type.value} "
                f"(refs={record.type_count}), wanted {wanted.value}",
            )
        record.type_count += 1
        point = self._p_frame_ref
        if point.subs:
            point.fire("get_type", mfn, record.type_count)

    def put_page_type(self, mfn: int) -> None:
        record = self.info(mfn)
        if record.type_count <= 0:
            raise HypercallError(EINVAL, f"mfn {mfn:#x} type underflow")
        record.type_count -= 1
        point = self._p_frame_ref
        if point.subs:
            point.fire("put_type", mfn, record.type_count)
        if record.type_count == 0 and not record.pinned:
            old_type = record.type
            record.type = PageType.NONE
            record.validated = False
            types = self._p_frame_type
            if types.subs:
                types.fire(mfn, old_type, PageType.NONE)

    # -- pinning --------------------------------------------------------------

    def pin(self, mfn: int, wanted: PageType, validator: Optional[Validator]) -> None:
        record = self.info(mfn)
        if record.pinned:
            raise HypercallError(EINVAL, f"mfn {mfn:#x} already pinned")
        self.get_page_type(mfn, wanted, validator)
        record.pinned = True

    def unpin(self, mfn: int) -> None:
        record = self.info(mfn)
        if not record.pinned:
            raise HypercallError(EINVAL, f"mfn {mfn:#x} not pinned")
        record.pinned = False
        self.put_page_type(mfn)

    # -- queries ---------------------------------------------------------------

    def is_pagetable(self, mfn: int) -> bool:
        return self.info(mfn).type.is_pagetable

    def pagetable_level(self, mfn: int) -> int:
        return self.info(mfn).type.level

    def iter_pagetables(self):
        """Yield ``(mfn, PageInfo)`` for every currently typed page
        table (used by integrity-checking defences)."""
        for mfn, record in self._info.items():
            if record.type.is_pagetable:
                yield mfn, record
