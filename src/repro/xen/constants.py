"""Architectural constants of the simulated x86-64 / Xen PV machine.

The simulator models memory at 64-bit-word granularity: a page is
4 KiB = 512 words of 8 bytes, which is exactly the layout of an x86-64
page table, so page-table frames and data frames share one
representation.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Page geometry
# ---------------------------------------------------------------------------

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4096 bytes
WORD_SIZE = 8
WORDS_PER_PAGE = PAGE_SIZE // WORD_SIZE  # 512
ENTRIES_PER_TABLE = 512

#: Size in bytes of the region covered by one entry at each level.
L1_COVERAGE = PAGE_SIZE  # 4 KiB
L2_COVERAGE = L1_COVERAGE * ENTRIES_PER_TABLE  # 2 MiB
L3_COVERAGE = L2_COVERAGE * ENTRIES_PER_TABLE  # 1 GiB
L4_COVERAGE = L3_COVERAGE * ENTRIES_PER_TABLE  # 512 GiB

# ---------------------------------------------------------------------------
# Page-table entry flags (x86-64 layout)
# ---------------------------------------------------------------------------

PTE_PRESENT = 1 << 0
PTE_RW = 1 << 1
PTE_USER = 1 << 2
PTE_PWT = 1 << 3
PTE_PCD = 1 << 4
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
PTE_PSE = 1 << 7  # superpage at L2/L3
PTE_GLOBAL = 1 << 8
#: Software-available bit the simulated Xen uses to tag its own special
#: region descriptors inside the shared upper-half tables.
PTE_XEN_SPECIAL = 1 << 9
PTE_AVAIL1 = 1 << 10
PTE_AVAIL2 = 1 << 11
PTE_NX = 1 << 63

PTE_FLAGS_MASK = 0xFFF | PTE_NX
PTE_MFN_MASK = 0x000F_FFFF_FFFF_F000

#: Kind codes stored in bits 52..55 of a PTE_XEN_SPECIAL descriptor.
XEN_SPECIAL_SHIFT = 52
XEN_SPECIAL_MASK = 0xF << XEN_SPECIAL_SHIFT
XEN_SPECIAL_RO_MPT = 1  # read-only machine-to-phys window
XEN_SPECIAL_LINEAR_ALIAS = 2  # the RWX linear-page-table alias (pre-4.9)

# ---------------------------------------------------------------------------
# Hypercall numbers (subset of the real PV ABI, same numbering)
# ---------------------------------------------------------------------------

HYPERCALL_MMU_UPDATE = 1
HYPERCALL_SET_TRAP_TABLE = 2
HYPERCALL_CONSOLE_IO = 18
HYPERCALL_GRANT_TABLE_OP = 20
HYPERCALL_VCPU_OP = 24
HYPERCALL_MMUEXT_OP = 26
HYPERCALL_EVENT_CHANNEL_OP = 32
HYPERCALL_MEMORY_OP = 12
#: The paper's prototype hooks a spare slot in the hypercall table.
HYPERCALL_ARBITRARY_ACCESS = 39

# memory_op sub-commands
XENMEM_INCREASE_RESERVATION = 0
XENMEM_DECREASE_RESERVATION = 1
XENMEM_EXCHANGE = 11

# mmu_update request types (low 2 bits of ptr in the real ABI)
MMU_NORMAL_PT_UPDATE = 0
MMU_MACHPHYS_UPDATE = 1

# mmuext_op commands
MMUEXT_PIN_L1_TABLE = 0
MMUEXT_PIN_L2_TABLE = 1
MMUEXT_PIN_L3_TABLE = 2
MMUEXT_PIN_L4_TABLE = 3
MMUEXT_UNPIN_TABLE = 4
MMUEXT_NEW_BASEPTR = 5
MMUEXT_TLB_FLUSH_LOCAL = 6
MMUEXT_INVLPG_LOCAL = 7

# grant-table op sub-commands
GNTTABOP_MAP_GRANT_REF = 0
GNTTABOP_UNMAP_GRANT_REF = 1
GNTTABOP_SETUP_TABLE = 2
GNTTABOP_TRANSFER = 4
GNTTABOP_SET_VERSION = 8
GNTTABOP_GET_STATUS_FRAMES = 9

#: Batched hypercall execution (real ABI number).
HYPERCALL_MULTICALL = 13

# event-channel op sub-commands
EVTCHNOP_ALLOC_UNBOUND = 6
EVTCHNOP_BIND_INTERDOMAIN = 0
EVTCHNOP_SEND = 4
EVTCHNOP_CLOSE = 3

# ---------------------------------------------------------------------------
# Interrupt vectors
# ---------------------------------------------------------------------------

TRAP_DIVIDE_ERROR = 0
TRAP_DEBUG = 1
TRAP_NMI = 2
TRAP_INT3 = 3
TRAP_INVALID_OP = 6
TRAP_DOUBLE_FAULT = 8
TRAP_GP_FAULT = 13
TRAP_PAGE_FAULT = 14
IDT_VECTORS = 256

#: IDT descriptor layout used by the simulator: one 64-bit word per
#: vector.  Bit 47 (as in the real gate descriptor) is the present bit;
#: the low 48 bits hold the handler's linear address (truncated), and
#: bits 48..62 hold a checksum that trap delivery verifies, so that a
#: blind overwrite of a descriptor is detected exactly like a garbage
#: gate on real hardware.
IDT_PRESENT_BIT = 1 << 47

# ---------------------------------------------------------------------------
# Magic fingerprints (memory scanning targets for XSA-148-priv)
# ---------------------------------------------------------------------------

START_INFO_MAGIC = 0x78656E2D_73746172  # "xen-star(t_info)"
VDSO_MAGIC = 0x7664736F_2D696D67  # "vdso-img"

# ---------------------------------------------------------------------------
# Identifiers
# ---------------------------------------------------------------------------

DOMID_XEN = 0x7FF2  # pseudo-domain owning hypervisor frames (real value)
DOMID_IO = 0x7FF1
DOM0_ID = 0
