"""The hypervisor façade: boot, domains, traps, the hypercall entry.

``Xen`` ties the substrate together:

* boots the machine: hypervisor code frame (exception stubs), per-CPU
  IDTs, the machine-to-phys table, and the shared upper-half table
  (``xen_pud``) with the per-version special regions;
* builds and destroys domains;
* dispatches hypercalls and delivers traps — including the
  double-fault-to-panic path the XSA-212-crash use case exercises;
* provides the internal memory services the hypercall handlers use
  (M2P maintenance, page allocation, mapping revocation).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import (
    EBUSY,
    EFAULT,
    GuestFault,
    HypercallError,
    HypervisorCrash,
    HypervisorFault,
)
from repro.probes import points as probe_points
from repro.xen import constants as C
from repro.xen import layout
from repro.xen.addrspace import Access, AddressSpace
from repro.xen.domain import Domain
from repro.xen.events import EventChannels
from repro.xen.frames import FrameTable, PageType
from repro.xen.granttable import GrantTableSubsystem
from repro.xen.hypercalls import HypercallTable
from repro.xen.idt import IDT
from repro.xen.machine import Machine
from repro.xen.paging import make_special_pte, pte_mfn, pte_present
from repro.xen.payload import Payload, XenStub
from repro.xen.validation import PageTableValidation
from repro.xen.versions import Hardening, XenVersion

#: Bounded log/audit capacities.  Long fuzz campaigns must not grow
#: memory without limit; the limits are generous enough that no single
#: trial ever evicts an entry (the longest recorded campaigns emit a
#: few thousand console lines and a few tens of thousands of audit
#: tuples), so digests, traces and replay are unaffected.
CONSOLE_MAXLEN = 20_000
AUDIT_MAXLEN = 200_000


class Xen:
    """One booted instance of the simulated hypervisor."""

    def __init__(
        self,
        version: XenVersion,
        machine: Optional[Machine] = None,
        num_pcpus: int = 2,
    ):
        self.version = version
        self.machine = machine if machine is not None else Machine()
        #: The machine's probe bus — the single interception surface
        #: every observer (recorder, guards, watchdog, metrics)
        #: subscribes to.  See :mod:`repro.probes`.
        self.probes = self.machine.probes
        self._p_hypercall = self.probes.point(probe_points.HYPERCALL)
        self._p_page_fault = self.probes.point(probe_points.PAGE_FAULT)
        self._p_soft_irq = self.probes.point(probe_points.SOFT_IRQ)
        #: Integrity-scan notify point: fired after every hypercall's
        #: audit entry and before every trap delivery — the probe-bus
        #: successor of the old ``integrity_hooks`` list.
        self._p_integrity = self.probes.point(probe_points.INTEGRITY)
        #: Legitimate page-table-update notify point (baselines of
        #: integrity guards follow validated changes through it).
        self._p_pt_update = self.probes.point(probe_points.PT_UPDATE)
        self._p_crash = self.probes.point(probe_points.CRASH)
        self.frames = FrameTable(self.machine)
        self.addrspace = AddressSpace(self)
        self.validation = PageTableValidation(self)
        self.console: Deque[str] = deque(maxlen=CONSOLE_MAXLEN)
        #: Hypercall audit trail: ``(domain_id, number, rc)`` per call.
        #: This is the monitoring surface a defender would tap — and
        #: what makes the injector's intrusiveness measurable (§IX-D).
        self.audit: Deque[Tuple[int, int, int]] = deque(maxlen=AUDIT_MAXLEN)
        self.crashed = False
        self.crash_banner: Optional[str] = None
        self.domains: Dict[int, Domain] = {}
        self._domid_counter = itertools.count(C.DOM0_ID)
        self.num_pcpus = num_pcpus

        self._boot()

        self.hypercalls = HypercallTable(self)
        self.grants = GrantTableSubsystem(self)
        self.events = EventChannels(self)
        from repro.xen.schedule import Scheduler
        from repro.xen.xenstore import XenStore

        self.scheduler = Scheduler(self)
        self.xenstore = XenStore()

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def _boot(self) -> None:
        machine = self.machine

        # Hypervisor code frame: exception entry stubs live here, and
        # every IDT gate installed at boot points into it.
        self.xen_code_mfn = machine.alloc_frame()
        self.frames.assign(self.xen_code_mfn, C.DOMID_XEN)
        machine.attach_blob(self.xen_code_mfn, 0, XenStub("page_fault"))
        machine.attach_blob(self.xen_code_mfn, 1, XenStub("double_fault"))
        machine.attach_blob(self.xen_code_mfn, 2, XenStub("generic"))

        # Per-CPU interrupt descriptor tables.
        self.idt_mfns: List[int] = []
        for _ in range(self.num_pcpus):
            mfn = machine.alloc_frame()
            self.frames.assign(mfn, C.DOMID_XEN)
            idt = IDT(machine, mfn)
            for vector in range(C.IDT_VECTORS):
                idt.set_gate(vector, layout.directmap_va(self.xen_code_mfn, 2))
            idt.set_gate(
                C.TRAP_PAGE_FAULT, layout.directmap_va(self.xen_code_mfn, 0)
            )
            idt.set_gate(
                C.TRAP_DOUBLE_FAULT, layout.directmap_va(self.xen_code_mfn, 1)
            )
            self.idt_mfns.append(mfn)

        # Machine-to-phys table, exposed read-only at RO_MPT_START.
        words_needed = self.machine.num_frames
        frames_needed = (words_needed + C.WORDS_PER_PAGE - 1) // C.WORDS_PER_PAGE
        self.m2p_frames = machine.alloc_frames(frames_needed)
        for mfn in self.m2p_frames:
            self.frames.assign(mfn, C.DOMID_XEN)

        # The shared upper-half table for L4 slot 256: special region
        # descriptors for the RO M2P window and — on builds without the
        # 4.9 hardening — the RWX linear-page-table alias.
        self.xen_pud_mfn = machine.alloc_frame()
        self.frames.assign(self.xen_pud_mfn, C.DOMID_XEN)
        for index in range(layout.LINEAR_ALIAS_FIRST_L3):
            machine.write_word(
                self.xen_pud_mfn, index, make_special_pte(C.XEN_SPECIAL_RO_MPT)
            )
        if not self.version.has_hardening(Hardening.LINEAR_PT_ALIAS_REMOVED):
            for index in range(layout.LINEAR_ALIAS_FIRST_L3, C.ENTRIES_PER_TABLE):
                machine.write_word(
                    self.xen_pud_mfn,
                    index,
                    make_special_pte(C.XEN_SPECIAL_LINEAR_ALIAS),
                )

        self.log(f"Xen version {self.version.name} booting")
        self.log(f"{self.machine.num_frames} machine frames available")

    # ------------------------------------------------------------------
    # Console / crash handling
    # ------------------------------------------------------------------

    def log(self, message: str) -> None:
        self.console.append(f"(XEN) {message}")

    def check_alive(self) -> None:
        if self.crashed:
            raise HypervisorCrash(self.crash_banner or "hypervisor is down")

    def bug(self, condition_text: str) -> None:
        """A ``BUG_ON()`` fired: an 'impossible' internal state was
        observed (the paper's Exceptional Conditions class — defensive
        FATAL directives that crash the system)."""
        self.log(f"Assertion failed: BUG_ON({condition_text})")
        self.panic(f"Xen BUG at {condition_text}")

    def panic(self, reason: str) -> None:
        """Bring the machine down with the paper-style crash banner."""
        banner = [
            "",
            "****************************************",
            "Panic on CPU 0:",
            f"{reason}",
            "****************************************",
            "",
            "Reboot in five seconds...",
        ]
        for line in banner:
            self.log(line)
        self.crashed = True
        self.crash_banner = reason
        point = self._p_crash
        if point.subs:
            point.fire(reason)
        raise HypervisorCrash(reason)

    # ------------------------------------------------------------------
    # Domain lifecycle
    # ------------------------------------------------------------------

    def create_domain(
        self,
        name: str,
        num_pages: int = 64,
        is_privileged: bool = False,
        hostname: Optional[str] = None,
        num_vcpus: int = 1,
    ) -> Domain:
        """Build a domain: memory, vCPUs, start_info page, M2P entries."""
        self.check_alive()
        domid = next(self._domid_counter)
        domain = Domain(
            domid=domid,
            name=name,
            hostname=hostname or name,
            is_privileged=is_privileged,
            num_vcpus=num_vcpus,
        )
        for pfn in range(num_pages):
            mfn = self.machine.alloc_frame()
            self.frames.assign(mfn, domid, pfn)
            domain.p2m.append(mfn)
            self.set_m2p(mfn, pfn)

        # The start_info page (pfn 0) carries the fingerprint the
        # XSA-148 PoC scans machine memory for.
        start_mfn = domain.pfn_to_mfn(0)
        self.machine.write_word(start_mfn, 0, C.START_INFO_MAGIC)
        self.machine.write_word(start_mfn, 1, domid)
        self.machine.write_word(start_mfn, 2, num_pages)
        domain.start_info_mfn = start_mfn

        self.domains[domid] = domain
        self.scheduler.register_domain(domain)
        self.log(f"created domain d{domid} ({name}, {num_pages} pages)")
        return domain

    def destroy_domain(self, domain: Domain) -> None:
        domain.dead = True
        for pfn, mfn in enumerate(domain.p2m):
            if mfn is None:
                continue
            info = self.frames.info(mfn)
            info.count = 0
            info.type_count = 0
            info.pinned = False
            info.type = PageType.NONE
            self.frames.release(mfn)
            self.machine.free_frame(mfn)
            self.clear_m2p(mfn)
        domain.p2m = []
        self.domains.pop(domain.id, None)
        self.scheduler.unregister_domain(domain)
        self.log(f"destroyed domain d{domain.id}")

    # ------------------------------------------------------------------
    # Hypercall entry
    # ------------------------------------------------------------------

    def hypercall(self, domain: Domain, number: int, *args) -> int:
        """The guest→hypervisor gate.  Returns 0/positive on success or
        a negative errno, like the real ABI."""
        point = self._p_hypercall
        if point.subs:
            return point.run(
                self._hypercall_impl,
                (domain, number) + args,
                (domain, number, args),
            )
        return self._hypercall_impl(domain, number, *args)

    def _hypercall_impl(self, domain: Domain, number: int, *args) -> int:
        self.check_alive()
        if domain.dead:
            raise HypercallError(EFAULT, f"domain d{domain.id} is dead")
        try:
            rc = self.hypercalls.dispatch(domain, number, *args)
        except HypervisorCrash:
            self.audit.append((domain.id, number, -1))
            raise
        self.audit.append((domain.id, number, rc))
        self._p_integrity.fire()
        return rc

    # ------------------------------------------------------------------
    # Trap delivery
    # ------------------------------------------------------------------

    def idt(self, cpu: int = 0) -> IDT:
        return IDT(self.machine, self.idt_mfns[cpu])

    def sidt(self, cpu: int = 0) -> int:
        """Linear address of the IDT, as the ``sidt`` instruction
        reports it (paper §V-B: "some privileged instructions return
        linear addresses")."""
        return layout.directmap_va(self.idt_mfns[cpu])

    def deliver_page_fault(self, domain: Domain, fault: GuestFault) -> None:
        """Hardware raised #PF in guest context; walk the IDT.

        With an intact gate the fault is forwarded to the guest's PV
        trap handler (the guest kernel turns it into an oops).  With a
        corrupted gate the CPU double-faults and Xen panics — the
        XSA-212-crash security violation.
        """
        point = self._p_page_fault
        if point.subs:
            return point.run(self._deliver_page_fault_impl, (domain, fault))
        return self._deliver_page_fault_impl(domain, fault)

    def _deliver_page_fault_impl(self, domain: Domain, fault: GuestFault) -> None:
        self.check_alive()
        self._p_integrity.fire()
        idt = self.idt(0)
        handler_va = idt.handler(C.TRAP_PAGE_FAULT)
        if handler_va is None:
            self._double_fault("corrupt page-fault gate")
        try:
            mfn, word = self.addrspace.hypervisor_translate(handler_va, Access.EXEC)
        except HypervisorFault:
            self._double_fault(f"page-fault handler at bad address {handler_va:#x}")
            return  # unreachable; panic raised
        blob = self.machine.blob_at(mfn, word)
        if blob is None:
            self._double_fault("page-fault handler points at garbage")
        if isinstance(blob, XenStub):
            # Xen's own stub: forward to the guest's registered trap
            # handler; the guest kernel records a kernel oops.
            return
        if isinstance(blob, Payload):
            blob.execute(self, domain)
            return
        self._double_fault("unrecognised handler object")

    def _double_fault(self, detail: str) -> None:
        self.log("*** DOUBLE FAULT ***")
        self.log(f"----[ Xen-{self.version.name}  x86_64  debug=n  Not tainted ]----")
        self.log("CPU:    0")
        self.log(f"Xen call trace: {detail}")
        self.panic("DOUBLE FAULT -- system shutdown")

    def software_interrupt(self, domain: Domain, vector: int) -> None:
        """Guest executed ``int <vector>``: dispatch through the IDT."""
        point = self._p_soft_irq
        if point.subs:
            return point.run(self._software_interrupt_impl, (domain, vector))
        return self._software_interrupt_impl(domain, vector)

    def _software_interrupt_impl(self, domain: Domain, vector: int) -> None:
        self.check_alive()
        self._p_integrity.fire()
        idt = self.idt(0)
        handler_va = idt.handler(vector)
        if handler_va is None:
            raise GuestFault(0, "exec", f"invalid gate for vector {vector}")
        try:
            mfn, word = self.addrspace.hypervisor_translate(handler_va, Access.EXEC)
        except HypervisorFault as exc:
            self._double_fault(
                f"interrupt {vector} handler at bad address: {exc.reason}"
            )
            return  # unreachable
        blob = self.machine.blob_at(mfn, word)
        if isinstance(blob, XenStub):
            return  # benign: Xen's own stub just returns
        if isinstance(blob, Payload):
            blob.execute(self, domain)
            return
        self._double_fault(f"interrupt {vector} dispatched into garbage")

    # ------------------------------------------------------------------
    # Internal memory services
    # ------------------------------------------------------------------

    def set_m2p(self, mfn: int, pfn: int) -> None:
        frame_slot, word = divmod(mfn, C.WORDS_PER_PAGE)
        self.machine.write_word(self.m2p_frames[frame_slot], word, pfn)

    def clear_m2p(self, mfn: int) -> None:
        self.set_m2p(mfn, 0)

    def m2p(self, mfn: int) -> int:
        frame_slot, word = divmod(mfn, C.WORDS_PER_PAGE)
        return self.machine.read_word(self.m2p_frames[frame_slot], word)

    def alloc_domain_page(self, domain: Domain) -> Tuple[int, int]:
        """Allocate one page to a domain; returns ``(pfn, mfn)``."""
        mfn = self.machine.alloc_frame()
        for pfn, existing in enumerate(domain.p2m):
            if existing is None:
                break
        else:
            pfn = len(domain.p2m)
            domain.p2m.append(None)
        domain.p2m[pfn] = mfn
        self.frames.assign(mfn, domain.id, pfn)
        self.set_m2p(mfn, pfn)
        return pfn, mfn

    def free_domain_page(
        self, domain: Domain, mfn: int, update_p2m: bool = True
    ) -> None:
        info = self.frames.info(mfn)
        if info.type_count or info.count:
            raise HypercallError(EBUSY, f"mfn {mfn:#x} still referenced")
        if update_p2m:
            pfn = domain.mfn_to_pfn(mfn)
            if pfn is not None:
                domain.p2m[pfn] = None
        self.frames.release(mfn)
        self.machine.free_frame(mfn)
        self.clear_m2p(mfn)

    def release_page_keep_mappings(
        self, domain: Domain, mfn: int, pfn: int
    ) -> None:
        """XSA-387 path: frame returns to the heap, mappings survive."""
        domain.p2m[pfn] = None
        info = self.frames.info(mfn)
        info.count = 0
        info.type_count = 0
        self.frames.release(mfn)
        self.machine.free_frame(mfn)
        self.clear_m2p(mfn)

    def revoke_and_free_domain_page(
        self, domain: Domain, mfn: int, pfn: int
    ) -> None:
        """Fixed path: revoke guest mappings, then free the frame."""
        self.zap_guest_mappings(domain, mfn)
        domain.p2m[pfn] = None
        self.free_domain_page(domain, mfn, update_p2m=False)

    def zap_guest_mappings(self, domain: Domain, target_mfn: int) -> None:
        """Clear every L1 entry in the domain's page tables that maps
        ``target_mfn`` (the revocation step XSA-393 builds skip)."""
        for mfn in list(domain.p2m):
            if mfn is None:
                continue
            info = self.frames.info(mfn)
            if info.type is not PageType.L1:
                continue
            for index in range(C.ENTRIES_PER_TABLE):
                entry = self.machine.read_word(mfn, index)
                if pte_present(entry) and pte_mfn(entry) == target_mfn:
                    self.machine.write_word(mfn, index, 0)

    def unchecked_copy_to_guest(self, domain: Domain, va: int, value: int) -> None:
        """The XSA-212 write primitive: ``__copy_to_user`` without the
        bounds check.  Tries a guest-context translation first (the
        legitimate case), then blindly uses the hypervisor's own
        address space."""
        try:
            mfn, word = self.addrspace.guest_translate(domain, va, Access.WRITE)
        except GuestFault:
            try:
                mfn, word = self.addrspace.hypervisor_translate(va, Access.WRITE)
            except HypervisorFault:
                raise HypercallError(EFAULT, f"address {va:#x} unmapped") from None
        self.machine.write_word(mfn, word, value)

    # ------------------------------------------------------------------
    # Debug / audit helpers
    # ------------------------------------------------------------------

    def dump_console(self) -> str:
        return "\n".join(self.console)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "CRASHED" if self.crashed else "running"
        return f"<Xen {self.version.name} ({state}, {len(self.domains)} domains)>"
