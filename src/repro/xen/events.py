"""Event channels — Xen's virtual-interrupt substrate.

The paper notes (§IX-D) that "interruptions are implemented using
event channel data structures in Xen"; this module provides that
substrate so interrupt-flavoured intrusion models have a target
component.  It implements the classic port lifecycle: allocate an
unbound port, bind it from a peer domain, send notifications, close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import EINVAL, EPERM, HypercallError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


@dataclass
class Channel:
    """One end of an event channel."""

    port: int
    owner_id: int
    state: str  # "unbound" | "interdomain" | "closed"
    remote_domid: Optional[int] = None
    remote_port: Optional[int] = None


class EventChannels:
    """Port allocation, binding and notification delivery."""

    MAX_PORTS_PER_DOMAIN = 64

    def __init__(self, xen: "Xen"):
        self.xen = xen
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._next_port: Dict[int, int] = {}
        #: Per-domain queue of pending notifications (port numbers).
        self.pending: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------

    def _alloc_port(self, domid: int) -> int:
        port = self._next_port.get(domid, 1)
        if port >= self.MAX_PORTS_PER_DOMAIN:
            raise HypercallError(EINVAL, f"d{domid} out of event ports")
        self._next_port[domid] = port + 1
        return port

    def channel(self, domid: int, port: int) -> Channel:
        try:
            return self._channels[(domid, port)]
        except KeyError:
            raise HypercallError(EINVAL, f"d{domid} has no port {port}") from None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def alloc_unbound(self, domain: "Domain", remote_domid: int) -> int:
        """Allocate a port that ``remote_domid`` may later bind to."""
        port = self._alloc_port(domain.id)
        self._channels[(domain.id, port)] = Channel(
            port=port,
            owner_id=domain.id,
            state="unbound",
            remote_domid=remote_domid,
        )
        return port

    def bind_interdomain(
        self, domain: "Domain", remote_domid: int, remote_port: int
    ) -> int:
        remote = self.channel(remote_domid, remote_port)
        if remote.state != "unbound" or remote.remote_domid != domain.id:
            raise HypercallError(
                EPERM, f"port {remote_port} of d{remote_domid} not offered to us"
            )
        local_port = self._alloc_port(domain.id)
        local = Channel(
            port=local_port,
            owner_id=domain.id,
            state="interdomain",
            remote_domid=remote_domid,
            remote_port=remote_port,
        )
        remote.state = "interdomain"
        remote.remote_port = local_port
        self._channels[(domain.id, local_port)] = local
        return local_port

    def send(self, domain: "Domain", port: int) -> int:
        local = self.channel(domain.id, port)
        if local.state != "interdomain":
            raise HypercallError(EINVAL, f"port {port} not connected")
        target_domid = local.remote_domid
        target_port = local.remote_port
        self.pending.setdefault(target_domid, []).append(target_port)
        target = self.xen.domains.get(target_domid)
        if target is not None and target.kernel is not None:
            target.kernel.on_event(target_port)
        return 0

    def close(self, domain: "Domain", port: int) -> int:
        local = self.channel(domain.id, port)
        local.state = "closed"
        if local.remote_domid is not None and local.remote_port is not None:
            peer = self._channels.get((local.remote_domid, local.remote_port))
            if peer is not None and peer.state == "interdomain":
                peer.state = "unbound"
                peer.remote_port = None
        return 0

    def drain(self, domid: int) -> List[int]:
        """Pop all pending notifications for a domain."""
        queue = self.pending.get(domid, [])
        self.pending[domid] = []
        return queue
