"""The hypercall interface — "system calls in a virtualization context".

All guest↔hypervisor interaction flows through
:meth:`repro.xen.hypervisor.Xen.hypercall`, which dispatches into the
handlers registered here.  Three handlers carry the paper's
version-gated defects:

* ``mmu_update`` — page-table writes, validated per entry (XSA-148's
  missing PSE check and XSA-182's flag-only fast path live in
  :mod:`repro.xen.validation`);
* ``memory_op/XENMEM_exchange`` — XSA-212's missing bounds check on the
  output handle turns the hypercall into an arbitrary 8-byte write at a
  guest-chosen hypervisor linear address;
* ``memory_op/XENMEM_decrease_reservation`` — with XSA-393 present,
  returning pages to Xen does not revoke stale guest mappings of them.

The paper's injector adds one more entry to this table — see
:mod:`repro.core.injector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.errors import EBUSY, EFAULT, EINVAL, ENOSYS, EPERM, GuestFault, HypercallError
from repro.xen import constants as C
from repro.xen.addrspace import Access
from repro.xen.frames import PAGETABLE_TYPE_BY_LEVEL, PageType
from repro.xen.versions import Vulnerability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


# ---------------------------------------------------------------------------
# Argument structures (the ABI's guest-provided structs)
# ---------------------------------------------------------------------------

@dataclass
class MmuUpdate:
    """One ``mmu_update`` request: ``ptr`` low bits select the type."""

    ptr: int
    val: int

    @property
    def update_type(self) -> int:
        return self.ptr & 3

    @property
    def maddr(self) -> int:
        return self.ptr & ~3


@dataclass
class MmuExtOp:
    """One ``mmuext_op`` request."""

    cmd: int
    mfn: int = 0
    vcpu_id: int = 0


@dataclass
class ExchangeArgs:
    """Arguments of ``XENMEM_exchange`` (paper §VI-B).

    ``out_extent_start`` is the guest-provided output handle; the
    hypervisor reports each exchanged frame by writing one 64-bit word
    at ``out_extent_start + 8 * nr_exchanged`` — the address the
    XSA-212 PoCs aim at hypervisor memory.

    ``out_values`` models the PoCs' control over the written words (the
    real exploits steer the reported GMFN values through the in-extent
    list and the resume path); it only has any effect on builds where
    the vulnerable, unchecked copy is reachable.
    """

    in_pfns: List[int]
    out_extent_start: int
    nr_exchanged: int = 0
    out_values: Optional[List[int]] = None


@dataclass
class GrantTableOpArgs:
    cmd: int
    nr_entries: int = 0
    ref: int = 0
    granter_id: int = 0
    to_domid: int = 0
    pfn: int = 0
    readonly: bool = False
    version: int = 1
    mfn: int = 0


@dataclass
class EventChannelOpArgs:
    cmd: int
    remote_domid: int = 0
    remote_port: int = 0
    port: int = 0


Handler = Callable[..., int]


class HypercallTable:
    """Number → handler mapping plus dispatch."""

    def __init__(self, xen: "Xen"):
        self.xen = xen
        self._handlers: Dict[int, Handler] = {}
        self._register_defaults()

    def register(self, number: int, handler: Handler, replace: bool = False) -> None:
        if number in self._handlers and not replace:
            raise HypercallError(EINVAL, f"hypercall {number} already registered")
        self._handlers[number] = handler

    def is_registered(self, number: int) -> bool:
        return number in self._handlers

    def dispatch(self, domain: "Domain", number: int, *args) -> int:
        handler = self._handlers.get(number)
        if handler is None:
            return -ENOSYS
        try:
            result = handler(domain, *args)
            return 0 if result is None else result
        except HypercallError as exc:
            self.xen.log(f"hypercall {number} from d{domain.id} failed: {exc}")
            return -exc.errno
        except GuestFault:
            # The hypercall dereferenced a bad guest address.
            return -EFAULT

    # ------------------------------------------------------------------
    # Default handlers
    # ------------------------------------------------------------------

    def _register_defaults(self) -> None:
        self.register(C.HYPERCALL_MMU_UPDATE, self._mmu_update)
        self.register(C.HYPERCALL_MMUEXT_OP, self._mmuext_op)
        self.register(C.HYPERCALL_SET_TRAP_TABLE, self._set_trap_table)
        self.register(C.HYPERCALL_MEMORY_OP, self._memory_op)
        self.register(C.HYPERCALL_CONSOLE_IO, self._console_io)
        self.register(C.HYPERCALL_GRANT_TABLE_OP, self._grant_table_op)
        self.register(C.HYPERCALL_EVENT_CHANNEL_OP, self._event_channel_op)
        self.register(C.HYPERCALL_VCPU_OP, self._vcpu_op)
        self.register(C.HYPERCALL_MULTICALL, self._multicall)

    # -- multicall ---------------------------------------------------------

    def _multicall(self, domain: "Domain", entries, results: list) -> int:
        """Batched hypercalls: each entry is ``(number, args tuple)``;
        per-entry return codes are written into ``results`` (the
        guest-provided multicall structure).  A nested multicall is
        rejected, as in the real ABI."""
        for number, args in entries:
            if number == C.HYPERCALL_MULTICALL:
                raise HypercallError(EINVAL, "nested multicall")
            results.append(self.dispatch(domain, number, *args))
        return 0

    # -- mmu_update ------------------------------------------------------

    def _mmu_update(self, domain: "Domain", updates: Sequence[MmuUpdate]) -> int:
        xen = self.xen
        for update in updates:
            if update.update_type == C.MMU_NORMAL_PT_UPDATE:
                self._normal_pt_update(domain, update)
            elif update.update_type == C.MMU_MACHPHYS_UPDATE:
                self._machphys_update(domain, update)
            else:
                raise HypercallError(EINVAL, f"bad update type {update.update_type}")
        return 0

    def _normal_pt_update(self, domain: "Domain", update: MmuUpdate) -> None:
        xen = self.xen
        maddr = update.maddr
        if maddr % 8:
            raise HypercallError(EINVAL, f"unaligned PTE address {maddr:#x}")
        table_mfn, index = xen.machine.split_paddr(maddr)
        info = xen.frames.info(table_mfn)
        level = info.type.level
        if level == 0:
            raise HypercallError(
                EINVAL, f"mfn {table_mfn:#x} is not a validated page table"
            )
        if info.owner != domain.id and not domain.is_privileged:
            raise HypercallError(
                EPERM, f"page table mfn {table_mfn:#x} not owned by d{domain.id}"
            )
        old_entry = xen.machine.read_word(table_mfn, index)
        validated = xen.validation.check_update(
            domain, table_mfn, level, index, update.val
        )
        xen.machine.write_word(table_mfn, index, update.val)
        # Reference discipline: full validation took a ref for the new
        # entry; the overwritten entry's ref (if it held one) goes away
        # with it.  Fast-path (flag-only) updates keep the same child,
        # so no reference moves.
        if validated and xen.validation.entry_takes_ref(
            level, old_entry, table_mfn
        ):
            xen.validation.put_entry_ref(level, old_entry)
        point = xen._p_pt_update
        if point.subs:
            point.fire(table_mfn, index, update.val)

    def _machphys_update(self, domain: "Domain", update: MmuUpdate) -> None:
        xen = self.xen
        mfn = update.maddr >> C.PAGE_SHIFT
        if xen.frames.owner_of(mfn) != domain.id and not domain.is_privileged:
            raise HypercallError(EPERM, f"mfn {mfn:#x} not owned by d{domain.id}")
        xen.set_m2p(mfn, update.val)

    # -- mmuext_op --------------------------------------------------------

    _PIN_LEVELS = {
        C.MMUEXT_PIN_L1_TABLE: 1,
        C.MMUEXT_PIN_L2_TABLE: 2,
        C.MMUEXT_PIN_L3_TABLE: 3,
        C.MMUEXT_PIN_L4_TABLE: 4,
    }

    def _mmuext_op(  # staticcheck: ignore[R1] NEW_BASEPTR parks the typed ref on vcpu.cr3_mfn; the matching put happens on the next baseptr switch
        self, domain: "Domain", ops: Sequence[MmuExtOp]
    ) -> int:
        xen = self.xen
        for op in ops:
            if op.cmd in self._PIN_LEVELS:
                level = self._PIN_LEVELS[op.cmd]
                self._check_owned(domain, op.mfn)
                xen.frames.pin(
                    op.mfn,
                    PAGETABLE_TYPE_BY_LEVEL[level],
                    xen.validation.validator_for(domain),
                )
            elif op.cmd == C.MMUEXT_UNPIN_TABLE:
                self._check_owned(domain, op.mfn)
                level = xen.frames.pagetable_level(op.mfn)
                xen.frames.unpin(op.mfn)
                if xen.frames.info(op.mfn).type_count == 0 and level >= 2:
                    # Last reference gone: the table releases the child
                    # references its entries held.
                    xen.validation.release_table(op.mfn, level)
            elif op.cmd == C.MMUEXT_NEW_BASEPTR:
                info = xen.frames.info(op.mfn)
                if info.type is not PageType.L4 or not info.validated:
                    raise HypercallError(
                        EINVAL, f"mfn {op.mfn:#x} is not a validated L4 table"
                    )
                self._check_owned(domain, op.mfn)
                vcpu = domain.vcpu(op.vcpu_id)
                old_cr3 = vcpu.cr3_mfn
                # The loaded root holds its own typed reference.
                xen.frames.get_page_type(op.mfn, PageType.L4)
                vcpu.cr3_mfn = op.mfn
                if old_cr3 is not None:
                    xen.frames.put_page_type(old_cr3)
                    old_info = xen.frames.info(old_cr3)
                    if old_info.type_count == 0 and not old_info.pinned:
                        xen.validation.release_table(old_cr3, 4)
            elif op.cmd in (C.MMUEXT_TLB_FLUSH_LOCAL, C.MMUEXT_INVLPG_LOCAL):
                pass  # the simulator has no TLB
            else:
                raise HypercallError(EINVAL, f"bad mmuext cmd {op.cmd}")
        return 0

    def _check_owned(self, domain: "Domain", mfn: int) -> None:
        owner = self.xen.frames.owner_of(mfn)
        if owner != domain.id and not domain.is_privileged:
            raise HypercallError(EPERM, f"mfn {mfn:#x} owned by d{owner}")

    # -- traps ------------------------------------------------------------

    def _set_trap_table(self, domain: "Domain", traps: Dict[int, str]) -> int:
        for vector, handler_name in traps.items():
            if not 0 <= vector < C.IDT_VECTORS:
                raise HypercallError(EINVAL, f"bad trap vector {vector}")
            domain.current_vcpu.trap_table[vector] = handler_name
        return 0

    # -- memory_op ----------------------------------------------------------

    def _memory_op(self, domain: "Domain", cmd: int, args) -> int:
        if cmd == C.XENMEM_EXCHANGE:
            return self._memory_exchange(domain, args)
        if cmd == C.XENMEM_DECREASE_RESERVATION:
            return self._decrease_reservation(domain, args)
        if cmd == C.XENMEM_INCREASE_RESERVATION:
            return self._increase_reservation(domain, args)
        raise HypercallError(EINVAL, f"bad memory_op cmd {cmd}")

    def _memory_exchange(self, domain: "Domain", args: ExchangeArgs) -> int:
        """``XENMEM_exchange`` — the XSA-212 site.

        The fixed code verifies that the output handle is a
        guest-writable address *before* writing the result words; the
        vulnerable code performs "an insufficient check on the input
        address", so the copy lands wherever the guest pointed it —
        including hypervisor memory.
        """
        xen = self.xen
        vulnerable = xen.version.has_vuln(Vulnerability.XSA_212)

        if not vulnerable:
            # Fixed bounds check: every word the hypercall will write
            # must land in guest-writable memory.
            for i in range(len(args.in_pfns)):
                dest = args.out_extent_start + 8 * (args.nr_exchanged + i)
                try:
                    xen.addrspace.guest_translate(domain, dest, Access.WRITE)
                except GuestFault:
                    raise HypercallError(
                        EFAULT, f"output handle {dest:#x} not guest-writable"
                    ) from None

        for i, pfn in enumerate(args.in_pfns):
            old_mfn = domain.pfn_to_mfn(pfn)
            if xen.m2p(old_mfn) != pfn:
                # Defensive FATAL directive: the M2P must agree with the
                # P2M here, or internal state is corrupt ("impossible"
                # — unless someone injected exactly that state).
                xen.bug(f"m2p({old_mfn:#x}) == {pfn:#x}")
            # Only frames the caller owns may be traded in (steal_page's
            # ownership check in real Xen).
            self._check_owned(domain, old_mfn)
            new_mfn = xen.machine.alloc_frame()
            xen.frames.assign(new_mfn, domain.id, pfn)
            domain.p2m[pfn] = new_mfn
            xen.set_m2p(new_mfn, pfn)
            xen.machine.copy_frame(old_mfn, new_mfn)
            xen.free_domain_page(domain, old_mfn, update_p2m=False)

            if args.out_values is not None and vulnerable:
                value = args.out_values[i]
            else:
                value = new_mfn
            dest = args.out_extent_start + 8 * (args.nr_exchanged + i)
            if vulnerable:
                xen.unchecked_copy_to_guest(domain, dest, value)
            else:
                mfn, word = xen.addrspace.guest_translate(domain, dest, Access.WRITE)
                xen.machine.write_word(mfn, word, value)
        return 0

    def _decrease_reservation(self, domain: "Domain", pfns: Sequence[int]) -> int:
        """Return pages to Xen — the XSA-393 "keep page access" site."""
        xen = self.xen
        for pfn in pfns:
            mfn = domain.pfn_to_mfn(pfn)
            # A guest may only return its own frames to the heap.
            self._check_owned(domain, mfn)
            info = xen.frames.info(mfn)
            if info.type_count or info.count:
                # A referenced frame (e.g. a live page table) cannot be
                # returned to the heap; check before touching any state.
                raise HypercallError(
                    EBUSY, f"mfn {mfn:#x} still referenced (typed or mapped)"
                )
            if not xen.version.has_vuln(Vulnerability.XSA_393):
                xen.zap_guest_mappings(domain, mfn)
            # BUG (XSA-393): with the defect present, stale page-table
            # entries mapping the freed frame survive in the guest.
            domain.p2m[pfn] = None
            xen.clear_m2p(mfn)
            xen.free_domain_page(domain, mfn, update_p2m=False)
        return 0

    def _increase_reservation(self, domain: "Domain", nr_pages: int) -> int:
        for _ in range(nr_pages):
            self.xen.alloc_domain_page(domain)
        return 0

    # -- console -------------------------------------------------------------

    def _console_io(self, domain: "Domain", message: str) -> int:
        self.xen.console.append(f"(d{domain.id}) {message}")
        return 0

    # -- grant tables -----------------------------------------------------------

    def _grant_table_op(self, domain: "Domain", args: GrantTableOpArgs) -> int:
        grants = self.xen.grants
        if args.cmd == C.GNTTABOP_SETUP_TABLE:
            return grants.setup_table(domain, args.nr_entries)
        if args.cmd == C.GNTTABOP_MAP_GRANT_REF:
            return grants.map_grant_ref(domain, args.granter_id, args.ref)
        if args.cmd == C.GNTTABOP_UNMAP_GRANT_REF:
            return grants.unmap_grant_ref(domain, args.mfn)
        if args.cmd == C.GNTTABOP_SET_VERSION:
            return grants.set_version(domain, args.version)
        if args.cmd == C.GNTTABOP_TRANSFER:
            return grants.transfer(domain, args.pfn, args.to_domid)
        raise HypercallError(EINVAL, f"bad grant-table cmd {args.cmd}")

    # -- event channels ------------------------------------------------------------

    def _event_channel_op(self, domain: "Domain", args: EventChannelOpArgs) -> int:
        events = self.xen.events
        if args.cmd == C.EVTCHNOP_ALLOC_UNBOUND:
            return events.alloc_unbound(domain, args.remote_domid)
        if args.cmd == C.EVTCHNOP_BIND_INTERDOMAIN:
            return events.bind_interdomain(domain, args.remote_domid, args.remote_port)
        if args.cmd == C.EVTCHNOP_SEND:
            return events.send(domain, args.port)
        if args.cmd == C.EVTCHNOP_CLOSE:
            return events.close(domain, args.port)
        raise HypercallError(EINVAL, f"bad event-channel cmd {args.cmd}")

    # -- vcpu_op ----------------------------------------------------------------------

    def _vcpu_op(self, domain: "Domain", cmd: str, vcpu_id: int) -> int:
        domain.vcpu(vcpu_id)  # existence check
        if cmd in ("up", "down"):
            return 0
        raise HypercallError(EINVAL, f"bad vcpu_op {cmd!r}")
