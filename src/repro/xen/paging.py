"""Page-table entry encoding and virtual-address arithmetic (x86-64).

Pure functions only; the actual page walk lives in
:mod:`repro.xen.addrspace` because it needs the machine, the frame
table and the per-version layout.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.xen.constants import (
    ENTRIES_PER_TABLE,
    PAGE_SHIFT,
    PTE_FLAGS_MASK,
    PTE_MFN_MASK,
    PTE_PRESENT,
    PTE_PSE,
    PTE_RW,
    PTE_USER,
    PTE_XEN_SPECIAL,
    XEN_SPECIAL_MASK,
    XEN_SPECIAL_SHIFT,
)

_VA_MASK_48 = (1 << 48) - 1
_SIGN_BIT = 1 << 47
_CANONICAL_HIGH = 0xFFFF_0000_0000_0000


# ---------------------------------------------------------------------------
# PTE encode / decode
# ---------------------------------------------------------------------------

def make_pte(mfn: int, flags: int) -> int:
    """Build a PTE mapping machine frame ``mfn`` with the given flag bits."""
    return ((mfn << PAGE_SHIFT) & PTE_MFN_MASK) | (flags & PTE_FLAGS_MASK)


def pte_mfn(pte: int) -> int:
    """Machine frame number a PTE references."""
    return (pte & PTE_MFN_MASK) >> PAGE_SHIFT


def pte_flags(pte: int) -> int:
    """Flag bits of a PTE."""
    return pte & PTE_FLAGS_MASK


def pte_present(pte: int) -> bool:
    """Is the present bit set?"""
    return bool(pte & PTE_PRESENT)


def pte_writable(pte: int) -> bool:
    """Is the RW bit set?"""
    return bool(pte & PTE_RW)


def pte_user(pte: int) -> bool:
    """Is the user bit set?"""
    return bool(pte & PTE_USER)


def pte_superpage(pte: int) -> bool:
    """Is the PSE (superpage) bit set?"""
    return bool(pte & PTE_PSE)


def make_special_pte(kind: int) -> int:
    """Build one of Xen's internal special-region descriptors.

    These live in the hypervisor-owned upper-half tables and are tagged
    with a software-available bit; the walkers treat them as region
    descriptors rather than frame mappings.
    """
    return PTE_PRESENT | PTE_XEN_SPECIAL | (kind << XEN_SPECIAL_SHIFT)


def special_kind(pte: int) -> Optional[int]:
    """Return the special-region kind of a PTE, or ``None`` if ordinary."""
    if pte & PTE_XEN_SPECIAL and pte & PTE_PRESENT:
        return (pte & XEN_SPECIAL_MASK) >> XEN_SPECIAL_SHIFT
    return None


# ---------------------------------------------------------------------------
# Virtual-address arithmetic
# ---------------------------------------------------------------------------

def canonical(va: int) -> int:
    """Sign-extend a 48-bit address into canonical 64-bit form."""
    va &= _VA_MASK_48
    if va & _SIGN_BIT:
        return va | _CANONICAL_HIGH
    return va


def is_canonical(va: int) -> bool:
    """Is ``va`` a canonical 64-bit address?"""
    return canonical(va) == (va & ((1 << 64) - 1))


def l4_index(va: int) -> int:
    """L4 (PML4) index of a virtual address."""
    return (va >> 39) & (ENTRIES_PER_TABLE - 1)


def l3_index(va: int) -> int:
    """L3 (PUD) index of a virtual address."""
    return (va >> 30) & (ENTRIES_PER_TABLE - 1)


def l2_index(va: int) -> int:
    """L2 (PMD) index of a virtual address."""
    return (va >> 21) & (ENTRIES_PER_TABLE - 1)


def l1_index(va: int) -> int:
    """L1 (PTE) index of a virtual address."""
    return (va >> PAGE_SHIFT) & (ENTRIES_PER_TABLE - 1)


def page_offset(va: int) -> int:
    """Byte offset of an address within its page."""
    return va & ((1 << PAGE_SHIFT) - 1)


def word_index(va: int) -> int:
    """Word offset of an 8-byte-aligned address within its page."""
    return page_offset(va) >> 3


def table_indices(va: int) -> Tuple[int, int, int, int]:
    """Return the (l4, l3, l2, l1) indices of a virtual address."""
    return l4_index(va), l3_index(va), l2_index(va), l1_index(va)


def build_va(l4: int, l3: int, l2: int, l1: int, offset: int = 0) -> int:
    """Compose a canonical virtual address from table indices."""
    for name, value in (("l4", l4), ("l3", l3), ("l2", l2), ("l1", l1)):
        if not 0 <= value < ENTRIES_PER_TABLE:
            raise ValueError(f"{name} index {value} out of range")
    va = (l4 << 39) | (l3 << 30) | (l2 << 21) | (l1 << PAGE_SHIFT) | offset
    return canonical(va)


def describe_pte(pte: int) -> str:
    """Human-readable PTE rendering used in audit reports."""
    if not pte_present(pte):
        return f"{pte:#018x} <not present>"
    kind = special_kind(pte)
    if kind is not None:
        return f"{pte:#018x} <xen special region kind={kind}>"
    bits = []
    for mask, label in ((PTE_RW, "RW"), (PTE_USER, "US"), (PTE_PSE, "PSE")):
        if pte & mask:
            bits.append(label)
    flags = "|".join(bits) if bits else "RO"
    return f"{pte:#018x} mfn={pte_mfn(pte):#x} [{flags}]"
