"""Executable payloads — the simulator's stand-in for machine code.

The simulator does not interpret x86 instructions; anything executable
is a *blob* attached to a memory coordinate (see
:mod:`repro.xen.machine`).  Jumping to a linear address means
translating it and executing the blob found there; jumping anywhere
else is a crash, just like jumping into garbage bytes.

Two families of blobs exist:

* :class:`XenStub` — the hypervisor's own entry stubs, installed at
  boot behind every IDT gate.
* :class:`Payload` — attacker-provided code written into memory by an
  exploit or by an injection script.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


class XenStub:
    """One of Xen's exception/interrupt entry stubs."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XenStub {self.name}>"


class Payload:
    """Attacker code.  ``execute`` runs with the privileges of whatever
    context jumped to it — hypervisor context if reached through an IDT
    gate, guest-process context if reached through a patched vDSO."""

    def __init__(
        self,
        name: str,
        action: Optional[Callable[["Xen", Optional["Domain"]], None]] = None,
    ):
        self.name = name
        self._action = action

    def execute(self, xen: "Xen", domain: Optional["Domain"]) -> None:
        if self._action is not None:
            self._action(xen, domain)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Payload {self.name}>"


class SpinPayload(Payload):
    """Ring-0 code that never returns: the CPU it runs on stops
    scheduling anything (the "Induce a Hang State" erroneous state)."""

    def __init__(self, cpu: int = 0):
        super().__init__("ring0-spin")
        self.cpu = cpu

    def execute(self, xen: "Xen", domain) -> None:
        pcpu = xen.scheduler.pcpus[self.cpu]
        pcpu.spinning = True
        xen.log(f"cpu{self.cpu}: stuck in ring 0 (no progress)")


class RootShellPayload(Payload):
    """The XSA-212-priv payload: run a shell command as root in every
    domain on the host (the paper's ``/tmp/injector_log`` drop)."""

    def __init__(self, command_output: str, log_path: str = "/tmp/injector_log"):
        super().__init__("root-shell-everywhere")
        self.command_output = command_output
        self.log_path = log_path

    def execute(self, xen: "Xen", domain) -> None:
        # Runs in hypervisor context: full access to every domain.
        for victim in xen.domains.values():
            if victim.kernel is None or victim.dead:
                continue
            content = (
                f"|uid=0(root) gid=0(root) groups=0(root)|@{victim.hostname}"
            )
            victim.kernel.fs.write(self.log_path, content, uid=0)
        xen.log(f"payload {self.name!r} executed in ring 0")
