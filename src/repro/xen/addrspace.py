"""Linear-address translation for guest and hypervisor contexts.

Two walkers live here:

* :meth:`AddressSpace.guest_translate` — what the MMU does for a
  guest-context access: walk the guest's page tables for guest-owned
  L4 slots, and apply Xen's shared upper-half region rules for the
  hypervisor slots (read-only M2P window, the pre-hardening RWX linear
  alias, crafted overlay entries).

* :meth:`AddressSpace.hypervisor_translate` — hypervisor-context
  linear addressing: the Xen-private direct map plus the shared
  upper-half regions.  This is the path the ``arbitrary_access()``
  injector and the XSA-212 write primitive use.

The two hardening measures of Xen 4.9+ (paper §VIII) are enforced
here: the linear alias simply is not present, and guest walks that
reach a page-table frame *through* a linear/self mapping fault.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Tuple

from repro.errors import GuestFault, HypervisorFault
from repro.xen import layout
from repro.xen.constants import (
    PAGE_SHIFT,
    PTE_NX,
    PTE_PRESENT,
    PTE_PSE,
    PTE_RW,
    PTE_USER,
    WORDS_PER_PAGE,
    XEN_SPECIAL_LINEAR_ALIAS,
    XEN_SPECIAL_RO_MPT,
)
from repro.xen.paging import (
    canonical,
    l1_index,
    l2_index,
    l3_index,
    l4_index,
    pte_mfn,
    special_kind,
    word_index,
)
from repro.xen.versions import Hardening

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


class Access(enum.Enum):
    """Kind of memory access being translated."""

    READ = "read"
    WRITE = "write"
    EXEC = "exec"


class AddressSpace:
    """Walker over the simulated machine's address spaces."""

    def __init__(self, xen: "Xen"):
        self.xen = xen

    # ------------------------------------------------------------------
    # Guest-context translation
    # ------------------------------------------------------------------

    def guest_translate(
        self,
        domain: "Domain",
        va: int,
        access: Access,
        user: bool = False,
    ) -> Tuple[int, int]:
        """Translate a guest-context access to ``(mfn, word_index)``.

        Raises :class:`~repro.errors.GuestFault` on any denial, exactly
        where real hardware would raise #PF/#GP.
        """
        va = canonical(va)
        slot = l4_index(va)
        if layout.XEN_FIRST_SLOT <= slot <= layout.XEN_LAST_SLOT:
            return self._resolve_xen_region(domain, va, access, guest=True)
        return self._walk(domain, va, access, user)

    # ------------------------------------------------------------------
    # Hypervisor-context translation
    # ------------------------------------------------------------------

    def hypervisor_translate(self, va: int, access: Access) -> Tuple[int, int]:
        """Translate a hypervisor-context linear address.

        Raises :class:`~repro.errors.HypervisorFault` if the address is
        not mapped in the hypervisor's address space.
        """
        va = canonical(va)
        if layout.in_xen_directmap(va):
            offset = va - layout.XEN_DIRECTMAP_START
            mfn = offset >> PAGE_SHIFT
            if mfn >= self.xen.machine.num_frames:
                raise HypervisorFault(va, "direct map beyond end of memory")
            return mfn, word_index(va)
        slot = l4_index(va)
        if layout.XEN_FIRST_SLOT <= slot <= layout.XEN_LAST_SLOT:
            try:
                return self._resolve_xen_region(None, va, access, guest=False)
            except GuestFault as exc:
                raise HypervisorFault(va, exc.reason) from None
        raise HypervisorFault(va, "not a hypervisor address")

    # ------------------------------------------------------------------
    # Shared upper-half regions (slot 256 table + private slots)
    # ------------------------------------------------------------------

    def _resolve_xen_region(
        self,
        domain,
        va: int,
        access: Access,
        guest: bool,
    ) -> Tuple[int, int]:
        def deny(reason: str) -> GuestFault:
            return GuestFault(va, access.value, reason)

        if layout.in_xen_directmap(va):
            if guest:
                raise deny("hypervisor-private direct map")
            # handled by hypervisor_translate before we get here
            raise deny("unreachable")

        slot = l4_index(va)
        if slot != layout.XEN_FIRST_SLOT:
            raise deny("unmapped hypervisor slot")

        # Slot 256 is backed by a real table frame (xen_pud) whose
        # entries are either Xen's special region descriptors or —
        # after an attack/injection — ordinary crafted PTEs.
        pud_entry = self.xen.machine.read_word(self.xen.xen_pud_mfn, l3_index(va))
        if not pud_entry & PTE_PRESENT:
            raise deny("not present in hypervisor area")

        kind = special_kind(pud_entry)
        if kind == XEN_SPECIAL_RO_MPT:
            if access is not Access.READ:
                raise deny("read-only hypervisor region")
            entry_index = (va - layout.RO_MPT_START) >> 3
            frame_slot, word = divmod(entry_index, WORDS_PER_PAGE)
            if frame_slot >= len(self.xen.m2p_frames):
                raise deny("beyond machine-to-phys table")
            return self.xen.m2p_frames[frame_slot], word

        if kind == XEN_SPECIAL_LINEAR_ALIAS:
            offset = va - layout.LINEAR_ALIAS_START
            mfn = offset >> PAGE_SHIFT
            if mfn >= self.xen.machine.num_frames:
                raise deny("alias beyond end of memory")
            return mfn, word_index(va)

        if kind is not None:
            raise deny(f"unusable special region kind {kind}")

        # Ordinary PTE in the shared table: a crafted mapping.  Continue
        # a normal walk below it (L3 entry -> L2 -> L1 -> page).
        return self._walk_below_l3(va, pud_entry, access, guest)

    def _walk_below_l3(
        self, va: int, l3e: int, access: Access, guest: bool
    ) -> Tuple[int, int]:
        machine = self.xen.machine

        def deny(reason: str) -> GuestFault:
            return GuestFault(va, access.value, reason)

        if l3e & PTE_PSE:
            raise deny("1 GiB superpages unsupported")
        l2_mfn = self._frame_or_deny(pte_mfn(l3e), deny)
        l2e = machine.read_word(l2_mfn, l2_index(va))
        self._check_entry(va, l2e, access, deny)
        if l2e & PTE_PSE:
            return self._superpage_target(va, l2e, deny)
        l1_mfn = self._frame_or_deny(pte_mfn(l2e), deny)
        l1e = machine.read_word(l1_mfn, l1_index(va))
        self._check_entry(va, l1e, access, deny, leaf=True)
        target = self._frame_or_deny(pte_mfn(l1e), deny)
        return target, word_index(va)

    # ------------------------------------------------------------------
    # Ordinary 4-level walk through guest-owned tables
    # ------------------------------------------------------------------

    def _walk(
        self, domain: "Domain", va: int, access: Access, user: bool
    ) -> Tuple[int, int]:
        machine = self.xen.machine
        frames = self.xen.frames
        restricted = self.xen.version.has_hardening(Hardening.LINEAR_PT_RESTRICTED)

        def deny(reason: str) -> GuestFault:
            return GuestFault(va, access.value, reason)

        l4_mfn = domain.current_vcpu.cr3_mfn
        if l4_mfn is None:
            raise deny("no page tables loaded (cr3 empty)")

        table_mfn = l4_mfn
        indices = (l4_index(va), l3_index(va), l2_index(va))
        for step, (level, index) in enumerate(zip((4, 3, 2), indices)):
            entry = machine.read_word(table_mfn, index)
            self._check_entry(va, entry, access, deny, user=user)
            if level == 2 and entry & PTE_PSE:
                return self._superpage_target(va, entry, deny)
            if level != 2 and entry & PTE_PSE:
                raise deny(f"PSE at L{level} unsupported")
            child = self._frame_or_deny(pte_mfn(entry), deny)
            if restricted:
                child_level = frames.pagetable_level(child)
                if child_level >= level:
                    # A table frame showing up at (or below) its own
                    # level means the walk goes through a linear/self
                    # page-table mapping — restricted since Xen 4.9.
                    raise deny(
                        "linear page-table access restricted "
                        f"(L{child_level} table used as L{level - 1})"
                    )
            table_mfn = child

        l1e = machine.read_word(table_mfn, l1_index(va))
        self._check_entry(va, l1e, access, deny, user=user, leaf=True)
        target = self._frame_or_deny(pte_mfn(l1e), deny)
        return target, word_index(va)

    # ------------------------------------------------------------------
    # Shared entry checks
    # ------------------------------------------------------------------

    def _frame_or_deny(self, mfn: int, deny) -> int:
        """A corrupted PTE referencing a non-existent frame is a page
        fault to the walking context, not a simulator error."""
        if mfn >= self.xen.machine.num_frames:
            raise deny(f"entry references invalid frame {mfn:#x}")
        return mfn

    @staticmethod
    def _check_entry(va, entry, access, deny, user=False, leaf=False):
        if not entry & PTE_PRESENT:
            raise deny("page not present")
        if access is Access.WRITE and not entry & PTE_RW:
            raise deny("write to read-only mapping")
        if user and not entry & PTE_USER:
            raise deny("user access to supervisor mapping")
        if leaf and access is Access.EXEC and entry & PTE_NX:
            raise deny("execute of NX page")

    def _superpage_target(self, va, l2e, deny) -> Tuple[int, int]:
        base_mfn = pte_mfn(l2e)
        target = base_mfn + l1_index(va)
        if target >= self.xen.machine.num_frames:
            raise deny("superpage beyond end of memory")
        return target, word_index(va)
