"""Xen paravirtualized hypervisor simulator (the paper's substrate)."""

from repro.xen.hypervisor import Xen
from repro.xen.versions import XEN_4_6, XEN_4_8, XEN_4_13, XenVersion

__all__ = ["Xen", "XenVersion", "XEN_4_6", "XEN_4_8", "XEN_4_13"]
