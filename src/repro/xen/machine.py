"""The raw physical machine: frames of 64-bit words plus a blob store.

The simulator models memory contents at word granularity (a page is
512 words of 8 bytes).  That representation is exact for page tables,
descriptors, magic fingerprints and counters, which is everything the
paper's exploits manipulate numerically.

Executable payloads, however, are not modelled at the ISA level.  A
payload written into memory is represented by a *blob*: an opaque
Python object attached to a ``(mfn, word)`` coordinate, together with a
marker word written into the frame so that scans and overwrites behave
consistently.  Executing memory means looking up the blob at the
translated coordinate — if no blob is there, the "CPU" faults, exactly
as jumping into garbage would.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import MachineError
from repro.probes import points as probe_points
from repro.probes.bus import ProbeBus
from repro.xen.constants import PAGE_SHIFT, PAGE_SIZE, WORDS_PER_PAGE

_WORD_MASK = (1 << 64) - 1

#: Marker value written into a frame word that carries a blob, so the
#: word reads back as obviously non-zero data.
BLOB_MARKER = 0xB10B_B10B_B10B_B10B


class Machine:
    """Physical memory of the simulated host.

    Parameters
    ----------
    num_frames:
        Number of 4 KiB machine frames.  The default (2048 = 8 MiB) is
        plenty for the three-domain testbed while keeping full-memory
        scans fast.
    """

    def __init__(self, num_frames: int = 2048):
        if num_frames <= 0:
            raise MachineError("machine needs at least one frame")
        self.num_frames = num_frames
        self._frames: Dict[int, np.ndarray] = {}
        self._blobs: Dict[Tuple[int, int], object] = {}
        self._free: List[int] = list(range(num_frames - 1, -1, -1))
        self._allocated: set = set()
        #: The probe bus of this machine (shared with the ``Xen`` built
        #: on it).  The mutating memory operations below are compiled
        #: against cached point objects: with no subscribers the probe
        #: layer costs one attribute load and one truthiness test.
        self.probes = ProbeBus()
        self._p_write_word = self.probes.point(probe_points.WRITE_WORD)
        self._p_attach_blob = self.probes.point(probe_points.ATTACH_BLOB)
        self._p_zero_frame = self.probes.point(probe_points.ZERO_FRAME)
        self._p_copy_frame = self.probes.point(probe_points.COPY_FRAME)

    # -- geometry ----------------------------------------------------------

    @property
    def bytes_total(self) -> int:
        return self.num_frames * PAGE_SIZE

    def check_mfn(self, mfn: int) -> None:
        if not 0 <= mfn < self.num_frames:
            raise MachineError(f"mfn {mfn:#x} out of range (0..{self.num_frames - 1:#x})")

    # -- allocation --------------------------------------------------------

    def alloc_frame(self) -> int:
        """Pop a free frame (zeroed) and return its MFN."""
        if not self._free:
            raise MachineError("out of machine memory")
        mfn = self._free.pop()
        self._allocated.add(mfn)
        self.zero_frame(mfn)
        return mfn

    def alloc_frames(self, count: int) -> List[int]:
        return [self.alloc_frame() for _ in range(count)]

    def free_frame(self, mfn: int) -> None:
        self.check_mfn(mfn)
        if mfn not in self._allocated:
            raise MachineError(f"double free of mfn {mfn:#x}")
        self._allocated.remove(mfn)
        self.zero_frame(mfn)
        self._free.append(mfn)

    def is_allocated(self, mfn: int) -> bool:
        return mfn in self._allocated

    @property
    def frames_free(self) -> int:
        return len(self._free)

    # -- word access -------------------------------------------------------

    def _frame(self, mfn: int) -> np.ndarray:
        self.check_mfn(mfn)
        frame = self._frames.get(mfn)
        if frame is None:
            frame = np.zeros(WORDS_PER_PAGE, dtype=np.uint64)
            self._frames[mfn] = frame
        return frame

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < WORDS_PER_PAGE:
            raise MachineError(f"word index {index} out of page bounds")

    def read_word(self, mfn: int, index: int) -> int:
        """Read the 64-bit word at word offset ``index`` of frame ``mfn``."""
        self._check_index(index)
        if mfn not in self._frames:
            self.check_mfn(mfn)
            return 0
        return int(self._frames[mfn][index])

    def write_word(self, mfn: int, index: int, value: int) -> None:
        """Write a 64-bit word; any blob previously at that word is destroyed."""
        point = self._p_write_word
        if point.subs:
            return point.run(self._write_word_impl, (mfn, index, value))
        return self._write_word_impl(mfn, index, value)

    def _write_word_impl(self, mfn: int, index: int, value: int) -> None:
        self._check_index(index)
        frame = self._frame(mfn)
        frame[index] = value & _WORD_MASK
        self._blobs.pop((mfn, index), None)

    def read_words(self, mfn: int, start: int, count: int) -> List[int]:
        return [self.read_word(mfn, start + i) for i in range(count)]

    def write_words(self, mfn: int, start: int, values) -> None:
        for i, value in enumerate(values):
            self.write_word(mfn, start + i, value)

    def zero_frame(self, mfn: int) -> None:
        point = self._p_zero_frame
        if point.subs:
            return point.run(self._zero_frame_impl, (mfn,))
        return self._zero_frame_impl(mfn)

    def _zero_frame_impl(self, mfn: int) -> None:
        self.check_mfn(mfn)
        self._frames.pop(mfn, None)
        stale = [key for key in self._blobs if key[0] == mfn]
        for key in stale:
            del self._blobs[key]

    def copy_frame(self, src_mfn: int, dst_mfn: int) -> None:
        point = self._p_copy_frame
        if point.subs:
            return point.run(self._copy_frame_impl, (src_mfn, dst_mfn))
        return self._copy_frame_impl(src_mfn, dst_mfn)

    def _copy_frame_impl(self, src_mfn: int, dst_mfn: int) -> None:
        # Clear through the public method: the nested zero_frame probe
        # must fire, exactly as the pre-refactor instance hooks saw it.
        self.zero_frame(dst_mfn)
        if src_mfn in self._frames:
            self._frames[dst_mfn] = self._frames[src_mfn].copy()
        for (mfn, index), blob in list(self._blobs.items()):
            if mfn == src_mfn:
                self._blobs[(dst_mfn, index)] = blob

    # -- physical byte-address helpers --------------------------------------

    @staticmethod
    def split_paddr(paddr: int) -> Tuple[int, int]:
        """Split a byte-granular physical address into ``(mfn, word_index)``.

        The address must be 8-byte aligned — the simulator, like the
        paper's prototype interface, transfers whole words.
        """
        if paddr % 8:
            raise MachineError(f"unaligned physical address {paddr:#x}")
        return paddr >> PAGE_SHIFT, (paddr & (PAGE_SIZE - 1)) // 8

    def read_paddr(self, paddr: int) -> int:
        mfn, index = self.split_paddr(paddr)
        return self.read_word(mfn, index)

    def write_paddr(self, paddr: int, value: int) -> None:
        mfn, index = self.split_paddr(paddr)
        self.write_word(mfn, index, value)

    # -- blobs ("code" payloads) --------------------------------------------

    def attach_blob(self, mfn: int, index: int, blob: object) -> None:
        """Install an opaque payload at ``(mfn, index)``.

        Writes the blob marker word so that memory reads observe that
        *something* was written there.
        """
        point = self._p_attach_blob
        if point.subs:
            return point.run(self._attach_blob_impl, (mfn, index, blob))
        return self._attach_blob_impl(mfn, index, blob)

    def _attach_blob_impl(self, mfn: int, index: int, blob: object) -> None:
        self._check_index(index)
        frame = self._frame(mfn)
        frame[index] = BLOB_MARKER & _WORD_MASK
        self._blobs[(mfn, index)] = blob

    def blob_at(self, mfn: int, index: int) -> Optional[object]:
        return self._blobs.get((mfn, index))

    def iter_blobs(self) -> Iterator[Tuple[int, int, object]]:
        for (mfn, index), blob in self._blobs.items():
            yield mfn, index, blob

    # -- scanning ------------------------------------------------------------

    def find_word(self, value: int, start_mfn: int = 0) -> Optional[Tuple[int, int]]:
        """Linear scan of physical memory for a word value.

        Returns the first ``(mfn, index)`` at or after ``start_mfn``
        holding ``value``, or ``None``.  Used by tests; the exploits do
        their own scanning through their (possibly crafted) mappings.
        """
        target = np.uint64(value & _WORD_MASK)
        for mfn in range(start_mfn, self.num_frames):
            frame = self._frames.get(mfn)
            if frame is None:
                if target == 0:
                    return (mfn, 0)
                continue
            hits = np.nonzero(frame == target)[0]
            if hits.size:
                return (mfn, int(hits[0]))
        return None
