"""Grant tables v1/v2 — substrate for the §IV-B intrusion-model example.

The paper motivates intrusion models with XSA-387 ("Grant table v2
status pages should be released when a guest switches back to v1") and
XSA-393 (stale mappings after ``XENMEM_decrease_reservation``): two
different bugs whose common *abusive functionality* is **Keep Page
Reference** — a guest retains access to a page after it was returned
to Xen and possibly reassigned.

This module implements enough of the grant-table machinery for that
scenario: per-domain tables, v1 entries, v2 status frames, the version
switch, and grant mapping between domains.  The XSA-387 defect is
gated on the version configuration: with the bug present, the v2→v1
switch frees the status frames back to the heap *without* revoking the
guest's mapping of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.errors import EINVAL, EPERM, HypercallError  # noqa: F401 (EPERM used in transfer)
from repro.xen.versions import Vulnerability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen

# grant entry flags
GTF_PERMIT_ACCESS = 1 << 0
GTF_READONLY = 1 << 2


@dataclass
class GrantEntry:
    """One grant: ``domid`` may map ``pfn`` of the granting domain."""

    flags: int = 0
    domid: int = 0
    pfn: int = 0


@dataclass
class GrantTable:
    """Per-domain grant-table state."""

    version: int = 1
    entries: List[GrantEntry] = field(default_factory=list)
    #: Machine frames holding v2 status words; owned by Xen, mapped
    #: into the guest while version 2 is active.
    status_frames: List[int] = field(default_factory=list)
    #: Guest PFNs through which the status frames are mapped.
    status_pfns: List[int] = field(default_factory=list)


class GrantTableSubsystem:
    """All domains' grant tables plus the hypercall operations."""

    NR_STATUS_FRAMES = 1

    def __init__(self, xen: "Xen"):
        self.xen = xen
        self.tables: Dict[int, GrantTable] = {}

    def table(self, domain: "Domain") -> GrantTable:
        return self.tables.setdefault(domain.id, GrantTable())

    # ------------------------------------------------------------------
    # Operations (dispatched from the grant_table_op hypercall)
    # ------------------------------------------------------------------

    def setup_table(self, domain: "Domain", nr_entries: int) -> int:
        table = self.table(domain)
        while len(table.entries) < nr_entries:
            table.entries.append(GrantEntry())
        return 0

    def grant_access(
        self, domain: "Domain", ref: int, to_domid: int, pfn: int, readonly: bool
    ) -> int:
        """Guest-side helper: fill grant entry ``ref``."""
        table = self.table(domain)
        if ref >= len(table.entries):
            raise HypercallError(EINVAL, f"grant ref {ref} beyond table")
        domain.pfn_to_mfn(pfn)  # existence check
        flags = GTF_PERMIT_ACCESS | (GTF_READONLY if readonly else 0)
        table.entries[ref] = GrantEntry(flags=flags, domid=to_domid, pfn=pfn)
        return 0

    def map_grant_ref(
        self, mapper: "Domain", granter_id: int, ref: int
    ) -> int:
        """Map a foreign grant; returns the granted MFN."""
        granter = self.xen.domains.get(granter_id)
        if granter is None:
            raise HypercallError(EINVAL, f"no domain {granter_id}")
        table = self.table(granter)
        if ref >= len(table.entries):
            raise HypercallError(EINVAL, f"grant ref {ref} beyond table")
        entry = table.entries[ref]
        if not entry.flags & GTF_PERMIT_ACCESS or entry.domid != mapper.id:
            raise HypercallError(EPERM, f"grant ref {ref} not granted to d{mapper.id}")
        mfn = granter.pfn_to_mfn(entry.pfn)
        self.xen.frames.get_page(mfn, mapper.id, allow_foreign=True)
        return mfn

    def unmap_grant_ref(self, mapper: "Domain", mfn: int) -> int:
        self.xen.frames.put_page(mfn)
        return 0

    def transfer(self, domain: "Domain", pfn: int, dest_domid: int) -> int:
        """``GNTTABOP_transfer``: hand one of our pages to another
        domain (used by legacy netback flipping and ballooning).

        The page must be free of references — transferring a typed
        frame (a live page table, a descriptor page) between domains
        is exactly the type-confusion family of XSA-214, so the check
        is unconditional here.
        """
        dest = self.xen.domains.get(dest_domid)
        if dest is None or dest.dead:
            raise HypercallError(EINVAL, f"no destination domain {dest_domid}")
        mfn = domain.pfn_to_mfn(pfn)
        info = self.xen.frames.info(mfn)
        # Only the frame's owner may give it away.
        if info.owner != domain.id and not domain.is_privileged:
            raise HypercallError(
                EPERM, f"mfn {mfn:#x} owned by d{info.owner}, not d{domain.id}"
            )
        if info.type_count or info.count:
            raise HypercallError(
                EPERM, f"mfn {mfn:#x} is typed/referenced; transfer refused"
            )
        # Unhook from the source...
        domain.p2m[pfn] = None
        # ...and wire into the destination's pseudo-physical space.
        for dest_pfn, existing in enumerate(dest.p2m):
            if existing is None:
                break
        else:
            dest_pfn = len(dest.p2m)
            dest.p2m.append(None)
        dest.p2m[dest_pfn] = mfn
        self.xen.frames.assign(mfn, dest.id, dest_pfn)
        self.xen.set_m2p(mfn, dest_pfn)
        return dest_pfn

    def set_version(self, domain: "Domain", version: int) -> int:
        """Switch between grant-table v1 and v2 (the XSA-387 site)."""
        if version not in (1, 2):
            raise HypercallError(EINVAL, f"bad grant-table version {version}")
        table = self.table(domain)
        if version == table.version:
            return 0
        if version == 2:
            self._install_status_frames(domain, table)
        else:
            self._release_status_frames(domain, table)
        table.version = version
        return 0

    def get_status_frames(self, domain: "Domain") -> List[int]:
        """Guest PFNs of the v2 status frames (empty when on v1)."""
        return list(self.table(domain).status_pfns)

    # ------------------------------------------------------------------
    # Status-frame lifecycle (XSA-387 gate)
    # ------------------------------------------------------------------

    def _install_status_frames(self, domain: "Domain", table: GrantTable) -> None:
        for _ in range(self.NR_STATUS_FRAMES):
            pfn, mfn = self.xen.alloc_domain_page(domain)
            table.status_frames.append(mfn)
            table.status_pfns.append(pfn)
            # Seed the status words so the guest observes live content.
            self.xen.machine.write_word(mfn, 0, 0x5747_5354)  # "GTST"

    def _release_status_frames(self, domain: "Domain", table: GrantTable) -> None:
        vulnerable = self.xen.version.has_vuln(Vulnerability.XSA_387)
        for mfn, pfn in zip(table.status_frames, table.status_pfns):
            if vulnerable:
                # BUG (XSA-387): the frame goes back to the heap while
                # the guest's mapping of it survives — the guest keeps
                # a reference to memory Xen will hand to someone else.
                self.xen.release_page_keep_mappings(domain, mfn, pfn)
            else:
                self.xen.revoke_and_free_domain_page(domain, mfn, pfn)
        table.status_frames.clear()
        table.status_pfns.clear()
