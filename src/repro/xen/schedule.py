"""A credit-style vCPU scheduler with starvation accounting.

The paper's taxonomy reserves its largest non-memory class for
"Induce a Hang State" (20 of 100 CVEs), and §IX-C announces prototype
extensions toward interrupt- and availability-flavoured intrusion
models.  This substrate makes those assessable: physical CPUs run
vCPUs round-robin with per-vCPU credit accounting, and a hypervisor
context that stops yielding (a payload spinning in ring 0, a
non-preemptible hypercall) starves the run queue — which the
starvation counters expose to the hang monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen

#: Credits granted to each vCPU at every accounting period.
CREDITS_PER_PERIOD = 30
#: Scheduler ticks per accounting period.
PERIOD_TICKS = 10


@dataclass
class PCpu:
    """One physical CPU as the scheduler sees it."""

    cpu_id: int
    #: Set when ring-0 code on this CPU stopped yielding (a spinning
    #: payload, a livelocked hypercall) — the "hang" erroneous state.
    spinning: bool = False
    #: Ticks during which this CPU made no scheduling progress.
    starved_ticks: int = 0
    current: Optional[Tuple[int, int]] = None  # (domain_id, vcpu_id)


@dataclass
class VcpuAccount:
    domain_id: int
    vcpu_id: int
    credits: int = CREDITS_PER_PERIOD
    runs: int = 0
    blocked: bool = False


class Scheduler:
    """Round-robin credit scheduler over all live domains' vCPUs."""

    def __init__(self, xen: "Xen"):
        self.xen = xen
        self.pcpus: List[PCpu] = [PCpu(cpu_id=i) for i in range(xen.num_pcpus)]
        self._accounts: Dict[Tuple[int, int], VcpuAccount] = {}
        self._ticks = 0
        self.trace: List[Tuple[int, int, int]] = []  # (tick, domain, vcpu)
        from repro.probes import points as probe_points

        self._p_tick = xen.probes.point(probe_points.SCHED_TICK)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_domain(self, domain: "Domain") -> None:
        for vcpu in domain.vcpus:
            key = (domain.id, vcpu.vcpu_id)
            self._accounts[key] = VcpuAccount(domain.id, vcpu.vcpu_id)

    def unregister_domain(self, domain: "Domain") -> None:
        for key in [k for k in self._accounts if k[0] == domain.id]:
            del self._accounts[key]

    def account(self, domain_id: int, vcpu_id: int = 0) -> VcpuAccount:
        return self._accounts[(domain_id, vcpu_id)]

    # ------------------------------------------------------------------
    # Blocking / pausing
    # ------------------------------------------------------------------

    def block(self, domain_id: int, vcpu_id: int = 0) -> None:
        self.account(domain_id, vcpu_id).blocked = True

    def unblock(self, domain_id: int, vcpu_id: int = 0) -> None:
        self.account(domain_id, vcpu_id).blocked = False

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------

    def _runnable(self) -> List[VcpuAccount]:
        runnable = []
        for (domain_id, _), account in sorted(self._accounts.items()):
            domain = self.xen.domains.get(domain_id)
            if domain is None or domain.dead:
                continue
            if getattr(domain, "paused", False):
                continue
            if account.blocked:
                continue
            runnable.append(account)
        return runnable

    def tick(self, ticks: int = 1) -> None:
        """Advance scheduling time.

        Each tick, every physical CPU either runs the next runnable
        vCPU (consuming one credit) or — if its ring-0 context is
        spinning — starves.  Credits refill every accounting period.
        """
        point = self._p_tick
        if point.subs:
            return point.run(self._tick_impl, (ticks,))
        return self._tick_impl(ticks)

    def _tick_impl(self, ticks: int) -> None:
        for _ in range(ticks):
            self._ticks += 1
            if self._ticks % PERIOD_TICKS == 0:
                for account in self._accounts.values():
                    account.credits = CREDITS_PER_PERIOD
            runnable = self._runnable()
            cursor = self._ticks  # rotate the starting point
            for pcpu in self.pcpus:
                if pcpu.spinning:
                    pcpu.starved_ticks += 1
                    pcpu.current = None
                    continue
                if not runnable:
                    pcpu.current = None
                    continue
                account = runnable[(cursor + pcpu.cpu_id) % len(runnable)]
                account.runs += 1
                if account.credits > 0:
                    account.credits -= 1
                pcpu.current = (account.domain_id, account.vcpu_id)
                self.trace.append(
                    (self._ticks, account.domain_id, account.vcpu_id)
                )

    # ------------------------------------------------------------------
    # Hang observation
    # ------------------------------------------------------------------

    @property
    def hung_pcpus(self) -> List[PCpu]:
        return [p for p in self.pcpus if p.spinning or p.starved_ticks > 0]

    def is_hung(self, starvation_threshold: int = 5) -> bool:
        """Has any physical CPU starved past the watchdog threshold?"""
        return any(p.starved_ticks >= starvation_threshold for p in self.pcpus)

    def fairness(self) -> Dict[int, int]:
        """Total runs per domain — flat for a healthy system."""
        totals: Dict[int, int] = {}
        for account in self._accounts.values():
            totals[account.domain_id] = (
                totals.get(account.domain_id, 0) + account.runs
            )
        return totals
