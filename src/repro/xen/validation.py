"""Page-table entry validation — where the paper's vulnerabilities live.

PV guests write their own page tables, but every write goes through the
hypervisor, which validates each entry before committing it.  The
validation rules enforced here are the real ones that matter for the
paper's use cases:

* an L1 entry may never create a *writable* mapping of a page-table
  frame or of hypervisor-owned memory;
* an L2 entry may not use ``_PAGE_PSE`` (PV guests get no superpages) —
  **except** on builds carrying XSA-148, where the check is missing;
* an L4 entry may reference the table itself ("linear page tables")
  only read-only — and the fast path for flag-only L4 updates on
  builds carrying XSA-182 skips re-validation, letting a guest flip
  the RW bit on such an entry;
* table frames are validated recursively on first use / pinning, with
  type references keeping the shape stable afterwards.

Reference discipline: every *present intermediate* entry (an L2/L3/L4
entry pointing at a lower-level table — not PSE leaves, not Xen
special descriptors, not linear/self L4 references) holds one typed
reference on its child.  Validation takes the reference, overwriting
or releasing the entry puts it, and a table whose type count reaches
zero releases its own children recursively — so a page table cannot be
freed or retyped while anything still points at it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from repro.errors import EINVAL, EPERM, HypercallError
from repro.xen.constants import (
    DOMID_XEN,
    ENTRIES_PER_TABLE,
    PTE_PRESENT,
    PTE_PSE,
    PTE_RW,
)
from repro.xen.frames import PAGETABLE_TYPE_BY_LEVEL, PageType
from repro.xen.paging import pte_flags, pte_mfn, pte_present, special_kind
from repro.xen.versions import Vulnerability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain
    from repro.xen.hypervisor import Xen


class PageTableValidation:
    """The hypervisor's PTE validation engine (version-gated)."""

    def __init__(self, xen: "Xen"):
        self.xen = xen
        self._validating: Set[int] = set()
        from repro.probes import points as probe_points

        self._p_pt_validate = xen.probes.point(probe_points.PT_VALIDATE)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def validator_for(self, domain: "Domain"):
        """Return a ``(mfn, level)`` callback for the frame table."""

        def validate(mfn: int, level: int) -> None:
            self.validate_table(domain, mfn, level)

        return validate

    def validate_table(self, domain: "Domain", mfn: int, level: int) -> None:
        """Validate a whole frame as a level-``level`` page table.

        Takes one typed reference per present intermediate entry; on
        failure, the references already taken are rolled back so the
        table ends exactly as it started."""
        point = self._p_pt_validate
        if point.subs:
            point.fire(domain.id, mfn, level)
        if mfn in self._validating:
            raise HypercallError(
                EINVAL, f"circular page-table reference through mfn {mfn:#x}"
            )
        self._validating.add(mfn)
        taken: list = []
        try:
            for index in range(ENTRIES_PER_TABLE):
                entry = self.xen.machine.read_word(mfn, index)
                self.validate_entry(domain, level, entry, table_mfn=mfn)
                if self.entry_takes_ref(level, entry, mfn):
                    taken.append(entry)
        except HypercallError:
            for entry in reversed(taken):
                self.put_entry_ref(level, entry)
            raise
        finally:
            self._validating.discard(mfn)

    def check_update(
        self,
        domain: "Domain",
        table_mfn: int,
        level: int,
        index: int,
        new_entry: int,
    ) -> bool:
        """Validate one ``mmu_update`` write into an existing table.

        Implements the (buggy on 4.6) fast path for flag-only L4
        updates: when old and new entries reference the same frame,
        re-validation is skipped — unconditionally with XSA-182
        present, or only when no dangerous bit is being added once the
        fix is in.

        Returns ``True`` when full validation ran (and therefore a
        typed reference was taken for the new entry, if it is one that
        carries a reference); ``False`` when a fast path skipped it.
        """
        old_entry = self.xen.machine.read_word(table_mfn, index)
        if (
            level == 4
            and pte_present(old_entry)
            and pte_present(new_entry)
            and pte_mfn(old_entry) == pte_mfn(new_entry)
        ):
            if self.xen.version.has_vuln(Vulnerability.XSA_182):
                # BUG (XSA-182): "the code to validate the pre-existing
                # L4 page tables was faulty" — flag changes sail through.
                return False
            added_flags = pte_flags(new_entry) & ~pte_flags(old_entry)
            if not added_flags & PTE_RW:
                return False  # genuinely safe flag-only change
            # RW being added: fall through to full validation.
        self.validate_entry(domain, level, new_entry, table_mfn=table_mfn)
        return True

    # ------------------------------------------------------------------
    # Reference discipline
    # ------------------------------------------------------------------

    def entry_takes_ref(self, level: int, entry: int, table_mfn: int) -> bool:
        """Does this (validated) entry hold a typed child reference?"""
        if level < 2 or not entry & PTE_PRESENT:
            return False
        if special_kind(entry) is not None:
            return False
        if level == 2 and entry & PTE_PSE:
            return False  # superpage leaf (the XSA-148 shape)
        target = pte_mfn(entry)
        if target >= self.xen.machine.num_frames:
            return False
        info = self.xen.frames.info(target)
        if level == 4 and (target == table_mfn or info.type is PageType.L4):
            return False  # linear/self mappings carry no child ref
        # A reference can only exist while the child actually holds the
        # expected type — this keeps the put side consistent even for
        # stale entries whose child was torn down through another path.
        return info.type is PAGETABLE_TYPE_BY_LEVEL[level - 1]

    def put_entry_ref(self, level: int, entry: int) -> None:
        """Release the child reference an intermediate entry held; if
        the child's type drops, release its own children recursively
        (Xen's ``free_page_type``)."""
        child = pte_mfn(entry)
        frames = self.xen.frames
        frames.put_page_type(child)
        info = frames.info(child)
        if info.type_count == 0 and not info.pinned:
            self.release_table(child, level - 1)

    def release_table(self, mfn: int, level: int) -> None:
        """Put the child references held by a table being torn down."""
        if level < 2:
            return
        for index in range(ENTRIES_PER_TABLE):
            entry = self.xen.machine.read_word(mfn, index)
            if self.entry_takes_ref(level, entry, mfn):
                self.put_entry_ref(level, entry)

    # ------------------------------------------------------------------
    # Per-entry rules
    # ------------------------------------------------------------------

    def validate_entry(
        self, domain: "Domain", level: int, entry: int, table_mfn: int
    ) -> None:
        if not entry & PTE_PRESENT:
            return
        if special_kind(entry) is not None:
            raise HypercallError(
                EINVAL, "guests may not write Xen special descriptors"
            )
        target = pte_mfn(entry)
        if target >= self.xen.machine.num_frames:
            raise HypercallError(EINVAL, f"entry references bad mfn {target:#x}")

        if level == 1:
            self._validate_l1(domain, entry, target)
        elif level == 2:
            self._validate_l2(domain, entry, target)
        elif level == 3:
            self._validate_intermediate(domain, target, child_level=2)
        elif level == 4:
            self._validate_l4(domain, entry, target, table_mfn)
        else:
            raise HypercallError(EINVAL, f"bad page-table level {level}")

    def _validate_l1(self, domain: "Domain", entry: int, target: int) -> None:
        frames = self.xen.frames
        owner = frames.owner_of(target)
        if owner == DOMID_XEN:
            raise HypercallError(
                EPERM, f"mapping of hypervisor-owned mfn {target:#x}"
            )
        if owner != domain.id:
            raise HypercallError(
                EPERM,
                f"mapping of foreign mfn {target:#x} (owner d{owner})",
            )
        if entry & PTE_RW and frames.is_pagetable(target):
            raise HypercallError(
                EPERM, f"writable mapping of page table mfn {target:#x}"
            )

    def _validate_l2(self, domain: "Domain", entry: int, target: int) -> None:
        if entry & PTE_PSE:
            if self.xen.version.has_vuln(Vulnerability.XSA_148):
                # BUG (XSA-148): "missing check on the invariant of Xen
                # L2 page-table entries" — the superpage target is not
                # inspected at all, so a guest gains a 2 MiB window
                # over arbitrary machine memory.
                return
            raise HypercallError(
                EINVAL, "PSE mappings are not permitted for PV guests"
            )
        self._validate_intermediate(domain, target, child_level=1)

    def _validate_l4(
        self, domain: "Domain", entry: int, target: int, table_mfn: int
    ) -> None:
        frames = self.xen.frames
        is_linear = (
            target == table_mfn
            or frames.info(target).type is PageType.L4
        )
        if is_linear:
            # Linear page tables: historically tolerated, read-only.
            if entry & PTE_RW:
                raise HypercallError(
                    EPERM, "linear/self L4 mapping must be read-only"
                )
            return
        self._validate_intermediate(domain, target, child_level=3)

    def _validate_intermediate(  # staticcheck: ignore[R1] the typed ref is parked in the referencing PTE; put_entry_ref releases it when the entry is cleared
        self, domain: "Domain", target: int, child_level: int
    ) -> None:
        frames = self.xen.frames
        owner = frames.owner_of(target)
        if owner != domain.id:
            raise HypercallError(
                EPERM,
                f"page-table entry references foreign mfn {target:#x}",
            )
        wanted = PAGETABLE_TYPE_BY_LEVEL[child_level]
        # Always take a typed reference: the referencing entry keeps
        # the child's type alive (validation runs only on promotion).
        frames.get_page_type(target, wanted, self.validator_for(domain))
