"""XenStore — the shared hierarchical configuration store.

Xen's split drivers discover each other through XenStore: the frontend
publishes its ring reference and event-channel port under
``/local/domain/<id>/device/...`` and the backend watches for it.
This implementation provides the pieces the driver substrate (and
management tooling) needs:

* a path → value tree with per-subtree ownership;
* permission checks (a domain writes only below its own
  ``/local/domain/<id>``; dom0 writes anywhere; reads are open, as in
  the default XenStore ACLs for the paths we model);
* watches: callbacks fired on writes under a prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain


class XenStoreError(Exception):
    """Permission failure or malformed path."""


WatchCallback = Callable[[str, str], None]  # (path, value)


@dataclass
class _Watch:
    prefix: str
    callback: WatchCallback
    owner_id: int


def domain_prefix(domid: int) -> str:
    """The XenStore subtree a domain owns."""
    return f"/local/domain/{domid}"


class XenStore:
    """The store itself (one per host)."""

    def __init__(self):
        self._values: Dict[str, str] = {}
        self._watches: List[_Watch] = []

    # ------------------------------------------------------------------
    # Path rules
    # ------------------------------------------------------------------

    @staticmethod
    def _check_path(path: str) -> None:
        if not path.startswith("/") or path.endswith("/") or "//" in path:
            raise XenStoreError(f"malformed path {path!r}")

    @staticmethod
    def _may_write(caller: "Domain", path: str) -> bool:
        if caller.is_privileged:
            return True
        prefix = domain_prefix(caller.id)
        return path == prefix or path.startswith(prefix + "/")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def write(self, caller: "Domain", path: str, value: str) -> None:
        self._check_path(path)
        if not self._may_write(caller, path):
            raise XenStoreError(
                f"d{caller.id} may not write {path!r} "
                f"(outside {domain_prefix(caller.id)})"
            )
        self._values[path] = value
        for watch in list(self._watches):
            if path == watch.prefix or path.startswith(watch.prefix + "/"):
                watch.callback(path, value)

    def read(self, path: str, default: Optional[str] = None) -> Optional[str]:
        self._check_path(path)
        return self._values.get(path, default)

    def exists(self, path: str) -> bool:
        return path in self._values

    def remove(self, caller: "Domain", path: str) -> None:
        self._check_path(path)
        if not self._may_write(caller, path):
            raise XenStoreError(f"d{caller.id} may not remove {path!r}")
        removed = [p for p in self._values if p == path or p.startswith(path + "/")]
        for key in removed:
            del self._values[key]

    def list_dir(self, path: str) -> List[str]:
        """Immediate children of ``path``."""
        self._check_path(path)
        children = set()
        prefix = path + "/"
        for key in self._values:
            if key.startswith(prefix):
                children.add(key[len(prefix):].split("/")[0])
        return sorted(children)

    # ------------------------------------------------------------------
    # Watches
    # ------------------------------------------------------------------

    def watch(self, caller: "Domain", prefix: str, callback: WatchCallback) -> None:
        """Fire ``callback`` on every write at or below ``prefix``.

        Fires immediately for already-present entries, like the real
        XenStore does on watch registration."""
        self._check_path(prefix)
        self._watches.append(
            _Watch(prefix=prefix, callback=callback, owner_id=caller.id)
        )
        for path, value in sorted(self._values.items()):
            if path == prefix or path.startswith(prefix + "/"):
                callback(path, value)

    def unwatch(self, caller: "Domain", prefix: str) -> None:
        self._watches = [
            w
            for w in self._watches
            if not (w.owner_id == caller.id and w.prefix == prefix)
        ]
