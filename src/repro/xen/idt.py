"""The per-CPU Interrupt Descriptor Table and gate encoding.

A real x86-64 IDT holds 256 16-byte gate descriptors in one 4 KiB
page.  The simulator keeps that geometry: vector ``v`` occupies words
``2v`` (handler linear address) and ``2v + 1`` (attributes word: the
present bit plus a structural checksum standing in for the fixed bit
patterns a real gate must carry).

A *blind* overwrite of a descriptor therefore produces an invalid gate
— delivering an exception through it escalates to a double fault, which
is exactly the failure mode the XSA-212-crash use case relies on.  An
attacker who knows the format (it is architectural) can still forge a
fully valid gate, which is what XSA-212-priv does.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import MachineError
from repro.xen.constants import IDT_PRESENT_BIT, IDT_VECTORS
from repro.xen.machine import Machine

_CHECK_MASK = (1 << 47) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def gate_checksum(handler_va: int) -> int:
    """Structural checksum a valid gate's attribute word must carry."""
    return ((handler_va ^ (handler_va >> 17)) * _GOLDEN) & _CHECK_MASK


def encode_gate(handler_va: int) -> Tuple[int, int]:
    """Encode a valid gate for ``handler_va``: ``(word0, word1)``.

    This function is "architecturally public": exploits may use it to
    forge valid descriptors, just as a real attacker consults the
    Intel SDM.
    """
    handler_va &= (1 << 64) - 1
    return handler_va, IDT_PRESENT_BIT | gate_checksum(handler_va)


def decode_gate(word0: int, word1: int) -> Optional[int]:
    """Return the handler address of a gate, or ``None`` if invalid."""
    if not word1 & IDT_PRESENT_BIT:
        return None
    if (word1 & _CHECK_MASK) != gate_checksum(word0):
        return None
    return word0


class IDT:
    """View over one IDT frame."""

    def __init__(self, machine: Machine, mfn: int):
        self.machine = machine
        self.mfn = mfn

    @staticmethod
    def _check_vector(vector: int) -> None:
        if not 0 <= vector < IDT_VECTORS:
            raise MachineError(f"bad interrupt vector {vector}")

    def set_gate(self, vector: int, handler_va: int) -> None:
        self._check_vector(vector)
        word0, word1 = encode_gate(handler_va)
        self.machine.write_word(self.mfn, 2 * vector, word0)
        self.machine.write_word(self.mfn, 2 * vector + 1, word1)

    def clear_gate(self, vector: int) -> None:
        self._check_vector(vector)
        self.machine.write_word(self.mfn, 2 * vector, 0)
        self.machine.write_word(self.mfn, 2 * vector + 1, 0)

    def handler(self, vector: int) -> Optional[int]:
        """Decode the gate for ``vector``; ``None`` means invalid gate."""
        self._check_vector(vector)
        word0 = self.machine.read_word(self.mfn, 2 * vector)
        word1 = self.machine.read_word(self.mfn, 2 * vector + 1)
        return decode_gate(word0, word1)

    def gate_words(self, vector: int) -> Tuple[int, int]:
        self._check_vector(vector)
        return (
            self.machine.read_word(self.mfn, 2 * vector),
            self.machine.read_word(self.mfn, 2 * vector + 1),
        )

    def is_valid(self, vector: int) -> bool:
        return self.handler(vector) is not None
