"""The simulated x86-64 Xen PV virtual-memory layout (paper §V-A).

Xen's memory layout segments the upper half of the address space into
regions with different guest-access rules; as the paper notes, "any
error in this memory layout implementation directly affects the system
security".  The layout constants below follow the real 64-bit PV
layout closely enough that the exploits' addresses look right:

========================  =====================  =========================
region                    base                   guest access
========================  =====================  =========================
read-only M2P window      ``0xffff800000000000``  read-only
linear-pagetable alias    ``0xffff804000000000``  RWX (removed by 4.9
                                                  hardening; paper §VIII)
Xen direct map            ``0xffff830000000000``  none (hypervisor only)
guest kernel area         ``0xffff880000000000``  guest-managed
========================  =====================  =========================

L4 slots 256..271 belong to the hypervisor and are shared across all
guests, which is exactly why the XSA-212-priv payload, once mapped
there, is reachable from every domain.
"""

from __future__ import annotations

from repro.xen.constants import L3_COVERAGE, L4_COVERAGE, PAGE_SIZE

# -- hypervisor-reserved slots ------------------------------------------------

XEN_FIRST_SLOT = 256
XEN_LAST_SLOT = 271

HYPERVISOR_VIRT_START = 0xFFFF_8000_0000_0000
HYPERVISOR_VIRT_END = 0xFFFF_8800_0000_0000  # exclusive (slot 272)

#: Read-only machine-to-phys window: first 256 GiB of slot 256.  The
#: paper quotes this range as "read-only for guest domains".
RO_MPT_START = 0xFFFF_8000_0000_0000
RO_MPT_SIZE = 256 * (1 << 30)
RO_MPT_END = RO_MPT_START + RO_MPT_SIZE  # exclusive

#: The 512 GiB-slot-resident RWX alias of the linear page tables /
#: machine memory (second half of slot 256).  Present on Xen 4.6/4.8;
#: removed by the post-XSA-213..215 hardening that ships in 4.13
#: (paper §VIII: range 0xffff804000000000..0xffff80403fffffff).
LINEAR_ALIAS_START = 0xFFFF_8040_0000_0000
LINEAR_ALIAS_SIZE = 256 * (1 << 30)
LINEAR_ALIAS_END = LINEAR_ALIAS_START + LINEAR_ALIAS_SIZE  # exclusive

#: First L3 index (within the slot-256 table) covered by the alias.
LINEAR_ALIAS_FIRST_L3 = (LINEAR_ALIAS_START - RO_MPT_START) // L3_COVERAGE  # 256

#: Hypervisor-private direct map of all machine memory (slots 262-263).
#: Guests can never access it; the hypervisor (and therefore the
#: injector hypercall) uses it for linear addressing of any frame.
XEN_DIRECTMAP_START = 0xFFFF_8300_0000_0000
XEN_DIRECTMAP_SIZE = 1 << 40  # 1 TiB
XEN_DIRECTMAP_END = XEN_DIRECTMAP_START + XEN_DIRECTMAP_SIZE  # exclusive

# -- guest areas ---------------------------------------------------------------

#: Base of the guest kernel's pseudo-direct map (slot 272, the first
#: guest-owned slot, like the real PV ABI).
GUEST_KERNEL_BASE = 0xFFFF_8800_0000_0000

#: Conventional base for guest user-space mappings (vDSO and friends).
GUEST_USER_BASE = 0x0000_7F00_0000_0000


def directmap_va(mfn: int, word: int = 0) -> int:
    """Hypervisor-linear address of word ``word`` of frame ``mfn``."""
    return XEN_DIRECTMAP_START + mfn * PAGE_SIZE + word * 8


def alias_va(mfn: int, word: int = 0) -> int:
    """Guest-visible linear-alias address of a frame (pre-hardening)."""
    return LINEAR_ALIAS_START + mfn * PAGE_SIZE + word * 8


def guest_kernel_va(pfn: int, word: int = 0) -> int:
    """Guest-kernel virtual address of guest pseudo-physical page ``pfn``."""
    return GUEST_KERNEL_BASE + pfn * PAGE_SIZE + word * 8


def in_hypervisor_area(va: int) -> bool:
    """Is ``va`` inside the hypervisor-reserved slots?"""
    return HYPERVISOR_VIRT_START <= va < HYPERVISOR_VIRT_END


def in_ro_mpt(va: int) -> bool:
    """Is ``va`` inside the read-only machine-to-phys window?"""
    return RO_MPT_START <= va < RO_MPT_END


def in_linear_alias(va: int) -> bool:
    """Is ``va`` inside the (pre-hardening) RWX linear alias?"""
    return LINEAR_ALIAS_START <= va < LINEAR_ALIAS_END


def in_xen_directmap(va: int) -> bool:
    """Is ``va`` inside the hypervisor-private direct map?"""
    return XEN_DIRECTMAP_START <= va < XEN_DIRECTMAP_END


def slot_base(slot: int) -> int:
    """Canonical base address of an L4 slot."""
    from repro.xen.paging import build_va

    return build_va(slot, 0, 0, 0)


assert LINEAR_ALIAS_FIRST_L3 == 256, "alias must start at L3 index 256"
assert L4_COVERAGE == 1 << 39
