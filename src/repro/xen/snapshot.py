"""Machine-state snapshots and differential comparison.

Auditing an erroneous state ultimately means comparing memory against
what it should be.  The paper does this by hand (page-table walks,
re-reading corrupted words); this module generalises it: capture a
snapshot of all machine frames, run something, and diff — yielding
exactly which words changed.  The differential-equivalence analysis
(:mod:`repro.core.differential`) builds on this to compare an exploit
run against an injection run location by location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.xen.constants import WORDS_PER_PAGE
from repro.xen.machine import Machine


@dataclass(frozen=True)
class WordChange:
    """One changed memory word."""

    mfn: int
    word: int
    old: int
    new: int

    @property
    def location(self) -> Tuple[int, int]:
        return (self.mfn, self.word)


class MachineSnapshot:
    """An immutable copy of all frame contents at capture time."""

    def __init__(self, frames: Dict[int, np.ndarray], num_frames: int):
        self._frames = frames
        self.num_frames = num_frames

    @classmethod
    def capture(cls, machine: Machine) -> "MachineSnapshot":
        frames = {
            mfn: frame.copy()
            for mfn, frame in machine._frames.items()  # noqa: SLF001 — snapshotting is privileged
        }
        return cls(frames=frames, num_frames=machine.num_frames)

    def word(self, mfn: int, index: int) -> int:
        frame = self._frames.get(mfn)
        if frame is None:
            return 0
        return int(frame[index])

    # ------------------------------------------------------------------

    def diff(self, machine: Machine) -> List[WordChange]:
        """All words that differ between this snapshot and ``machine``
        now, in (mfn, word) order."""
        changes: List[WordChange] = []
        mfns = set(self._frames) | set(machine._frames)  # noqa: SLF001
        zero = np.zeros(WORDS_PER_PAGE, dtype=np.uint64)
        for mfn in sorted(mfns):
            old = self._frames.get(mfn)
            new = machine._frames.get(mfn)  # noqa: SLF001
            old_arr = old if old is not None else zero
            new_arr = new if new is not None else zero
            hits = np.nonzero(old_arr != new_arr)[0]
            for index in hits:
                changes.append(
                    WordChange(
                        mfn=mfn,
                        word=int(index),
                        old=int(old_arr[index]),
                        new=int(new_arr[index]),
                    )
                )
        return changes

    def changed_frames(self, machine: Machine) -> Set[int]:
        return {change.mfn for change in self.diff(machine)}
