"""Machine-state snapshots, differential comparison, and restore.

Auditing an erroneous state ultimately means comparing memory against
what it should be.  The paper does this by hand (page-table walks,
re-reading corrupted words); this module generalises it: capture a
snapshot of all machine frames, run something, and diff — yielding
exactly which words changed.  The differential-equivalence analysis
(:mod:`repro.core.differential`) builds on this to compare an exploit
run against an injection run location by location.

Snapshots are also the substrate of ReHype-style microreboot recovery
(:mod:`repro.resilience.recovery`): :meth:`MachineSnapshot.restore`
rolls a machine back to the captured contents — words, code blobs and
the frame allocator — so a campaign can recover the simulated
hypervisor after a :class:`~repro.errors.HypervisorCrash` instead of
abandoning the trial.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import MachineError
from repro.xen.constants import WORDS_PER_PAGE
from repro.xen.machine import Machine

#: Byte image of an untouched (all-zero) frame, for digesting frames
#: that were never materialised in the machine's lazy frame map.
_ZERO_FRAME_BYTES = np.zeros(WORDS_PER_PAGE, dtype=np.uint64).tobytes()


def blob_fingerprint(blob: object) -> str:
    """A stable content fingerprint for an opaque code blob.

    Blobs are arbitrary Python objects, so the fingerprint covers what
    is stable and comparable across processes: the class name plus
    every public attribute with a primitive value.  Two payloads built
    from the same recorded parameters fingerprint identically; live
    object references (networks, callbacks) are deliberately excluded.
    """
    parts = [type(blob).__name__]
    attrs = getattr(blob, "__dict__", None) or {}
    for name in sorted(attrs):
        if name.startswith("_"):
            continue
        value = attrs[name]
        if isinstance(value, (bool, int, float, str)) or value is None:
            parts.append(f"{name}={value!r}")
    return "|".join(parts)


def frame_digest(machine: Machine, mfn: int) -> str:
    """Digest of one frame: its 512 words plus any blobs attached to it."""
    digest = hashlib.sha1()
    frame = machine._frames.get(mfn)  # noqa: SLF001 — digesting is privileged
    # .data hashes the array buffer without the tobytes() copy; frames
    # are contiguous 1-D uint64 arrays, so the bytes are identical.
    digest.update(frame.data if frame is not None else _ZERO_FRAME_BYTES)
    attached = [
        (word, blob)
        for (blob_mfn, word), blob in machine._blobs.items()  # noqa: SLF001
        if blob_mfn == mfn
    ]
    for word, blob in sorted(attached, key=lambda item: item[0]):
        digest.update(f"{word}:{blob_fingerprint(blob)}".encode())
    return digest.hexdigest()


def machine_digest(machine: Machine) -> str:
    """Digest of the whole machine: every materialised frame and blob.

    This is the state fingerprint the trace subsystem records at trial
    boundaries and the recovery manager re-validates after a rollback:
    two machines that executed the same operations digest identically.
    """
    digest = hashlib.sha1()
    for mfn, frame in sorted(machine._frames.items()):  # noqa: SLF001
        digest.update(mfn.to_bytes(8, "little"))
        digest.update(frame.data)
    for (mfn, word), blob in sorted(
        machine._blobs.items(), key=lambda item: item[0]  # noqa: SLF001
    ):
        digest.update(f"{mfn}:{word}:{blob_fingerprint(blob)}".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class WordChange:
    """One changed memory word."""

    mfn: int
    word: int
    old: int
    new: int

    @property
    def location(self) -> Tuple[int, int]:
        return (self.mfn, self.word)


class MachineSnapshot:
    """An immutable copy of all frame contents at capture time.

    :meth:`capture` also records the blob map (opaque "code" payloads)
    and the frame allocator's state, which is what makes
    :meth:`restore` an exact inverse: capture → arbitrary mutations →
    restore leaves :meth:`diff` empty and the allocator exactly as it
    was.  Blob objects themselves are shared, not copied — they are
    opaque to the machine model and treated as immutable.
    """

    def __init__(
        self,
        frames: Dict[int, np.ndarray],
        num_frames: int,
        blobs: Optional[Dict[Tuple[int, int], object]] = None,
        allocated: Optional[Set[int]] = None,
        free: Optional[List[int]] = None,
    ):
        self._frames = frames
        self.num_frames = num_frames
        self._blobs = blobs
        self._allocated = allocated
        self._free = free

    @classmethod
    def capture(cls, machine: Machine) -> "MachineSnapshot":
        frames = {
            mfn: frame.copy()
            for mfn, frame in machine._frames.items()  # noqa: SLF001 — snapshotting is privileged
        }
        return cls(
            frames=frames,
            num_frames=machine.num_frames,
            blobs=dict(machine._blobs),  # noqa: SLF001
            allocated=set(machine._allocated),  # noqa: SLF001
            free=list(machine._free),  # noqa: SLF001
        )

    def word(self, mfn: int, index: int) -> int:
        frame = self._frames.get(mfn)
        if frame is None:
            return 0
        return int(frame[index])

    # ------------------------------------------------------------------

    def diff(self, machine: Machine) -> List[WordChange]:
        """All words that differ between this snapshot and ``machine``
        now, in (mfn, word) order."""
        changes: List[WordChange] = []
        mfns = set(self._frames) | set(machine._frames)  # noqa: SLF001
        zero = np.zeros(WORDS_PER_PAGE, dtype=np.uint64)
        for mfn in sorted(mfns):
            old = self._frames.get(mfn)
            new = machine._frames.get(mfn)  # noqa: SLF001
            old_arr = old if old is not None else zero
            new_arr = new if new is not None else zero
            hits = np.nonzero(old_arr != new_arr)[0]
            for index in hits:
                changes.append(
                    WordChange(
                        mfn=mfn,
                        word=int(index),
                        old=int(old_arr[index]),
                        new=int(new_arr[index]),
                    )
                )
        return changes

    def changed_frames(self, machine: Machine) -> Set[int]:
        return {change.mfn for change in self.diff(machine)}

    # ------------------------------------------------------------------

    def restore(self, machine: Machine) -> int:
        """Roll ``machine`` back to this snapshot's contents.

        Restores every frame's words, the blob map, and — when the
        snapshot captured them — the allocator's free list and
        allocated set, so subsequent :meth:`diff` calls against the
        restored machine are empty and later allocations proceed
        exactly as they would have from the checkpoint.

        Returns the number of words that had to be rewritten (the size
        of the diff at restore time), which recovery reports surface as
        the rollback's footprint.
        """
        if machine.num_frames != self.num_frames:
            raise MachineError(
                f"snapshot of a {self.num_frames}-frame machine cannot "
                f"restore a {machine.num_frames}-frame machine"
            )
        rewritten = len(self.diff(machine))
        machine._frames = {  # noqa: SLF001 — restore is privileged
            mfn: frame.copy() for mfn, frame in self._frames.items()
        }
        if self._blobs is not None:
            machine._blobs = dict(self._blobs)  # noqa: SLF001
        if self._allocated is not None and self._free is not None:
            machine._allocated = set(self._allocated)  # noqa: SLF001
            machine._free = list(self._free)  # noqa: SLF001
        return rewritten
