"""repro — reproduction of *Intrusion Injection for Virtualized Systems* (DSN 2023).

The package is organised in layers:

``repro.xen``
    A behavioural simulator of the Xen paravirtualized hypervisor:
    machine memory, the frame table with Xen's page-type system,
    4-level page tables, the hypercall interface (including the
    version-gated XSA-148 / XSA-182 / XSA-212 defects), IDT and trap
    delivery, domains, grant tables and event channels.

``repro.guest``
    A guest-kernel simulator (pseudo-physical memory, page tables built
    through hypercalls, processes, filesystem, vDSO).

``repro.net``
    A tiny simulated network used by the XSA-148 reverse-shell
    scenario.

``repro.qemu``
    A minimal device-emulation substrate (floppy-disk controller) used
    for the paper's VENOM running example.

``repro.exploits``
    Re-implementations of the four third-party proof-of-concept
    exploits evaluated in the paper.

``repro.core``
    The paper's contribution: intrusion models, the abusive
    functionality taxonomy, the ``arbitrary_access()`` injector, the
    injection scripts, monitors, and the experiment campaign runner.

``repro.cvedata``
    The 100-record Xen CVE study behind Table I.

``repro.analysis``
    Renderers for the paper's tables.

``repro.vulngen``
    The synthetic injectable-vulnerability corpus (SPEC-RG taxonomy,
    version-gated, deterministic) and coverage-guided fuzz scheduling
    over it.
"""

from repro.core.benchmarking import SecurityBenchmark
from repro.core.campaign import Campaign, Mode, RunResult
from repro.core.fuzz import FuzzCampaign, RandomErroneousStateCampaign
from repro.core.injector import ArbitraryAccessAction, IntrusionInjector
from repro.core.model import IntrusionModel
from repro.core.taxonomy import AbusiveFunctionality, FunctionalityClass
from repro.core.testbed import TestBed, build_testbed
from repro.xen.hypervisor import Xen
from repro.xen.versions import XEN_4_6, XEN_4_8, XEN_4_13, XenVersion

__version__ = "1.0.0"

__all__ = [
    "AbusiveFunctionality",
    "ArbitraryAccessAction",
    "Campaign",
    "FunctionalityClass",
    "IntrusionInjector",
    "IntrusionModel",
    "Mode",
    "FuzzCampaign",
    "RandomErroneousStateCampaign",
    "RunResult",
    "SecurityBenchmark",
    "TestBed",
    "Xen",
    "XenVersion",
    "XEN_4_6",
    "XEN_4_8",
    "XEN_4_13",
    "build_testbed",
    "__version__",
]
