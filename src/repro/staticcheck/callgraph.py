"""A name-resolution call graph over a set of parsed modules.

The taint analysis is interprocedural: a handler that pushes a
guest-controlled value through ``self._commit(mfn)`` must see the
``machine.write_word`` inside ``_commit``.  Python being dynamically
dispatched, we resolve calls by the same pragmatic rules a reader
uses:

1. ``self.method(...)`` / ``cls.method(...)`` → a method of the
   enclosing class (or any class in the same module that defines it);
2. ``name(...)`` → a function in the same module;
3. otherwise → a *unique* bare-name match across all modules in the
   program (``granttable.map_ref`` called from ``hypercalls``); an
   ambiguous name resolves to nothing rather than to everything.

Unresolved calls are simply opaque: the analysis treats them as
identity-ish (tainted in → tainted out) and never as sinks, so
resolution misses cost recall, not precision.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.staticcheck.taint import call_name


@dataclass
class FunctionInfo:
    """One function in the program, with its resolution coordinates."""

    key: str  # "<norm_path>::<qualname>"
    path: str
    norm_path: str
    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: str = ""  # enclosing class, "" for module level

    @property
    def params(self) -> List[str]:
        fn = self.node
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        return [a.arg for a in fn.args.args if a.arg != "self"]


def _iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, str, ast.AST]]:
    """Yield (qualname, class_name, node) for every function/method."""
    stack: List[Tuple[str, str, ast.AST]] = [("", "", tree)]
    while stack:
        prefix, class_name, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, class_name, child
                stack.append((f"{qualname}.", class_name, child))
            elif isinstance(child, ast.ClassDef):
                stack.append((f"{prefix}{child.name}.", child.name, child))


class CallGraph:
    """Functions plus resolved call edges for a set of modules."""

    def __init__(self, modules: Sequence[Tuple[str, ast.Module]]):
        #: key -> FunctionInfo, in deterministic insertion order.
        self.functions: Dict[str, FunctionInfo] = {}
        #: (norm_path, bare name) -> keys defined in that module.
        self._by_module_name: Dict[Tuple[str, str], List[str]] = {}
        #: (norm_path, class, bare name) -> key.
        self._by_class_name: Dict[Tuple[str, str, str], str] = {}
        #: bare name -> all keys (for the unique-global fallback).
        self._by_name: Dict[str, List[str]] = {}

        for path, tree in sorted(modules, key=lambda m: m[0].replace("\\", "/")):
            norm = path.replace("\\", "/")
            for qualname, class_name, node in sorted(
                _iter_functions(tree), key=lambda item: item[0]
            ):
                assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                key = f"{norm}::{qualname}"
                info = FunctionInfo(
                    key=key,
                    path=path,
                    norm_path=norm,
                    qualname=qualname,
                    name=node.name,
                    node=node,
                    class_name=class_name,
                )
                self.functions[key] = info
                self._by_module_name.setdefault((norm, node.name), []).append(key)
                if class_name:
                    self._by_class_name[(norm, class_name, node.name)] = key
                self._by_name.setdefault(node.name, []).append(key)

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The callee ``call`` refers to, by the resolution rules above."""
        name = call_name(call)
        if name is None:
            return None
        func = call.func
        # self.method(...) → method in the caller's class first.
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                if caller.class_name:
                    key = self._by_class_name.get(
                        (caller.norm_path, caller.class_name, name)
                    )
                    if key is not None:
                        return self.functions[key]
                return self._module_match(caller.norm_path, name)
            # foo.bar(...): only a unique global definition resolves.
            return self._unique_global(name)
        # bar(...): same module first, then unique global.
        local = self._module_match(caller.norm_path, name)
        if local is not None:
            return local
        return self._unique_global(name)

    def _module_match(self, norm_path: str, name: str) -> Optional[FunctionInfo]:
        keys = self._by_module_name.get((norm_path, name), [])
        if len(keys) == 1:
            return self.functions[keys[0]]
        return None

    def _unique_global(self, name: str) -> Optional[FunctionInfo]:
        keys = self._by_name.get(name, [])
        if len(keys) == 1:
            return self.functions[keys[0]]
        return None

    def callees(self, info: FunctionInfo) -> List[Tuple[ast.Call, FunctionInfo]]:
        """Resolved (call site, callee) pairs inside ``info``."""
        pairs: List[Tuple[ast.Call, FunctionInfo]] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                callee = self.resolve_call(info, node)
                if callee is not None and callee.key != info.key:
                    pairs.append((node, callee))
        return pairs

    def topological_order(self) -> List[FunctionInfo]:
        """Callees before callers (cycles broken by first-seen order).

        Summary computation wants a callee's summary ready before its
        callers are analysed; within a cycle the analysis iterates to
        a fixpoint instead.
        """
        order: List[FunctionInfo] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(info: FunctionInfo) -> None:
            mark = state.get(info.key)
            if mark is not None:
                return
            state[info.key] = 0
            for _, callee in self.callees(info):
                if state.get(callee.key) is None:
                    visit(callee)
            state[info.key] = 1
            order.append(info)

        for info in self.functions.values():
            visit(info)
        return order
