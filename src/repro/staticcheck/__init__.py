"""Domain-aware static analysis for the simulator's hypervisor invariants.

The paper's three use cases all stem from *missing checks* on
privileged state transitions: XSA-212 is an absent bounds check,
XSA-148 a missing L2-entry invariant check, XSA-182 a fast path that
skips re-validation.  The simulator encodes the corrected checks in
Python — refcount pairing in :mod:`repro.xen.frames`, ownership gates
in the hypercall handlers, the ``SimulationError`` taxonomy, per-trial
seeded RNGs — and this package enforces, at the AST level, that future
changes keep encoding them:

* **R1 refcount-balance** — ``frames.get_page``/``get_page_type``
  references must be released on every exit path (the XSA-212 family:
  a reference leaked on an error edge is a latent type-confusion);
* **R2 privilege-gate** — hypercall handlers that mutate MFN-level
  state must consult ownership or privilege first (the XSA-148 family:
  a mutation without a gate is the vulnerability shape itself);
* **R3 error-taxonomy** — no bare ``except:``/``raise Exception``;
  ``HypervisorCrash``/``DoubleFault`` may never be silently swallowed;
* **R4 determinism** — no module-level RNG, wall-clock reads, or
  unordered-set iteration in ``repro.core``/``repro.runner`` (parallel
  campaigns must equal serial ones, bit for bit);
* **R5 version-gating** — Xen-version conditionals go through
  :mod:`repro.xen.versions` predicates, never raw comparisons;
* **R7 tainted-sink** — interprocedural dataflow
  (:mod:`repro.staticcheck.dataflow`): guest-controlled values
  (hypercall arguments, ring payloads, guest PTE contents) must pass
  an ownership/privilege/bounds sanitizer that *dominates* the sink
  (machine writes, frame-type transitions, refcount ops, directmap),
  even when the sink lives in a helper the handler calls;
* **R8 toctou-window** — a sanitizer check and its dependent sink may
  not be separated by a yield/preemption point without re-validation
  (XSA-182's fast-path bug as a dataflow property).

Detection quality is *measured*, not assumed: the evaluation harness
(:mod:`repro.staticcheck.evaluation`, ``repro staticcheck-eval``)
renders the ``repro.vulngen`` synthetic corpus to vulnerable/hardened
handler pairs and scores per-class precision/recall/F1 against ground
truth; CI pins per-class recall floors.

Deliberate exceptions carry inline waivers
(``# staticcheck: ignore[R1] reason`` / ``# staticcheck: trusted``);
known legacy findings can be accepted wholesale via a baseline file.
Entry points: ``repro staticcheck`` on the command line,
:func:`repro.staticcheck.engine.check_paths` from code.
"""

from repro.staticcheck.baseline import load_baseline, write_baseline
from repro.staticcheck.engine import CheckResult, check_paths, check_source
from repro.staticcheck.evaluation import (
    RECALL_FLOORS,
    EvaluationReport,
    evaluate_corpus,
)
from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RULE_REGISTRY

__all__ = [
    "CheckResult",
    "EvaluationReport",
    "Finding",
    "RECALL_FLOORS",
    "RULE_REGISTRY",
    "check_paths",
    "check_source",
    "evaluate_corpus",
    "load_baseline",
    "write_baseline",
]
