"""The ``repro staticcheck`` subcommand.

Usage::

    repro staticcheck [PATHS...]            # default: src
    repro staticcheck src --json report.json
    repro staticcheck src --rules R1,R3
    repro staticcheck src --baseline staticcheck.baseline.json
    repro staticcheck src --write-baseline staticcheck.baseline.json
    repro staticcheck src --update-baseline staticcheck.baseline.json
    repro staticcheck src --sarif report.sarif
    repro staticcheck --list-rules
    repro staticcheck-eval --json eval.json

Exit codes: 0 clean (waived/baselined findings do not count), 1 when
any finding or parse error remains, 2 on usage errors.
``--update-baseline`` exits 1 when the refreshed baseline *grew* —
new fingerprints are unexplained debt; shrinkage (fixed findings) is
recorded silently.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.staticcheck.baseline import load_baseline, write_baseline
from repro.staticcheck.engine import check_paths
from repro.staticcheck.reporters import render_json, render_sarif, render_text
from repro.staticcheck.rules import RULE_REGISTRY


def load_config(pyproject: str = "pyproject.toml") -> dict:
    """The ``[tool.staticcheck]`` table, or ``{}``.

    Config is best-effort: no pyproject, no ``tomllib`` (Python < 3.11
    without tomli), or no table all mean defaults.
    """
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return {}
    try:
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, ValueError):
        return {}
    table = data.get("tool", {}).get("staticcheck", {})
    return table if isinstance(table, dict) else {}


def add_staticcheck_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the subcommand to the main ``repro`` parser."""
    parser = sub.add_parser(
        "staticcheck",
        help="enforce the simulator's hypervisor invariants on the source",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to check "
        "(default: [tool.staticcheck] paths in pyproject.toml, else src)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write a JSON findings report (CI artifact)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="accept findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--update-baseline", metavar="PATH",
        help="refresh an existing baseline in place and diff it; exits "
        "1 when new fingerprints appeared (unexplained growth)",
    )
    parser.add_argument(
        "--sarif", metavar="PATH",
        help="also write a SARIF 2.1.0 report (code-scanning upload)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list waived and baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe the rule set and exit",
    )


def add_staticcheck_eval_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the detection-evaluation subcommand."""
    parser = sub.add_parser(
        "staticcheck-eval",
        help="score the checker's precision/recall on the synthetic "
        "vulnerability corpus",
    )
    parser.add_argument(
        "--root-seed", type=int, default=None,
        help="corpus root seed (default: the shipped corpus seed)",
    )
    parser.add_argument(
        "--size", type=int, default=None,
        help="corpus size (default: the shipped corpus size)",
    )
    parser.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated rule ids to evaluate (default: R1,R7,R8)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the byte-stable JSON report (CI artifact)",
    )


def run_staticcheck_eval(args: argparse.Namespace) -> int:
    """Execute ``staticcheck-eval``; exit 1 when a recall floor breaks."""
    from repro.staticcheck.evaluation import (
        DEFAULT_RULES,
        evaluate_corpus,
    )
    from repro.vulngen.corpus import DEFAULT_ROOT_SEED, DEFAULT_SIZE

    rules = DEFAULT_RULES
    if args.rules:
        rules = tuple(
            part.strip().upper()
            for part in args.rules.split(",")
            if part.strip()
        )
    try:
        report = evaluate_corpus(
            root_seed=(
                args.root_seed if args.root_seed is not None
                else DEFAULT_ROOT_SEED
            ),
            size=args.size if args.size is not None else DEFAULT_SIZE,
            rules=rules,
        )
    except (KeyError, ValueError) as exc:
        print(f"staticcheck-eval: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    print(report.render())
    return 0 if report.floors_met else 1


def run_staticcheck(args: argparse.Namespace) -> int:
    """Execute the subcommand; returns the process exit code."""
    if args.list_rules:
        for rule in sorted(RULE_REGISTRY.values(), key=lambda r: r.id):
            print(f"{rule.id}  {rule.name:<18} {rule.description}")
        return 0

    config = load_config()
    paths = args.paths or config.get("paths") or ["src"]

    rule_ids: Optional[List[str]] = None
    if args.rules:
        rule_ids = [part for part in args.rules.split(",") if part.strip()]

    baseline: set = set()
    baseline_path = args.baseline or args.update_baseline or config.get("baseline")
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except OSError as exc:
            if not args.update_baseline:
                print(f"staticcheck: bad baseline: {exc}", file=sys.stderr)
                return 2
            baseline = set()  # first --update-baseline run creates the file
        except ValueError as exc:
            print(f"staticcheck: bad baseline: {exc}", file=sys.stderr)
            return 2

    try:
        result = check_paths(paths, rules=rule_ids, baseline=baseline)
    except KeyError as exc:
        print(f"staticcheck: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(
            args.write_baseline, result.findings + result.baselined
        )
        print(
            f"staticcheck: baselined {count} finding(s) into "
            f"{args.write_baseline}"
        )
        return 0

    if args.update_baseline:
        current = result.findings + result.baselined
        fingerprints = {f.fingerprint for f in current}
        added = sorted(
            {f.fingerprint: f for f in current if f.fingerprint not in baseline}
            .values(),
            key=lambda f: (f.path, f.line, f.rule),
        )
        removed = sorted(baseline - fingerprints)
        count = write_baseline(args.update_baseline, current)
        print(
            f"staticcheck: refreshed {args.update_baseline}: {count} "
            f"finding(s), {len(added)} new, {len(removed)} fixed"
        )
        for finding in added:
            print(f"  new: {finding.render().splitlines()[0]}")
        # Growth is unexplained debt; shrinkage is progress.  Parse
        # errors still fail regardless.
        return 1 if (added or result.errors) else 0

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_json(result))

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(result))

    print(render_text(result, verbose=args.verbose))
    return result.exit_code
