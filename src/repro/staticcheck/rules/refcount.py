"""R1 — refcount balance over ``frames.get_page*`` / ``put_page*``.

XSA-212's lesson is that one missed release or one early error return
in a handler turns the frame-table discipline into a type-confusion
primitive.  This rule walks each function's AST as a small control-flow
graph, tracking the net number of frame references taken through the
frame table (``*.frames.get_page`` / ``get_page_type`` add one,
``put_page`` / ``put_page_type`` release one), and reports:

* an explicit ``raise`` reached while references are still held (the
  "early ``raise HypercallError`` between get and put" leak);
* return paths that disagree about the balance (one path releases, a
  sibling path forgets);
* a function that falls off the end holding references without
  returning a handle to them.

A function *may* exit with a consistent positive balance if every such
exit returns a value — that is the producer idiom
(``map_grant_ref`` returns the MFN whose reference the caller now
owns).  Deliberate transfers into long-lived state (a loaded CR3, a
page-table entry) are waived on the ``def`` line instead.

Approximations (this is a linter, not a verifier): loops are analysed
as executing zero-or-one times, and a ``raise`` inside a ``try`` with
handlers is assumed caught — the handler is analysed starting from
every balance observed inside the ``try`` body, so rollback paths are
still checked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule

#: Tracked frame-table calls and their reference delta.
_DELTAS: Dict[str, int] = {
    "get_page": 1,
    "get_page_type": 1,
    "put_page": -1,
    "put_page_type": -1,
}

Balances = FrozenSet[int]


def _receiver_tail(node: ast.expr) -> Optional[str]:
    """Last component of an attribute chain (``xen.frames`` -> ``frames``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_delta(node: ast.Call) -> int:
    """Reference delta of one call (0 when untracked).

    Only calls *through the frame table* count — the receiver chain
    must end in ``frames`` — so the ``FrameTable`` implementation's own
    ``self.get_page_type`` plumbing is not double-counted.
    """
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _DELTAS:
        if _receiver_tail(func.value) == "frames":
            return _DELTAS[func.attr]
    return 0


@dataclass
class _Exit:
    kind: str  # "raise" | "return"
    lineno: int
    balances: Balances
    returns_value: bool = False


_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass
class _Walker:
    """Abstract interpreter over one function body.

    Carries the set of possible reference balances through every
    statement; records every function exit with the balances that can
    reach it.
    """

    exits: List[_Exit] = field(default_factory=list)
    _break_stack: List[Set[int]] = field(default_factory=list)

    # -- expression handling -------------------------------------------

    def _expr_delta(self, node: Optional[ast.AST], balances: Balances) -> Balances:
        """Apply tracked calls appearing inside one expression/statement."""
        if node is None:
            return balances
        for sub in ast.walk(node):
            if isinstance(sub, _SKIP_NESTED):
                continue
            if isinstance(sub, ast.Call):
                delta = _call_delta(sub)
                if delta:
                    balances = frozenset(b + delta for b in balances)
        return balances

    # -- statement handling --------------------------------------------

    def walk(
        self, stmts: List[ast.stmt], balances: Balances
    ) -> Tuple[Balances, Balances]:
        """Run a statement list; returns (out_balances, seen_balances).

        ``seen`` is the union of balances observable at any point in
        the list — the entry states an exception handler must cope
        with.
        """
        seen: Set[int] = set(balances)
        for stmt in stmts:
            if not balances:
                break  # everything above exited; the rest is unreachable
            balances, inner_seen = self._stmt(stmt, balances)
            seen |= inner_seen
            seen |= balances
        return balances, frozenset(seen)

    def _stmt(self, stmt: ast.stmt, balances: Balances) -> Tuple[Balances, Balances]:
        if isinstance(stmt, _SKIP_NESTED):
            return balances, balances  # nested scopes are analysed separately

        if isinstance(stmt, ast.Return):
            balances = self._expr_delta(stmt.value, balances)
            returns_value = stmt.value is not None and not (
                isinstance(stmt.value, ast.Constant) and stmt.value.value is None
            )
            self.exits.append(
                _Exit("return", stmt.lineno, balances, returns_value)
            )
            return frozenset(), balances

        if isinstance(stmt, ast.Raise):
            balances = self._expr_delta(stmt.exc, balances)
            self.exits.append(_Exit("raise", stmt.lineno, balances))
            return frozenset(), balances

        if isinstance(stmt, (ast.Break, ast.Continue)):
            if self._break_stack:
                self._break_stack[-1] |= balances
            return frozenset(), balances

        if isinstance(stmt, ast.If):
            balances = self._expr_delta(stmt.test, balances)
            body_out, body_seen = self.walk(stmt.body, balances)
            else_out, else_seen = self.walk(stmt.orelse, balances)
            return body_out | else_out, body_seen | else_seen

        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            entry = self._expr_delta(head, balances)
            self._break_stack.append(set())
            body_out, body_seen = self.walk(stmt.body, entry)
            breaks = frozenset(self._break_stack.pop())
            merged = entry | body_out | breaks  # zero-or-one iterations
            else_out, else_seen = self.walk(stmt.orelse, merged)
            return else_out, body_seen | else_seen | merged

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                balances = self._expr_delta(item.context_expr, balances)
            return self.walk(stmt.body, balances)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, balances)

        # Simple statement: apply any tracked calls it contains.
        return self._expr_delta(stmt, balances), balances

    def _try(self, stmt: ast.Try, balances: Balances) -> Tuple[Balances, Balances]:
        mark = len(self.exits)
        try_out, try_seen = self.walk(stmt.body, balances)
        if stmt.handlers:
            # A raise inside a handled try is assumed caught; the
            # handler walk below covers the resulting balances.
            self.exits[mark:] = [
                e for e in self.exits[mark:] if e.kind != "raise"
            ]
        handler_out: Set[int] = set()
        handler_seen: Set[int] = set()
        for handler in stmt.handlers:
            h_out, h_seen = self.walk(handler.body, try_seen)
            handler_out |= h_out
            handler_seen |= h_seen
        else_out, else_seen = self.walk(stmt.orelse, try_out)
        combined = frozenset(else_out | handler_out)
        all_seen = try_seen | frozenset(handler_seen) | else_seen
        if stmt.finalbody:
            # The finally body runs on every path out of the try,
            # including exits recorded inside it.
            shift_out, _ = _Walker().walk(stmt.finalbody, frozenset({0}))
            if len(shift_out) == 1:
                (shift,) = shift_out
                if shift:
                    for exit_ in self.exits[mark:]:
                        exit_.balances = frozenset(
                            b + shift for b in exit_.balances
                        )
            combined, final_seen = self.walk(stmt.finalbody, combined)
            all_seen |= final_seen
        return combined, frozenset(all_seen)


def _check_function(
    ctx: RuleContext, func: ast.FunctionDef, qualname: str
) -> List[Finding]:
    walker = _Walker()
    out, _ = walker.walk(func.body, frozenset({0}))
    if out:  # falling off the end is an implicit bare return
        walker.exits.append(_Exit("return", func.lineno, out, False))

    findings: List[Finding] = []
    for exit_ in walker.exits:
        if exit_.kind == "raise" and max(exit_.balances, default=0) > 0:
            held = max(exit_.balances)
            findings.append(
                ctx.finding(
                    "R1",
                    exit_,
                    f"exception path may leak {held} frame reference(s) "
                    "taken via get_page/get_page_type",
                    hint="release with put_page/put_page_type before "
                    "raising, or guard the region with try/finally",
                    function=qualname,
                )
            )

    return_exits = [e for e in walker.exits if e.kind == "return"]
    values = sorted({b for e in return_exits for b in e.balances})
    if len(values) > 1:
        findings.append(
            ctx.finding(
                "R1",
                func,
                "return paths disagree about the frame-reference "
                f"balance (possible balances: {values})",
                hint="every path must release what it took; waive on the "
                "def line (# staticcheck: ignore[R1] reason) if one path "
                "deliberately transfers the reference",
                function=qualname,
            )
        )
    elif values and values[0] > 0:
        silent = [e for e in return_exits if not e.returns_value]
        if silent:
            findings.append(
                ctx.finding(
                    "R1",
                    silent[0],
                    f"function exits holding +{values[0]} frame "
                    "reference(s) without returning a handle to them",
                    hint="balance the get with a put, or waive on the def "
                    "line if the reference is deliberately parked in "
                    "long-lived state",
                    function=qualname,
                )
            )
    return findings


@rule(
    "R1",
    "refcount-balance",
    "frame references taken via frames.get_page/get_page_type must be "
    "released on every exit path (repro.xen)",
)
def check_refcount_balance(ctx: RuleContext) -> List[Finding]:
    """R1: every frame reference taken must be released on all exits."""
    if not ctx.in_tree("repro/xen/"):
        return []
    findings: List[Finding] = []
    for qualname, func in _iter_functions(ctx.tree):
        findings.extend(_check_function(ctx, func, qualname))
    return findings


def _iter_functions(tree: ast.Module):
    """Yield (qualname, node) for every function, including methods."""
    stack: List[Tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child
                stack.append((f"{name}.", child))
            elif isinstance(child, ast.ClassDef):
                stack.append((f"{prefix}{child.name}.", child))
