"""R7 — guest-controlled values must be checked before dangerous sinks.

This is the interprocedural generalisation of R2: where R2 asks "does
the handler consult ownership *anywhere*", R7 follows each
guest-controlled value (hypercall arguments, ring payloads, guest PTE
contents) through assignments and calls and demands a sanitizer that
*dominates* the sink on the actual path — a check on a sibling branch,
or after the write, does not count.  The engine, the model and the
finding format (source→sink trace in the message) live in
:mod:`repro.staticcheck.dataflow` / :mod:`repro.staticcheck.taint`;
this module is the per-file dispatch glue.
"""

from __future__ import annotations

from typing import List

from repro.staticcheck.dataflow import Program, in_analysis_scope
from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule


def _program_for(ctx: RuleContext) -> Program:
    if ctx.program is not None:
        return ctx.program
    # Single-file pipeline (check_source): intra-module resolution only.
    ctx.program = Program([(ctx.path, ctx.tree)])
    return ctx.program


@rule(
    "R7",
    "tainted-sink",
    "guest-controlled values (hypercall arguments, ring payloads) must "
    "pass an ownership/privilege/bounds check before reaching machine "
    "writes, frame-type transitions, refcount ops or the directmap",
)
def check_tainted_sinks(ctx: RuleContext) -> List[Finding]:
    """R7: no unsanitized guest-controlled value may reach a sink."""
    if not in_analysis_scope(ctx.norm_path):
        return []
    return [
        finding
        for finding in _program_for(ctx).findings_for(ctx.path)
        if finding.rule == "R7"
    ]
