"""Rule registry and the per-file context rules receive.

Every rule is a function ``check(ctx) -> List[Finding]`` registered
under a stable id.  Rules self-scope: each knows which part of the
tree it guards (R1 watches ``repro/xen``, R4 watches ``repro/core`` +
``repro/runner``, ...), so the engine can hand every file to every
rule and let out-of-scope rules return nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.staticcheck.model import Finding


@dataclass
class RuleContext:
    """Everything a rule needs to inspect one file."""

    path: str
    tree: ast.Module
    source: str
    #: Whole-run program view for interprocedural rules (R7/R8): a
    #: :class:`repro.staticcheck.dataflow.Program` when ``check_paths``
    #: built one, else ``None`` (rules fall back to a one-file view).
    program: Optional[Any] = None
    #: Path normalized to forward slashes, for scope matching.
    norm_path: str = field(init=False)

    def __post_init__(self) -> None:
        self.norm_path = self.path.replace("\\", "/")

    def in_tree(self, fragment: str) -> bool:
        """Is this file under the given path fragment (e.g. ``repro/xen/``)?"""
        return fragment in self.norm_path

    def is_file(self, name: str) -> bool:
        return self.norm_path.endswith(name)

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        function: str = "",
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
            function=function,
        )


CheckFn = Callable[[RuleContext], List[Finding]]


@dataclass(frozen=True)
class Rule:
    id: str
    name: str
    description: str
    check: CheckFn


RULE_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, name: str, description: str) -> Callable[[CheckFn], CheckFn]:
    """Register a check function under ``rule_id``."""

    def decorator(fn: CheckFn) -> CheckFn:
        if rule_id in RULE_REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULE_REGISTRY[rule_id] = Rule(
            id=rule_id, name=name, description=description, check=fn
        )
        return fn

    return decorator


def _load_rules() -> None:
    """Import the rule modules so their decorators run."""
    from repro.staticcheck.rules import (  # noqa: F401
        determinism,
        errortaxonomy,
        instancepatch,
        privilege,
        refcount,
        taintsink,
        toctou,
        topologyindexing,
        versiongate,
    )


_load_rules()
