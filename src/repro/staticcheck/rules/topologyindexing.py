"""R9 — scenario roles, not positional guest indexing.

Before :mod:`repro.core.topology` existed, the single-attacker/
dom0-victim assumption hid in positional subscripts: ``bed.guests[-1]``
*was* the attacker, ``guests[0]`` the victim's stand-in.  Those sites
silently break the moment a campaign varies the topology — the code
still runs, but against the wrong domain.  The refactor replaced every
one with a role accessor (``bed.attacker_domain``, ``victim_domain``,
``observer_domain``, ``victim_guest``, ``domain_by_name``), and this
rule keeps the positional idiom from creeping back:

* any **constant subscript** of a ``guests`` attribute or name —
  ``bed.guests[0]``, ``self.guests[-1]`` — is flagged; iteration
  (``for guest in bed.guests``) and dynamic indexing stay legal, since
  walking all guests is topology-honest.

Scope: everything under ``repro/`` except ``repro/core/topology.py``
and ``repro/core/testbed.py``, which define the sanctioned accessors
(the testbed's own properties must index somewhere).
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule

_HINT = (
    "resolve the domain through its scenario role instead: "
    "bed.attacker_domain / bed.victim_domain / bed.observer_domain / "
    "bed.victim_guest, or bed.domain_by_name(...) for an explicit name "
    "(see repro.core.topology)"
)


def _is_guests(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr == "guests"
    return isinstance(node, ast.Name) and node.id == "guests"


def _constant_index(node: ast.expr) -> bool:
    """A literal (possibly negative) integer subscript."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    )


@rule(
    "R9",
    "topology-indexing",
    "no positional guests[<const>] indexing outside the topology/"
    "testbed accessors — domains are reached through scenario roles",
)
def check_topology_indexing(ctx: RuleContext) -> List[Finding]:
    """R9: flag constant subscripts of guest lists."""
    if not ctx.in_tree("repro/"):
        return []
    if ctx.is_file("repro/core/topology.py") or ctx.is_file(
        "repro/core/testbed.py"
    ):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Subscript)
            and _is_guests(node.value)
            and _constant_index(node.slice)
        ):
            findings.append(
                ctx.finding(
                    "R9",
                    node,
                    "positional guest indexing `guests[<const>]` bakes "
                    "one scenario topology into the code",
                    hint=_HINT,
                )
            )
    return findings
