"""R6 — no instance-level method patching of simulator objects.

Before the probe bus existed, observers (the trace recorder, the
replayer's machine tap) hooked the simulator by *rebinding methods on
live instances* — ``machine.write_word = wrapper`` — which is
invisible to readers of the patched class, breaks when two observers
race for the same slot, and leaks when detach logic misses a path.
The :mod:`repro.probes` bus replaced every such site with named probe
points, and this rule keeps the old idiom from creeping back:

* assigning to a **simulator entry-point attribute** on any object
  other than ``self`` (``bed.xen.hypercall = ...``,
  ``machine.zero_frame = ...``) is flagged — ``self.recover = recover``
  style field initialisation stays legal, since a dataclass-ish field
  that happens to share a method's name is not a patch;
* the same through **``setattr``** with a constant attribute name
  (``setattr(machine, "write_word", ...)``).

Scope: everything under ``repro/`` except ``repro/probes/`` itself,
which owns the one sanctioned interception mechanism.
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule

#: The probed simulator entry points (see repro.probes.points): the
#: method slots observers used to patch before the bus existed.
PATCHABLE_METHODS = frozenset(
    {
        "write_word",
        "attach_blob",
        "zero_frame",
        "copy_frame",
        "hypercall",
        "deliver_page_fault",
        "software_interrupt",
        "tick",
        "run_user_work",
        "checkpoint",
        "recover",
    }
)

_HINT = (
    "subscribe through the probe bus instead: "
    "bed.probes.attach([(points.<POINT>, subscriber)]) "
    "(see repro.probes)"
)


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


@rule(
    "R6",
    "instance-patching",
    "no instance-level rebinding of simulator entry-point methods "
    "(write_word, hypercall, tick, ...) outside repro/probes — "
    "observers must subscribe through the probe bus",
)
def check_instance_patching(ctx: RuleContext) -> List[Finding]:
    """R6: flag setattr-style method patching of simulator objects."""
    if not ctx.in_tree("repro/") or ctx.in_tree("repro/probes/"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in PATCHABLE_METHODS
                    and not _is_self(target.value)
                ):
                    findings.append(
                        ctx.finding(
                            "R6",
                            target,
                            f"instance-level patch of simulator method "
                            f"`.{target.attr}` — invisible hooking the "
                            "probe bus replaced",
                            hint=_HINT,
                        )
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "setattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value in PATCHABLE_METHODS
                and not _is_self(node.args[0])
            ):
                findings.append(
                    ctx.finding(
                        "R6",
                        node,
                        f"setattr patch of simulator method "
                        f"`{node.args[1].value!r}` — invisible hooking "
                        "the probe bus replaced",
                        hint=_HINT,
                    )
                )
    return findings
