"""R4 — determinism discipline in ``repro.core``, ``repro.runner``,
``repro.trace`` and ``repro.vulngen``.

The runner's guarantee (PR 1) is that parallel campaigns equal serial
ones byte for byte, because every fuzz trial derives a private seeded
``random.Random`` and every job is identified by a content hash.  The
scope includes the whole ``repro/runner/`` tree — the fork-server
(``repro.runner.forkserver``) restores cached snapshots between
trials, so any ambient nondeterminism there would poison *every*
subsequent trial served from the same worker, not just one.
Three syntactic habits silently break that guarantee:

* calls on the **module-level RNG** (``random.random()``,
  ``random.choice(...)``) share hidden global state across trials —
  construct ``random.Random(seed)`` (allowed) from the per-trial seed;
* ``time.time()`` reads the wall clock into results or identifiers —
  inject a clock (store it as a callable) so tests and replays can pin
  it; ``time.monotonic``/``perf_counter`` for *measuring* are fine;
* iterating an **unordered collection** — a set literal/constructor,
  ``set()``-typed result fields (``outcome.skipped``, ``.failures``),
  or their ``.keys()/.values()/.items()`` — feeds hash order into
  output; iterate the plan order or wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule

#: ``random.<name>(...)`` calls that are fine: explicit generators.
_ALLOWED_RANDOM = {"Random", "SystemRandom"}

#: Attribute names documented to hold unordered result collections.
_UNORDERED_ATTRS = {"skipped", "failures"}

#: Methods whose result is only ordered if the receiver is.
_VIEW_METHODS = {"keys", "values", "items"}


def _unordered_reason(node: ast.expr) -> Optional[str]:
    """Why iterating ``node`` is hash-order dependent (None if it isn't)."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return f"a {func.id}(...) has no stable iteration order"
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            inner = _unordered_reason(func.value)
            if inner is not None:
                return inner
        return None
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return "a set literal has no stable iteration order"
    if isinstance(node, ast.Attribute) and node.attr in _UNORDERED_ATTRS:
        return (
            f"`.{node.attr}` is an unordered result collection "
            "(see repro.runner.pool.RunnerOutcome)"
        )
    return None


def _iteration_targets(tree: ast.Module):
    """Yield every expression something iterates over."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter


@rule(
    "R4",
    "determinism",
    "no module-level RNG, wall-clock reads, or unordered iteration in "
    "repro.core / repro.runner (incl. the forkserver's snapshot cache) "
    "/ repro.trace / repro.vulngen (parallel must equal serial, and "
    "trace files and corpus manifests must be byte-stable)",
)
def check_determinism(ctx: RuleContext) -> List[Finding]:
    """R4: flag ambient-nondeterminism sources in deterministic trees."""
    if not (
        ctx.in_tree("repro/core/")
        or ctx.in_tree("repro/runner/")
        or ctx.in_tree("repro/trace/")
        or ctx.in_tree("repro/vulngen/")
    ):
        return []
    findings: List[Finding] = []

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or not isinstance(
            func.value, ast.Name
        ):
            continue
        if func.value.id == "random" and func.attr not in _ALLOWED_RANDOM:
            findings.append(
                ctx.finding(
                    "R4",
                    node,
                    f"random.{func.attr}() uses the shared module-level "
                    "RNG; trials become order-dependent",
                    hint="derive a private random.Random(seed) from the "
                    "per-trial seed (see repro.core.fuzz.trial_seed)",
                )
            )
        elif func.value.id == "time" and func.attr == "time":
            findings.append(
                ctx.finding(
                    "R4",
                    node,
                    "time.time() reads the wall clock; results stop "
                    "being reproducible",
                    hint="inject a clock callable (default time.time) so "
                    "tests can pin it; use time.monotonic for intervals",
                )
            )

    for target in _iteration_targets(ctx.tree):
        reason = _unordered_reason(target)
        if reason is not None:
            findings.append(
                ctx.finding(
                    "R4",
                    target,
                    f"iteration order is nondeterministic: {reason}",
                    hint="iterate the job plan (specs) or wrap the "
                    "collection in sorted(...)",
                )
            )
    return findings
