"""R8 — a completed check must still hold at the moment of use.

XSA-182's fast path re-used a validation that a concurrent update had
invalidated; grant-copy handlers historically re-read guest-writable
ring entries after checking them.  The pattern is always the same
triple: *check* (ownership/bounds predicate passes), *window* (the CPU
yields — scheduler tick, preemption hook — or guest-writable memory is
re-read), *use* (the sink consumes the checked value).  The dataflow
engine tracks the first two as sanitized→stale tag transitions
(:meth:`~repro.staticcheck.dataflow._Analyzer._yield_point`); this
rule reports the third.
"""

from __future__ import annotations

from typing import List

from repro.staticcheck.dataflow import in_analysis_scope
from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule
from repro.staticcheck.rules.taintsink import _program_for


@rule(
    "R8",
    "toctou-window",
    "a sanitizer check and its dependent sink must not be separated by "
    "a yield/preemption point without re-validation (check/use races)",
)
def check_toctou_windows(ctx: RuleContext) -> List[Finding]:
    """R8: no stale (checked-then-yielded) value may reach a sink."""
    if not in_analysis_scope(ctx.norm_path):
        return []
    return [
        finding
        for finding in _program_for(ctx).findings_for(ctx.path)
        if finding.rule == "R8"
    ]
