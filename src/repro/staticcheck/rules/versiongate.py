"""R5 — version-gating through :mod:`repro.xen.versions` predicates.

Every behavioural difference between hypervisor builds is a flag on
:class:`~repro.xen.versions.XenVersion` — ``has_vuln`` /
``has_hardening`` — which is what makes the ablation experiments
(``derive()``) work: a derived version keeps the behaviour of the flag
set, not of its name.  Raw comparisons (``version.name == "4.6"``,
``version.release_year < 2017``) silently break derived versions and
re-introduce the "which build is this" conditionals the paper's
injector design avoids.  ``repro/xen/versions.py`` itself (the module
defining the predicates) is exempt.
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule

_VERSION_ATTRS = {"name", "release_year"}

_COMPARE_OPS = (
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.In,
    ast.NotIn,
)


def _mentions_version(node: ast.expr) -> bool:
    """Does the attribute's receiver chain go through a version object?"""
    while isinstance(node, ast.Attribute):
        if "version" in node.attr.lower():
            return True
        node = node.value
    return isinstance(node, ast.Name) and "version" in node.id.lower()


def _is_version_attribute(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in _VERSION_ATTRS
        and _mentions_version(node.value)
    )


def _is_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (str, int, float))
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(_is_literal(elt) for elt in node.elts)
    return False


def _looks_like_version_string(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
        return bool(text) and text[0].isdigit() and "." in text
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_looks_like_version_string(elt) for elt in node.elts)
    return False


@rule(
    "R5",
    "version-gate",
    "Xen-version conditionals must use versions predicates "
    "(has_vuln/has_hardening), not raw name/year comparisons",
)
def check_version_gates(ctx: RuleContext) -> List[Finding]:
    """R5: version conditionals must go through the flag predicates."""
    if ctx.is_file("repro/xen/versions.py"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, _COMPARE_OPS) for op in node.ops):
            continue
        sides = [node.left, *node.comparators]
        flagged = False
        # version.name / version.release_year against any literal.
        if any(_is_version_attribute(side) for side in sides) and any(
            _is_literal(side) for side in sides
        ):
            flagged = True
        # A bare `version` variable against a "4.x"-looking string.
        elif any(
            isinstance(side, ast.Name) and "version" in side.id.lower()
            for side in sides
        ) and any(_looks_like_version_string(side) for side in sides):
            flagged = True
        if flagged:
            findings.append(
                ctx.finding(
                    "R5",
                    node,
                    "raw Xen-version comparison; derived/ablated versions "
                    "will not match",
                    hint="gate on version.has_vuln(...) / "
                    "version.has_hardening(...), or resolve names via "
                    "repro.xen.versions.version_by_name",
                )
            )
    return findings
