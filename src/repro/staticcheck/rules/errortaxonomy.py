"""R3 — error-taxonomy discipline.

The simulator's whole observation story rests on its exception
taxonomy: :class:`~repro.errors.HypervisorCrash` *is* the paper's
"Crash of the Virtualization Infrastructure" violation, and
:class:`~repro.errors.DoubleFault` is how it comes about.  Generic
exceptions blur the taxonomy, and a handler that silently swallows a
crash erases the very signal the experiments measure.  Three checks:

* ``raise Exception(...)`` / ``raise BaseException(...)`` — use a
  :class:`~repro.errors.SimulationError` subclass instead;
* bare ``except:`` — catches ``SystemExit``/``KeyboardInterrupt`` too
  and hides which failure class occurred;
* an ``except`` clause that *names* ``HypervisorCrash`` or
  ``DoubleFault`` and whose body is only ``pass``/``...`` — the crash
  must be recorded, re-raised, or the clause explicitly waived (a
  campaign that observes the crash through ``bed.xen.crashed``
  afterwards waives with the reason saying so).
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule

_GENERIC_RAISES = {"Exception", "BaseException"}
_FATAL_NAMES = {"HypervisorCrash", "DoubleFault"}


def _exception_names(node: ast.expr) -> List[str]:
    """Exception type names referenced by an except clause."""
    if isinstance(node, ast.Tuple):
        names: List[str] = []
        for elt in node.elts:
            names.extend(_exception_names(elt))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _is_noop_body(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@rule(
    "R3",
    "error-taxonomy",
    "no generic raises or bare excepts; HypervisorCrash/DoubleFault "
    "must never be silently swallowed (all of src/repro)",
)
def check_error_taxonomy(ctx: RuleContext) -> List[Finding]:
    """R3: flag generic raises, bare excepts, and swallowed crash signals."""
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Raise):
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in _GENERIC_RAISES:
                findings.append(
                    ctx.finding(
                        "R3",
                        node,
                        f"raise of generic {target.id}; use the "
                        "SimulationError taxonomy from repro.errors",
                        hint="pick (or add) a specific SimulationError "
                        "subclass so monitors can classify the failure",
                    )
                )
        elif isinstance(node, ast.ExceptHandler):
            if node.type is None:
                findings.append(
                    ctx.finding(
                        "R3",
                        node,
                        "bare `except:` hides the failure class (and "
                        "catches SystemExit/KeyboardInterrupt)",
                        hint="catch the narrowest SimulationError "
                        "subclass that applies",
                    )
                )
                continue
            fatal = sorted(
                set(_exception_names(node.type)) & _FATAL_NAMES
            )
            if fatal and _is_noop_body(node.body):
                findings.append(
                    ctx.finding(
                        "R3",
                        node,
                        f"{'/'.join(fatal)} caught and silently "
                        "swallowed; the crash signal is the experiment's "
                        "observable",
                        hint="record or re-raise the crash; if the "
                        "surrounding code observes it via bed.xen.crashed, "
                        "waive with # staticcheck: ignore[R3] saying so",
                    )
                )
    return findings
