"""R2 — privilege/ownership gates in hypercall handlers.

XSA-148 was a mutation committed without checking the invariant that
guards it; XSA-212 wrote through a guest-supplied pointer that was
never bounds-checked.  The simulator's equivalent of those gates is
ownership: a hypercall handler that mutates MFN-level machine state
(page words, the M2P, frame assignment, frees, mapping revocation)
must first consult who owns the frame — ``_check_owned``, or
``owner_of`` / ``.owner`` together with an ``is_privileged`` escape —
or allocate the frame itself (``alloc_domain_page`` establishes
ownership by construction).  A handler that consciously omits the gate
(a deliberately-vulnerable path) carries ``# staticcheck: trusted``.

Scope: the hypercall surface — ``repro/xen/hypercalls.py`` and the
grant-table operations in ``repro/xen/granttable.py``.  A *handler* is
a function whose first non-``self`` parameter is the calling domain.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RuleContext, rule

#: Mutating calls, mapped to the receiver-chain tail that identifies
#: them (``machine.write_word``, ``frames.assign``, ``xen.set_m2p``).
_MUTATORS: Dict[str, str] = {
    "write_word": "machine",
    "copy_frame": "machine",
    "assign": "frames",
    "pin": "frames",
    "unpin": "frames",
    "set_m2p": "xen",
    "clear_m2p": "xen",
    "free_domain_page": "xen",
    "zap_guest_mappings": "xen",
    "unchecked_copy_to_guest": "xen",
}

#: Calls that count as consulting ownership / privilege.
_EVIDENCE_CALLS = {"_check_owned", "owner_of", "alloc_domain_page"}
#: Attribute reads that count as consulting ownership / privilege.
_EVIDENCE_ATTRS = {"is_privileged", "owner"}

_DOMAIN_PARAM_NAMES = {"domain", "mapper", "granter", "caller"}


def _receiver_tail(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_handler(func: ast.FunctionDef) -> bool:
    """Does this function take the calling domain as its first argument?"""
    args = [a for a in func.args.args if a.arg != "self"]
    if not args:
        return False
    first = args[0]
    if first.arg in _DOMAIN_PARAM_NAMES:
        return True
    annotation = first.annotation
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return "Domain" in annotation.value
    if isinstance(annotation, ast.Name) and "Domain" in annotation.id:
        return True
    return False


def _mutations(func: ast.FunctionDef) -> List[ast.Call]:
    calls = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if not isinstance(callee, ast.Attribute):
            continue
        wanted_tail = _MUTATORS.get(callee.attr)
        if wanted_tail is None:
            continue
        tail = _receiver_tail(callee.value)
        if tail == wanted_tail or tail == "self":
            calls.append(node)
    return calls


def _has_ownership_evidence(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.attr
                if isinstance(callee, ast.Attribute)
                else callee.id
                if isinstance(callee, ast.Name)
                else None
            )
            if name in _EVIDENCE_CALLS:
                return True
        elif isinstance(node, ast.Attribute) and node.attr in _EVIDENCE_ATTRS:
            return True
    return False


@rule(
    "R2",
    "privilege-gate",
    "hypercall handlers mutating MFN-level state must consult ownership "
    "or privilege first (repro.xen hypercall surface)",
)
def check_privilege_gates(ctx: RuleContext) -> List[Finding]:
    """R2: handlers that mutate machine state must gate on ownership."""
    if not (
        ctx.is_file("repro/xen/hypercalls.py")
        or ctx.is_file("repro/xen/granttable.py")
    ):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_handler(node):
            continue
        mutations = _mutations(node)
        if not mutations or _has_ownership_evidence(node):
            continue
        verbs = sorted({m.func.attr for m in mutations})  # type: ignore[union-attr]
        findings.append(
            ctx.finding(
                "R2",
                node,
                f"handler mutates machine state ({', '.join(verbs)}) "
                "without consulting ownership or privilege",
                hint="call _check_owned()/owner_of() (with an "
                "is_privileged escape) before mutating, or mark a "
                "deliberately-vulnerable path `# staticcheck: trusted`",
                function=node.name,
            )
        )
    return findings
