"""The checker engine: file discovery, rule dispatch, waiver filtering.

``check_paths`` is the front door: it expands files/directories,
parses each Python file once, runs every selected rule over the AST,
then filters the raw findings through the file's inline waivers and
the optional baseline.  ``check_source`` is the same pipeline for an
in-memory snippet — what the fixture tests use.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.model import Finding
from repro.staticcheck.rules import RULE_REGISTRY, Rule, RuleContext
from repro.staticcheck.waivers import Waiver, WaiverSet


@dataclass
class CheckResult:
    """Outcome of one checker run."""

    #: Findings that survived waivers and the baseline — these fail CI.
    findings: List[Finding] = field(default_factory=list)
    #: Findings suppressed by an inline waiver, with the waiver.
    waived: List[Tuple[Finding, Waiver]] = field(default_factory=list)
    #: Findings suppressed by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Syntax/IO problems, as findings under the pseudo-rule E0.
    errors: List[Finding] = field(default_factory=list)

    @property
    def waivers_used(self) -> int:
        """Distinct waiver comments that suppressed at least one finding."""
        return len({(f.path, w.line) for f, w in self.waived})

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.errors) else 0

    def extend(self, other: "CheckResult") -> None:
        self.findings.extend(other.findings)
        self.waived.extend(other.waived)
        self.baselined.extend(other.baselined)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked


def _select_rules(rule_ids: Optional[Sequence[str]]) -> List[Rule]:
    if rule_ids is None:
        return [RULE_REGISTRY[key] for key in sorted(RULE_REGISTRY)]
    rules = []
    for raw in rule_ids:
        key = raw.strip().upper()
        if key not in RULE_REGISTRY:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise KeyError(f"unknown rule {raw!r}; known rules: {known}")
        rules.append(RULE_REGISTRY[key])
    return rules


def check_source(
    source: str,
    path: str,
    rules: Optional[Sequence[str]] = None,
    baseline: Iterable[str] = (),
    program: Optional[object] = None,
) -> CheckResult:
    """Run the pipeline over one in-memory file.

    ``program`` is the whole-run interprocedural view built by
    ``check_paths``; standalone callers leave it ``None`` and the
    dataflow rules fall back to a single-file program.
    """
    result = CheckResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(
            Finding(
                rule="E0",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"could not parse: {exc.msg}",
            )
        )
        return result

    ctx = RuleContext(path=path, tree=tree, source=source, program=program)
    waivers = WaiverSet(source, tree)
    baseline_set: Set[str] = set(baseline)

    raw: List[Finding] = []
    for rule_obj in _select_rules(rules):
        raw.extend(rule_obj.check(ctx))
    raw.extend(waivers.missing_reasons(path))
    raw.sort(key=lambda f: (f.line, f.col, f.rule))

    for finding in raw:
        waiver = (
            waivers.waiver_for(finding)
            if finding.rule not in ("W0", "W1")
            else None
        )
        if waiver is not None:
            result.waived.append((finding, waiver))
        elif finding.fingerprint in baseline_set:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    # Unused-waiver warning (W1): a waiver that suppresses nothing is
    # stale debt — the finding it covered was fixed, or its rule list
    # is wrong.  Only meaningful when every rule ran; under a partial
    # ``--rules`` selection a waiver for an unselected rule is
    # legitimately idle.
    if rules is None:
        used_lines = {waiver.line for _, waiver in result.waived}
        for line in sorted(waivers.by_line):
            waiver = waivers.by_line[line]
            if line in used_lines or not waiver.reason:
                continue  # reasonless waivers are already W0
            scope = "all rules" if waiver.rules is None else ",".join(waiver.rules)
            result.findings.append(
                Finding(
                    rule="W1",
                    path=path,
                    line=line,
                    col=0,
                    message=f"waiver [{scope}] suppresses no findings; "
                    "remove it or fix its rule list",
                    hint="stale waivers hide future regressions behind "
                    "an already-spent justification",
                )
            )
        result.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return result


def _iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths``, in a byte-stable order.

    Findings, baselines and JSON reports must be byte-identical on any
    machine, so the order cannot depend on ``os.walk``'s traversal or
    the filesystem's directory order: the full list is sorted by its
    normalized (forward-slash) relative path, deduplicated.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames if d not in {"__pycache__", ".git"}]
            for name in filenames:
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    seen: Set[str] = set()
    unique: List[str] = []
    for path in sorted(files, key=lambda p: p.replace(os.sep, "/")):
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def check_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
    baseline: Iterable[str] = (),
) -> CheckResult:
    """Check every Python file under ``paths``.

    All files are parsed up front so the interprocedural rules see one
    whole-run :class:`~repro.staticcheck.dataflow.Program` — a taint
    source in ``hypercalls.py`` is followed into the ``hypervisor.py``
    helper that sinks it, whichever order the files are visited in.
    """
    from repro.staticcheck.dataflow import Program

    result = CheckResult()
    baseline_set = set(baseline)
    parsed: List[Tuple[str, Optional[str], Optional[ast.Module]]] = []
    modules: List[Tuple[str, ast.Module]] = []
    for path in _iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            parsed.append((path, None, None))
            result.errors.append(
                Finding(
                    rule="E0", path=path, line=0, col=0,
                    message=f"could not read: {exc}",
                )
            )
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            tree = None  # check_source re-parses and reports E0
        parsed.append((path, source, tree))
        if tree is not None:
            modules.append((path, tree))
    program = Program(modules)
    for path, source, _tree in parsed:
        if source is None:
            result.files_checked += 1
            continue
        result.extend(
            check_source(
                source, path, rules=rules, baseline=baseline_set, program=program
            )
        )
    return result


def waiver_inventory(result: CheckResult) -> Dict[Tuple[str, int], Tuple[Waiver, int]]:
    """(path, line) -> (waiver, findings suppressed), for reporting."""
    inventory: Dict[Tuple[str, int], Tuple[Waiver, int]] = {}
    for finding, waiver in result.waived:
        key = (finding.path, waiver.line)
        previous = inventory.get(key)
        inventory[key] = (waiver, (previous[1] if previous else 0) + 1)
    return inventory
