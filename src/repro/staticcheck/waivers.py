"""Inline waiver comments: the suppression syntax rules honour.

Two forms, both attached to source lines:

* ``# staticcheck: ignore[R1] reason``        — waive specific rules
  (comma-separated ids) on this line;
* ``# staticcheck: trusted reason``           — waive every rule on
  this line (the "privilege gate consciously absent" marker from R2).

A waiver written on a ``def`` header line covers the whole function
body — that is how deliberate whole-function exemptions (a handler
that transfers a reference by design) are expressed without peppering
every exit path.  A reason is required: a waiver without one is itself
reported, so suppressions stay reviewable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.staticcheck.model import Finding

_WAIVER_RE = re.compile(
    r"#\s*staticcheck:\s*(?:ignore\[(?P<rules>[A-Za-z0-9_,\s]+)\]|(?P<trusted>trusted))"
    r"\s*(?:[-—:]\s*)?(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment."""

    line: int
    #: Rule ids covered; ``None`` means every rule (``trusted``).
    rules: Optional[Tuple[str, ...]]
    reason: str

    def covers_rule(self, rule: str) -> bool:
        return self.rules is None or rule in self.rules


def _comment_lines(source: str) -> Dict[int, str]:
    """1-based line -> comment text, for *real* comments only.

    Tokenizing (rather than regex-scanning raw lines) keeps waiver
    syntax quoted inside docstrings and string literals — rule hints,
    documentation — from being parsed as live waivers.  Falls back to
    treating every line as a candidate if tokenization fails (the
    engine reports the syntax error separately).
    """
    try:
        return {
            tok.start[0]: tok.string
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        }
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return dict(enumerate(source.splitlines(), start=1))


def parse_waivers(source: str) -> Dict[int, Waiver]:
    """Extract waivers from source text, keyed by 1-based line."""
    waivers: Dict[int, Waiver] = {}
    for lineno, text in sorted(_comment_lines(source).items()):
        match = _WAIVER_RE.search(text)
        if not match:
            continue
        rules: Optional[Tuple[str, ...]]
        if match.group("trusted"):
            rules = None
        else:
            rules = tuple(
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            )
        waivers[lineno] = Waiver(
            line=lineno, rules=rules, reason=match.group("reason").strip()
        )
    return waivers


def _function_spans(tree: ast.AST) -> List[Tuple[int, int, int]]:
    """(header_start, header_end, body_end) for every function.

    The header opens at the first decorator (a waiver on the
    ``@probe_hook`` line reads as naturally as one on the ``def``) and
    closes on the line before the body starts.
    """
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            start = min(
                [node.lineno] + [d.lineno for d in node.decorator_list]
            )
            header_end = node.body[0].lineno - 1 if node.body else node.lineno
            spans.append(
                (start, max(start, header_end), node.end_lineno or node.lineno)
            )
    return spans


class WaiverSet:
    """All waivers of one file, with function-scope resolution."""

    def __init__(self, source: str, tree: ast.AST):
        self.by_line = parse_waivers(source)
        self._spans = _function_spans(tree)

    def waiver_for(self, finding: Finding) -> Optional[Waiver]:
        """The waiver suppressing ``finding``, if any.

        Checks the finding's own line first, then any waiver sitting on
        the header of a function whose body contains the finding.
        """
        direct = self.by_line.get(finding.line)
        if direct is not None and direct.covers_rule(finding.rule):
            return direct
        for header_start, header_end, body_end in self._spans:
            if not (header_start <= finding.line <= body_end):
                continue
            for line in range(header_start, header_end + 1):
                waiver = self.by_line.get(line)
                if waiver is not None and waiver.covers_rule(finding.rule):
                    return waiver
        return None

    def missing_reasons(self, path: str) -> List[Finding]:
        """A waiver without a reason is itself a finding (rule W0)."""
        return [
            Finding(
                rule="W0",
                path=path,
                line=waiver.line,
                col=0,
                message="waiver has no reason; document why the rule "
                "does not apply here",
                hint="write `# staticcheck: ignore[Rn] <reason>`",
            )
            for waiver in self.by_line.values()
            if not waiver.reason
        ]
