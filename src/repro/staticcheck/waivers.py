"""Inline waiver comments: the suppression syntax rules honour.

Two forms, both attached to source lines:

* ``# staticcheck: ignore[R1] reason``        — waive specific rules
  (comma-separated ids) on this line;
* ``# staticcheck: trusted reason``           — waive every rule on
  this line (the "privilege gate consciously absent" marker from R2).

A waiver written on a ``def`` header line covers the whole function
body — that is how deliberate whole-function exemptions (a handler
that transfers a reference by design) are expressed without peppering
every exit path.  A reason is required: a waiver without one is itself
reported, so suppressions stay reviewable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.staticcheck.model import Finding

_WAIVER_RE = re.compile(
    r"#\s*staticcheck:\s*(?:ignore\[(?P<rules>[A-Za-z0-9_,\s]+)\]|(?P<trusted>trusted))"
    r"\s*(?:[-—:]\s*)?(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment."""

    line: int
    #: Rule ids covered; ``None`` means every rule (``trusted``).
    rules: Optional[Tuple[str, ...]]
    reason: str

    def covers_rule(self, rule: str) -> bool:
        return self.rules is None or rule in self.rules


def parse_waivers(source: str) -> Dict[int, Waiver]:
    """Extract waivers from source text, keyed by 1-based line."""
    waivers: Dict[int, Waiver] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(text)
        if not match:
            continue
        rules: Optional[Tuple[str, ...]]
        if match.group("trusted"):
            rules = None
        else:
            rules = tuple(
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            )
        waivers[lineno] = Waiver(
            line=lineno, rules=rules, reason=match.group("reason").strip()
        )
    return waivers


def _function_spans(tree: ast.AST) -> List[Tuple[int, int, int]]:
    """(header_start, header_end, body_end) for every function."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            header_end = node.body[0].lineno - 1 if node.body else node.lineno
            spans.append(
                (node.lineno, max(node.lineno, header_end), node.end_lineno or node.lineno)
            )
    return spans


class WaiverSet:
    """All waivers of one file, with function-scope resolution."""

    def __init__(self, source: str, tree: ast.AST):
        self.by_line = parse_waivers(source)
        self._spans = _function_spans(tree)

    def waiver_for(self, finding: Finding) -> Optional[Waiver]:
        """The waiver suppressing ``finding``, if any.

        Checks the finding's own line first, then any waiver sitting on
        the header of a function whose body contains the finding.
        """
        direct = self.by_line.get(finding.line)
        if direct is not None and direct.covers_rule(finding.rule):
            return direct
        for header_start, header_end, body_end in self._spans:
            if not (header_start <= finding.line <= body_end):
                continue
            for line in range(header_start, header_end + 1):
                waiver = self.by_line.get(line)
                if waiver is not None and waiver.covers_rule(finding.rule):
                    return waiver
        return None

    def missing_reasons(self, path: str) -> List[Finding]:
        """A waiver without a reason is itself a finding (rule W0)."""
        return [
            Finding(
                rule="W0",
                path=path,
                line=waiver.line,
                col=0,
                message="waiver has no reason; document why the rule "
                "does not apply here",
                hint="write `# staticcheck: ignore[Rn] <reason>`",
            )
            for waiver in self.by_line.values()
            if not waiver.reason
        ]
