"""The findings model shared by rules, reporters and the baseline."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``fingerprint`` deliberately excludes the line number so baselines
    survive unrelated edits above a finding; it is derived from the
    rule, the file, the enclosing function and the message.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Suggested fix, shown indented under the finding.
    hint: str = ""
    #: Qualified name of the enclosing function ("" at module level).
    function: str = ""

    @property
    def fingerprint(self) -> str:
        blob = "|".join(
            (self.rule, self.path.replace("\\", "/"), self.function, self.message)
        )
        return hashlib.sha1(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "function": self.function,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FileReport:
    """Per-file outcome: kept findings plus the waivers that fired."""

    path: str
    findings: list = field(default_factory=list)
    waived: list = field(default_factory=list)
    #: Lines of waiver comments that suppressed at least one finding.
    waivers_used: set = field(default_factory=set)
