"""The taint model: guest-controlled sources, dangerous sinks,
sanitizers.

The SPEC-RG hypercall-handler survey reduces to one sentence: almost
every real hypervisor vulnerability is a *guest-controlled value*
reaching a *privileged operation* without the *check* that should
stand between them.  This module names the three vocabularies for the
simulator's codebase; :mod:`repro.staticcheck.dataflow` turns them
into an interprocedural analysis and rules R7/R8 turn the analysis
into findings.

**Sources** — where guest-controlled data enters the hypervisor:

* every non-domain parameter of a hypercall handler (the argument
  structs a guest marshals into ``HYPERVISOR_*`` calls — the universal
  source per "Breaking Isolation");
* shared-ring / grant payload reads (``consume_requests``,
  ``read_request`` …) — ring memory is guest-writable at all times;
* guest PTE / guest-memory reads (``read_word`` through a guest
  frame, ``copy_from_guest``): the content is the guest's to choose.

**Sinks** — privileged operations whose operands must be trusted:

* raw machine writes (``machine.write_word`` / ``copy_frame`` /
  ``zero_frame``);
* frame-type transitions and refcount ops (``frames.get_page``,
  ``get_page_type``, ``assign``, ``pin``, ``unpin``);
* M2P / mapping mutations (``set_m2p``, ``clear_m2p``,
  ``free_domain_page``, ``zap_guest_mappings``);
* directmap address formation (``directmap_va`` — a tainted offset
  here is an arbitrary hypervisor write, XSA-212's exact shape).

**Sanitizers** — evidence the value was checked before use:

* ownership predicates (``_check_owned``, ``owner_of``, ``.owner``
  comparisons);
* privilege gates (``.is_privileged``) — these gate the *operation*,
  so they clear every pending taint, not just the mentioned value;
* bounds predicates: any comparison of a tainted value inside a
  conditional (the ``if offset >= limit: raise`` idiom);
* :class:`~repro.xen.versions.XenVersion` gates (``has_vuln`` /
  ``has_hardening``) — also operation-wide.

**Yield points** (R8's third vocabulary) — where the world may change
under a completed check: scheduler ticks, preemption hooks, explicit
re-reads of guest-writable memory.
"""

from __future__ import annotations

import ast
from typing import Optional

#: Parameter names that identify the *calling domain* argument of a
#: hypercall handler (shared with rule R2 — the same definition of
#: "handler" drives both rules).
DOMAIN_PARAM_NAMES = frozenset({"domain", "mapper", "granter", "caller"})

#: Calls whose return value is guest-controlled regardless of their
#: arguments (shared-ring consumption, guest-memory copies).
SOURCE_CALLS = frozenset(
    {
        "copy_from_guest",
        "consume_requests",
        "consume_request",
        "read_request",
        "read_guest_word",
        "guest_read",
    }
)

#: Dangerous calls, mapped to the receiver-chain tail that identifies
#: them (``machine.write_word`` → ``machine``); ``None`` accepts any
#: receiver (module-level helpers like ``directmap_va``).
SINK_CALLS: dict = {
    "write_word": ("machine", "self"),
    "copy_frame": ("machine", "self"),
    "zero_frame": ("machine", "self"),
    "get_page": ("frames",),
    "get_page_type": ("frames",),
    "assign": ("frames",),
    "pin": ("frames",),
    "unpin": ("frames",),
    "set_m2p": ("xen", "self"),
    "clear_m2p": ("xen", "self"),
    "free_domain_page": ("xen", "self"),
    "zap_guest_mappings": ("xen", "self"),
    "unchecked_copy_to_guest": ("xen", "self"),
    "directmap_va": None,
}

#: Calls that count as *checking* their arguments (ownership and
#: explicit validation helpers).
SANITIZER_CALLS = frozenset(
    {
        "_check_owned",
        "owner_of",
        "check_bounds",
        "validate_entry",
        "validate_frame",
    }
)

#: Attribute reads that, inside a conditional test, gate the whole
#: operation rather than one value.
GLOBAL_SANITIZER_ATTRS = frozenset({"is_privileged"})

#: Version-gate calls (rule R5's vocabulary): conditioning on the
#: build's vulnerability/hardening flags gates the whole operation.
GLOBAL_SANITIZER_CALLS = frozenset({"has_vuln", "has_hardening"})

#: Calls after which previously-checked guest state may have changed:
#: scheduler ticks, preemption hooks, explicit yields.
YIELD_CALLS = frozenset(
    {
        "tick",
        "preempt",
        "yield_to",
        "do_yield",
        "hypercall_preempt",
        "schedule",
    }
)


def receiver_tail(node: ast.expr) -> Optional[str]:
    """Last component of the receiver chain (``xen.frames`` → ``frames``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Bare name of the callee (``xen.machine.write_word`` → ``write_word``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def is_sink_call(node: ast.Call) -> Optional[str]:
    """The sink's display name when ``node`` is a dangerous call."""
    name = call_name(node)
    if name is None or name not in SINK_CALLS:
        return None
    wanted = SINK_CALLS[name]
    func = node.func
    if wanted is None:
        return name
    if isinstance(func, ast.Attribute):
        tail = receiver_tail(func.value)
        if tail in wanted:
            return f"{tail}.{name}" if tail != "self" else name
    return None


def is_source_call(node: ast.Call) -> bool:
    """Does this call read guest-controlled data (ring/PTE/copy-in)?"""
    name = call_name(node)
    return name is not None and name in SOURCE_CALLS


def is_sanitizer_call(node: ast.Call) -> bool:
    """Does this call validate its tainted arguments?"""
    name = call_name(node)
    return name is not None and name in SANITIZER_CALLS


def is_global_sanitizer_expr(node: ast.AST) -> bool:
    """Does this expression consult a privilege or version gate?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in GLOBAL_SANITIZER_ATTRS:
            return True
        if isinstance(sub, ast.Call):
            name = call_name(sub)
            if name in GLOBAL_SANITIZER_CALLS:
                return True
    return False


def is_yield_call(node: ast.Call) -> bool:
    """Does this call open a preemption window (R8's TOCTOU trigger)?"""
    name = call_name(node)
    return name is not None and name in YIELD_CALLS


def handler_taint_params(func: ast.FunctionDef) -> list:
    """Guest-controlled parameter names when ``func`` is a handler.

    A *handler* takes the calling domain as its first non-``self``
    argument (rule R2's definition); every later parameter is guest
    marshalled and therefore a taint root.  Returns ``[]`` for
    non-handlers.
    """
    args = [a for a in func.args.args if a.arg != "self"]
    if not args:
        return []
    first = args[0]
    is_handler = first.arg in DOMAIN_PARAM_NAMES
    if not is_handler:
        annotation = first.annotation
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            is_handler = "Domain" in annotation.value
        elif isinstance(annotation, ast.Name):
            is_handler = "Domain" in annotation.id
    if not is_handler:
        return []
    return [a.arg for a in args[1:]]
