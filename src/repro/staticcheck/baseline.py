"""Baseline file: accepted findings, keyed by stable fingerprint.

A baseline lets the checker be adopted on a codebase with pre-existing
findings: ``repro staticcheck --write-baseline`` records what exists
today, and from then on only *new* findings fail the build.  The
repository itself carries no baseline entries — every deliberate
exception is an inline waiver instead — but the mechanism is part of
the framework so downstream forks can ratchet.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Set

from repro.staticcheck.model import Finding

BASELINE_VERSION = 1


def load_baseline(path: str) -> Set[str]:
    """Fingerprints accepted by the baseline file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    return set(data.get("fingerprints", {}))


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write all ``findings`` as the new baseline; returns the count."""
    fingerprints: Dict[str, dict] = {}
    for finding in findings:
        fingerprints[finding.fingerprint] = {
            "rule": finding.rule,
            "path": finding.path.replace("\\", "/"),
            "function": finding.function,
            "message": finding.message,
        }
    payload = {"version": BASELINE_VERSION, "fingerprints": fingerprints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(fingerprints)
