"""Text and JSON renderings of a :class:`~repro.staticcheck.engine.CheckResult`."""

from __future__ import annotations

import json

from repro.staticcheck.engine import CheckResult, waiver_inventory
from repro.staticcheck.rules import RULE_REGISTRY


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """Human-readable report: findings, then a one-line summary."""
    lines = []
    for finding in result.errors:
        lines.append(finding.render())
    for finding in result.findings:
        lines.append(finding.render())
    if verbose:
        for (path, waiver_line), (waiver, count) in sorted(
            waiver_inventory(result).items()
        ):
            scope = "all rules" if waiver.rules is None else ",".join(waiver.rules)
            lines.append(
                f"{path}:{waiver_line}: waived {count} finding(s) "
                f"[{scope}]: {waiver.reason}"
            )
        for finding in result.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    total = len(result.findings) + len(result.errors)
    summary = (
        f"{result.files_checked} file(s) checked: {total} finding(s), "
        f"{result.waivers_used} waiver(s) in effect, "
        f"{len(result.baselined)} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "rules": {
            rule.id: {"name": rule.name, "description": rule.description}
            for rule in RULE_REGISTRY.values()
        },
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "errors": len(result.errors),
            "waivers_used": result.waivers_used,
            "baselined": len(result.baselined),
            "exit_code": result.exit_code,
        },
        "findings": [f.to_dict() for f in result.findings],
        "errors": [f.to_dict() for f in result.errors],
        "waived": [
            {
                "finding": finding.to_dict(),
                "waiver": {
                    "line": waiver.line,
                    "rules": list(waiver.rules) if waiver.rules else "all",
                    "reason": waiver.reason,
                },
            }
            for finding, waiver in result.waived
        ],
        "baselined": [f.to_dict() for f in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
