"""Text, JSON and SARIF renderings of a :class:`~repro.staticcheck.engine.CheckResult`."""

from __future__ import annotations

import json

from repro.staticcheck.engine import CheckResult, waiver_inventory
from repro.staticcheck.rules import RULE_REGISTRY


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """Human-readable report: findings, then a one-line summary."""
    lines = []
    for finding in result.errors:
        lines.append(finding.render())
    for finding in result.findings:
        lines.append(finding.render())
    if verbose:
        for (path, waiver_line), (waiver, count) in sorted(
            waiver_inventory(result).items()
        ):
            scope = "all rules" if waiver.rules is None else ",".join(waiver.rules)
            lines.append(
                f"{path}:{waiver_line}: waived {count} finding(s) "
                f"[{scope}]: {waiver.reason}"
            )
        for finding in result.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    total = len(result.findings) + len(result.errors)
    summary = (
        f"{result.files_checked} file(s) checked: {total} finding(s), "
        f"{result.waivers_used} waiver(s) in effect, "
        f"{len(result.baselined)} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "rules": {
            rule.id: {"name": rule.name, "description": rule.description}
            for rule in RULE_REGISTRY.values()
        },
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "errors": len(result.errors),
            "waivers_used": result.waivers_used,
            "baselined": len(result.baselined),
            "exit_code": result.exit_code,
        },
        "findings": [f.to_dict() for f in result.findings],
        "errors": [f.to_dict() for f in result.errors],
        "waived": [
            {
                "finding": finding.to_dict(),
                "waiver": {
                    "line": waiver.line,
                    "rules": list(waiver.rules) if waiver.rules else "all",
                    "reason": waiver.reason,
                },
            }
            for finding, waiver in result.waived
        ],
        "baselined": [f.to_dict() for f in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


#: Schema pinned so two runs of the same checker emit byte-identical
#: documents (editors and code-scanning UIs key off this URI).
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_result(finding) -> dict:
    region = {"startLine": max(finding.line, 1)}
    if finding.col:
        region["startColumn"] = finding.col + 1  # SARIF columns are 1-based
    message = finding.message
    if finding.hint:
        message += f" (hint: {finding.hint})"
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/")
                    },
                    "region": region,
                }
            }
        ],
        "partialFingerprints": {"reproStaticcheck/v1": finding.fingerprint},
    }


def render_sarif(result: CheckResult) -> str:
    """SARIF 2.1.0 document for code-scanning UIs.

    Carries kept findings and parse errors (pseudo-rule ``E0``) as
    ``error``-level results; waived and baselined findings are
    suppressed here exactly as they are for the exit code.  Output is
    byte-stable: rules sorted by id, results in engine order, keys
    sorted.
    """
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        }
        for rule in sorted(RULE_REGISTRY.values(), key=lambda r: r.id)
    ]
    if result.errors:
        rules.append(
            {
                "id": "E0",
                "name": "parse-error",
                "shortDescription": {
                    "text": "the file could not be parsed or read"
                },
            }
        )
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-staticcheck",
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(f) for f in result.errors + result.findings
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
